"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures on
the ``tiny`` scale preset and asserts its qualitative shape, while
pytest-benchmark records how long the regeneration takes.  The recorded
medium-scale numbers live in EXPERIMENTS.md (produced by
``python -m repro.experiments.run_all --preset small``).

Simulations are deterministic and relatively slow (hundreds of ms to
seconds), so every benchmark uses ``benchmark.pedantic`` with a single
round: the value is the reproduction check, not nanosecond timing.
"""

from __future__ import annotations

import pytest

#: Workload used by the shape checks: small enough for CI, loaded enough
#: (12 items, 25 ms computation -- inside the paper's Figure 6 sweep)
#: that the source-side queueing effects are visible at 20 repositories.
BENCH_OVERRIDES = dict(n_items=12, comp_delay_ms=25.0, trace_samples=500)

#: Reduced degree grid covering chain, optimum and full fan-out.
BENCH_DEGREES = [1, 2, 4, 8, 20]


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run

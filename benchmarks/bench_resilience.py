"""Benchmark: unplanned-failure recovery overhead, resync cost, identity.

Three measurements over the tiny-preset workload:

- **failure overhead**: wall-clock of a run with injected crashes and
  partitions (2 crash/recover pairs, 2 link down/up windows) against
  the fault-free run of the same config.  Each crash diffs the graph
  and fails orphans over to a live ancestor; each recovery replays an
  anti-entropy resync; the assertion bounds that machinery to a small
  multiple of the static run so failover can never silently become the
  dominant cost.
- **resync economy**: anti-entropy recovery checks one value per
  subscribed item and transfers only the diverged ones, so its message
  cost must come in strictly under a full-state transfer (which would
  ship every subscribed item unconditionally).
- **kernel bit-identity**: the scalar oracle and the vectorized kernel
  must agree bit-for-bit under the same failure schedule -- the PR-6
  equivalence contract extended to unplanned failures.

Conservation (``deliveries + drops == messages``) is asserted on every
run: with real drops in the economy it is the accounting contract the
failure subsystem adds.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine import SCALE_PRESETS, failures_for_config, run_simulation

FAILURES_PER_KIND = 2


def _base_config():
    return SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)


def _failed_config():
    base = _base_config()
    schedule = failures_for_config(
        base, crashes=FAILURES_PER_KIND, partitions=FAILURES_PER_KIND
    )
    return base.with_(failures=schedule)


def _assert_conserved(result):
    assert (
        result.counters.deliveries + result.counters.drops
        == result.counters.messages
    )


def bench_failure_recovery_overhead(benchmark):
    static_config = _base_config()
    failed_config = _failed_config()

    start = time.perf_counter()
    static = run_simulation(static_config)
    static_s = time.perf_counter() - start

    start = time.perf_counter()
    failed = benchmark.pedantic(
        run_simulation, args=(failed_config,), rounds=1, iterations=1
    )
    failed_s = time.perf_counter() - start

    _assert_conserved(failed)
    assert failed.counters.drops > 0  # crashes + partitions really dropped
    assert failed.counters.resyncs == FAILURES_PER_KIND  # one per recovery
    assert failed.counters.edges_added > 0  # orphans were re-homed
    # Fidelity degrades but does not collapse under two crashes and two
    # partitions of a 20-repository network.
    assert failed.loss_of_fidelity < static.loss_of_fidelity + 25.0
    # Same seed, same schedule: the failed run is fully deterministic.
    assert run_simulation(failed_config) == failed

    benchmark.extra_info["static_s"] = round(static_s, 3)
    benchmark.extra_info["failed_s"] = round(failed_s, 3)
    benchmark.extra_info["drops"] = failed.counters.drops
    benchmark.extra_info["failover_edge_moves"] = (
        failed.counters.edges_added + failed.counters.edges_removed
    )
    # Four failure events (each a graph diff + rewiring or a resync)
    # must stay a modest multiple of the static run; the +0.5 s floor
    # absorbs timer noise on loaded CI runners.
    assert failed_s < 5.0 * static_s + 0.5, (
        f"failure overhead exploded: static {static_s:.2f}s vs "
        f"failed {failed_s:.2f}s"
    )


def bench_resync_cheaper_than_full_state(benchmark):
    failed = benchmark.pedantic(
        run_simulation, args=(_failed_config(),), rounds=1, iterations=1
    )

    _assert_conserved(failed)
    counters = failed.counters
    assert counters.resyncs == FAILURES_PER_KIND
    # A full-state transfer ships one value per subscribed item per
    # recovery -- exactly what the anti-entropy pass *checks*.  The
    # replayed update-set only carries the diverged items, so its
    # message cost must come in strictly under that.
    assert counters.resync_checks > 0
    assert counters.resync_messages < counters.resync_checks, (
        f"anti-entropy resync sent {counters.resync_messages} messages "
        f"for {counters.resync_checks} subscribed items -- no cheaper "
        "than a full-state transfer"
    )

    benchmark.extra_info["resyncs"] = counters.resyncs
    benchmark.extra_info["full_state_cost"] = counters.resync_checks
    benchmark.extra_info["resync_messages"] = counters.resync_messages
    benchmark.extra_info["resync_savings_pct"] = round(
        100.0 * (1.0 - counters.resync_messages / counters.resync_checks), 1
    )


def bench_failure_kernel_bit_identity(benchmark):
    failed_config = _failed_config()
    scalar = run_simulation(failed_config.with_(kernel="scalar"))

    vectorized = benchmark.pedantic(
        run_simulation,
        args=(failed_config.with_(kernel="vectorized"),),
        rounds=1,
        iterations=1,
    )

    assert vectorized == scalar
    _assert_conserved(vectorized)
    assert vectorized.counters.drops == scalar.counters.drops
    assert vectorized.counters.resync_messages == scalar.counters.resync_messages

"""Benchmark: regenerate Figure 8 (filtering vs. flooding).

Shape assertions: flooding collapses at high fan-out while the filtered
system stays flat near zero, and flooding sends far more messages.
"""

from benchmarks.conftest import BENCH_DEGREES, BENCH_OVERRIDES
from repro.experiments import figure8


def bench_figure8_filtering(once):
    result = once(figure8.run, preset="tiny", degrees=BENCH_DEGREES, **BENCH_OVERRIDES)
    flood = result.series_by_label("All updates").ys
    filtered = result.series_by_label("Filtered").ys
    assert flood[-1] > 10 * max(filtered[-1], 0.01)
    assert max(filtered) < 1.0
    assert (
        result.notes["messages (all updates, max degree)"]
        > 2 * result.notes["messages (filtered, max degree)"]
    )

"""Benchmark: workload trace-generation throughput.

Pins the cost of the workload layer itself, independent of any
simulation: each generator produces a 12-item x 2 000-sample trace set
(24 000 polled samples) under the timer, and the samples-per-second rate
is recorded in the benchmark extra-info.  The assertions bound the
obvious regressions -- a generator that silently becomes quadratic in
``n_samples``, or the replay path re-parsing files per item -- without
pinning wall-clock numbers that vary across runners.

Determinism is asserted alongside: every generator must produce
bit-identical trace sets from identical streams, the contract the
sweep subsystem's parallel merging rests on.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sim.rng import RandomStreams
from repro.traces.io import write_trace_csv
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    ReplayWorkload,
    Table1Workload,
)

N_ITEMS = 12
N_SAMPLES = 2_000


def _factory(seed: int = 3913):
    streams = RandomStreams(seed)
    return lambda i: streams.spawn("traces", i)


def _generate(workload):
    return workload.make_traces(N_ITEMS, rng_factory=_factory(), n_samples=N_SAMPLES)


def _assert_valid_and_deterministic(workload, traces):
    assert len(traces) == N_ITEMS
    for trace in traces:
        assert len(trace) <= N_SAMPLES
        assert np.isfinite(trace.values).all()
    again = _generate(workload)
    for a, b in zip(traces, again):
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.values, b.values)


def _bench_generation(benchmark, workload):
    start = time.perf_counter()
    traces = benchmark.pedantic(_generate, args=(workload,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _assert_valid_and_deterministic(workload, traces)
    benchmark.extra_info["samples_per_s"] = round(N_ITEMS * N_SAMPLES / elapsed)


def bench_workload_table1_generation(benchmark):
    _bench_generation(benchmark, Table1Workload())


def bench_workload_flash_crowd_generation(benchmark):
    _bench_generation(benchmark, FlashCrowdWorkload())


def bench_workload_diurnal_generation(benchmark):
    _bench_generation(benchmark, DiurnalWorkload())


def bench_workload_replay_throughput(benchmark, tmp_path):
    # Fewer files than items: the round-robin cycling path must parse
    # each unique file once, not once per item.
    n_files = 3
    corpus = Table1Workload().make_traces(
        n_files, rng_factory=_factory(), n_samples=N_SAMPLES
    )
    for i, trace in enumerate(corpus):
        write_trace_csv(trace, tmp_path / f"item{i:03d}.csv")
    workload = ReplayWorkload(path=str(tmp_path))

    start = time.perf_counter()
    traces = benchmark.pedantic(_generate, args=(workload,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _assert_valid_and_deterministic(workload, traces)
    for i, replayed in enumerate(traces):
        assert np.array_equal(corpus[i % n_files].values, replayed.values)
    benchmark.extra_info["samples_per_s"] = round(N_ITEMS * N_SAMPLES / elapsed)

"""Benchmark: regenerate Figure 10 (preference-function sensitivity).

Shape assertion: with controlled cooperation, P1 (with availability) and
P2 (without) are nearly indistinguishable -- the paper reports <1%.
"""

from benchmarks.conftest import BENCH_OVERRIDES
from repro.experiments import figure10


def bench_figure10_preference_functions(once):
    result = once(
        figure10.run,
        preset="tiny",
        degrees=[4, 20],
        t_percent=100.0,
        **BENCH_OVERRIDES,
    )
    p1w = result.series_by_label("P1W").ys
    p2w = result.series_by_label("P2W").ys
    for a, b in zip(p1w, p2w):
        assert abs(a - b) < 3.0

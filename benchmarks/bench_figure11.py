"""Benchmark: regenerate Figure 11 (centralised vs. distributed).

Shape assertions: the centralised source performs noticeably more checks
(paper: ~50% more); both exact policies send essentially the same number
of messages and reach comparable fidelity.
"""

from benchmarks.conftest import BENCH_OVERRIDES
from repro.experiments import figure11


def bench_figure11_policy_overheads(once):
    result = once(figure11.run, preset="tiny", t_percent=80.0, **BENCH_OVERRIDES)
    assert result.check_ratio > 1.2
    assert 0.8 < result.message_ratio < 1.2
    assert abs(result.centralized_loss - result.distributed_loss) < 3.0

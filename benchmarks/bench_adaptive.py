"""Benchmark: adaptive re-optimization overhead and its fidelity win.

Two measurements over the tiny-preset workload:

- **controller overhead**: a drift-free ``table1`` run with the
  adaptive controller armed but never firing (threshold far above any
  stationary drift) against the same config without it.  The controller
  then costs only the periodic counter snapshots and the window
  arithmetic, and the assertion bounds that to <5% of the static run
  (plus a small floor for timer noise on loaded CI runners) -- carrying
  the controller can never silently tax runs that don't need it.
- **fidelity win**: under the ``flash_crowd`` drift pattern, one
  drift-triggered rewire must beat the static LeLA build on loss of
  fidelity without spending more in total (update messages plus
  resubscriptions) -- the ``adaptive_tradeoff`` domination claim, pinned
  at benchmark scale.

Determinism (re-running reproduces the result bit-for-bit) and
conservation (``deliveries + drops == messages``) are asserted on every
adaptive run.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine import SCALE_PRESETS, run_simulation
from repro.engine.adaptive import AdaptivePolicy
from repro.workloads import FlashCrowdWorkload

#: Stationary table1 traffic never drifts this far; the controller
#: ticks but must never trigger (asserted below, not assumed).
QUIET = AdaptivePolicy(window=60.0, threshold=10.0)

#: The winning grid point at benchmark scale: one subtree-scoped rewire
#: after the first minute of flash-crowd drift.
ACTIVE = AdaptivePolicy(window=60.0, threshold=0.75, max_rewires=1)


def _base_config():
    return SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)


def _assert_conserved(result):
    assert (
        result.counters.deliveries + result.counters.drops
        == result.counters.messages
    )


def _best_of(config, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_simulation(config)
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_idle_controller_overhead(benchmark):
    static_config = _base_config()
    quiet_config = static_config.with_(adaptive=QUIET)

    static, static_s = _best_of(static_config)
    quiet, quiet_s = _best_of(quiet_config)
    benchmark.pedantic(
        run_simulation, args=(quiet_config,), rounds=1, iterations=1
    )

    # Armed but silent: the controller ticked, never triggered, and the
    # run is observationally the static run.
    assert quiet.extras["adaptive_ticks"] > 0
    assert quiet.extras["adaptive_triggered"] == 0
    assert quiet.extras["adaptive_rewires"] == 0
    assert quiet.counters.reconfigurations == 0
    assert quiet.loss_of_fidelity == static.loss_of_fidelity
    assert quiet.counters.messages == static.counters.messages
    _assert_conserved(quiet)

    overhead = (quiet_s - static_s) / static_s
    benchmark.extra_info["static_s"] = round(static_s, 4)
    benchmark.extra_info["quiet_s"] = round(quiet_s, 4)
    benchmark.extra_info["overhead_percent"] = round(100.0 * overhead, 2)
    # <5% of the static run; the +50 ms floor absorbs scheduler noise
    # when the static run itself finishes in a couple hundred ms.
    assert quiet_s < 1.05 * static_s + 0.05, (
        f"idle adaptive controller cost {100.0 * overhead:.1f}%: "
        f"static {static_s:.3f}s vs armed {quiet_s:.3f}s"
    )


def bench_fidelity_win_under_flash_crowd(benchmark):
    flash_config = _base_config().with_(workload=FlashCrowdWorkload())
    adaptive_config = flash_config.with_(adaptive=ACTIVE)

    static = run_simulation(flash_config)
    adaptive = benchmark.pedantic(
        run_simulation, args=(adaptive_config,), rounds=1, iterations=1
    )

    _assert_conserved(adaptive)
    assert adaptive.extras["adaptive_rewires"] == 1
    assert adaptive.counters.resubscriptions > 0
    # The domination claim at benchmark scale: strictly better fidelity
    # at no extra total cost, reconfiguration charged honestly.
    static_cost = static.counters.messages + static.counters.resubscriptions
    adaptive_cost = (
        adaptive.counters.messages + adaptive.counters.resubscriptions
    )
    assert adaptive.loss_of_fidelity < static.loss_of_fidelity
    assert adaptive_cost <= static_cost
    # Same seed, same policy: the adaptive run is fully deterministic.
    assert run_simulation(adaptive_config) == adaptive

    benchmark.extra_info["static_loss"] = round(static.loss_of_fidelity, 4)
    benchmark.extra_info["adaptive_loss"] = round(
        adaptive.loss_of_fidelity, 4
    )
    benchmark.extra_info["static_cost"] = static_cost
    benchmark.extra_info["adaptive_cost"] = adaptive_cost

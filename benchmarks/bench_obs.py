"""Benchmark: observability overhead pins.

Two guarantees live here:

1. **Disabled hooks are free.** With no observer attached the only cost
   the trace layer adds to the hot loop is an ``is not None`` branch per
   hook site.  The pin measures that branch cost directly (a tight
   microbenchmark) and multiplies it by the number of hook sites the run
   actually executes (derivable exactly from ``CostCounters``), then
   asserts the estimate stays under 2% of the untraced wall time on the
   Table 1-calibrated default workload.
2. **Enabled tracing is bounded.** Attaching a ``TraceRecorder`` -- which
   materialises a span per source/check/forward/drop/deliver decision
   plus edge-latency histograms -- must stay within a small constant
   factor of the untraced run, and the traced result must remain
   bit-identical.

CI uploads the pytest-benchmark JSON (with the measured ratios in
``extra_info``) as a build artifact, so overhead drift is visible in
history before it ever trips the assertion.
"""

import time

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import run_simulation
from repro.obs.trace import TraceRecorder

#: Table 1-calibrated default workload at benchmark scale: loaded
#: enough (12 items, 25 ms computation, 500 samples) that the per-check
#: hot loop dominates the measurement.
OBS_CONFIG = SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)


def _hook_sites(counters) -> int:
    """How many observer guards the run evaluated, exactly.

    One per policy check (source + repository side), one per charged
    forward, one per drop and one per delivery; the source/deliver
    guards are a strict subset of these counts, so this overestimates
    slightly -- which only makes the <2% pin harder to pass.
    """
    return (
        counters.source_checks
        + counters.repository_checks
        + counters.messages
        + counters.drops
        + counters.deliveries
    )


def bench_obs_disabled_hook_overhead(benchmark):
    """Estimated cost of the dormant hooks: < 2% of untraced runtime."""
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_simulation(OBS_CONFIG), rounds=1, iterations=1
    )
    untraced_s = time.perf_counter() - start

    # Per-branch cost of `if observer is not None`, measured in a tight
    # loop (min over batches to shed scheduler noise).
    observer = None
    n = 100_000
    per_branch_s = min(
        _time_guard_loop(observer, n) / n for _ in range(5)
    )

    sites = _hook_sites(result.counters)
    overhead_s = sites * per_branch_s
    overhead_pct = 100.0 * overhead_s / untraced_s

    benchmark.extra_info["hook_sites"] = sites
    benchmark.extra_info["per_branch_ns"] = round(per_branch_s * 1e9, 3)
    benchmark.extra_info["untraced_s"] = round(untraced_s, 3)
    benchmark.extra_info["disabled_overhead_pct"] = round(overhead_pct, 4)
    assert overhead_pct < 2.0, (
        f"dormant observer hooks cost {overhead_pct:.3f}% of the untraced "
        f"run ({sites} sites x {per_branch_s * 1e9:.1f} ns)"
    )


def _time_guard_loop(observer, n: int) -> float:
    start = time.perf_counter()
    hits = 0
    for _ in range(n):
        if observer is not None:
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits == 0
    return elapsed


def bench_obs_enabled_tracing_overhead(benchmark):
    """Recording every span stays within 4x -- and stays bit-identical."""
    start = time.perf_counter()
    untraced = run_simulation(OBS_CONFIG)
    untraced_s = time.perf_counter() - start

    recorder = TraceRecorder(policy=OBS_CONFIG.policy)
    start = time.perf_counter()
    traced = benchmark.pedantic(
        lambda: run_simulation(OBS_CONFIG, observer=recorder),
        rounds=1,
        iterations=1,
    )
    traced_s = time.perf_counter() - start

    assert traced == untraced  # recording must never perturb the result
    ratio = traced_s / untraced_s
    benchmark.extra_info["untraced_s"] = round(untraced_s, 3)
    benchmark.extra_info["traced_s"] = round(traced_s, 3)
    benchmark.extra_info["traced_over_untraced"] = round(ratio, 2)
    benchmark.extra_info["spans"] = len(recorder)
    assert ratio < 4.0, (
        f"enabled tracing is {ratio:.2f}x the untraced run "
        f"({traced_s:.2f}s vs {untraced_s:.2f}s for {len(recorder)} spans)"
    )

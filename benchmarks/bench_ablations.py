"""Benchmark: the ablations beyond the paper's figures.

- Eq. (2)'s f: fidelity insensitive for f >= 50 (the footnote study).
- Eq. (7) guard: removing it costs fidelity even though it saves
  messages (the Figure 4 phenomenon, measured end to end).
"""

from repro.experiments import sensitivity


def bench_f_sensitivity(once):
    result = once(
        sensitivity.run_f_sensitivity,
        preset="tiny",
        f_values=(50.0, 100.0, 200.0),
        t_percent=80.0,
        n_items=8,
        trace_samples=500,
    )
    assert result.notes["max variation for f>=50 (paper: ~1%)"] < 2.5


def bench_eq7_guard(once):
    result = once(
        sensitivity.run_eq7_ablation,
        preset="tiny",
        t_percent=80.0,
        n_items=8,
        trace_samples=500,
    )
    distributed_loss, eq3_loss = result.series[0].ys
    assert eq3_loss >= distributed_loss
    assert result.notes["messages eq3_only"] <= result.notes["messages distributed"]

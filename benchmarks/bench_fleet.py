"""Benchmark: sharded fleet vs single-process TCP delivery capacity.

The same loaded tiny-preset workload is replayed twice over real
sockets at an aggressive time scale -- once through the single-process
TCP transport (one event loop realises every delivery), once through a
four-worker fleet (each worker's loop realises only its shard).  Both
paths reproduce the exact same logical message sequence, so the
comparison isolates transport capacity:

- **agreement**: the fleet replays the same wire count as both
  single-process transports and scores fidelity with the jitter-free
  in-process reference -- sharding changes where work runs, never what
  happens;
- **capacity**: at four workers the fleet's steady-state delivery rate
  must at least match the single process.  The fleet rate is scored
  over the replay window (epoch to quiescence); the N redundant
  config rebuilds happen before the epoch and amortise over run
  length, so they are deliberately excluded.

Skipped on boxes without four cores (the claim is about parallelism)
or without localhost sockets.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket

import pytest

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine import SCALE_PRESETS
from repro.fleet import run_fleet
from repro.live import run_live

#: Simulated seconds per wall second: high enough that delivery work,
#: not schedule pacing, bounds the rate.
TIME_SCALE = 2_000.0

WORKERS = 4


def _config():
    return SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)


def _require_sockets():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind localhost sockets here: {exc}")


def bench_fleet_vs_single_process(benchmark):
    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(f"fleet capacity claim needs >= {WORKERS} cores")
    _require_sockets()
    config = _config()

    # Ground truth for fidelity: the deterministic in-process transport.
    # The TCP run provides the capacity baseline but scores through
    # wall-clock jitter at this aggressive time scale, so fidelity
    # agreement is judged against the jitter-free reference.
    reference = run_live(config, "inprocess")
    single = run_live(config, "tcp", time_scale=TIME_SCALE)
    assert single.conserved and single.dropped == 0

    fleet = benchmark.pedantic(
        run_fleet,
        args=(config,),
        kwargs=dict(workers=WORKERS, time_scale=TIME_SCALE),
        rounds=1,
        iterations=1,
    )
    assert fleet.conserved and fleet.dropped == 0
    # Same logical run: identical wire volume, near-identical fidelity.
    assert fleet.sent == single.sent == reference.sent
    assert abs(fleet.loss_of_fidelity - reference.loss_of_fidelity) <= 0.5

    single_rate = single.delivered / single.wall_seconds
    fleet_rate = fleet.delivered / fleet.extras["worker_wall_seconds"]
    benchmark.extra_info["single_deliveries_per_s"] = round(single_rate)
    benchmark.extra_info["fleet_deliveries_per_s"] = round(fleet_rate)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["speedup"] = round(fleet_rate / single_rate, 2)

    _write_artifact(
        "bench_fleet.json",
        {
            "workers": WORKERS,
            "time_scale": TIME_SCALE,
            "single_deliveries_per_s": round(single_rate),
            "fleet_deliveries_per_s": round(fleet_rate),
            "speedup": round(fleet_rate / single_rate, 3),
            "sent": fleet.sent,
            "loss_of_fidelity": fleet.loss_of_fidelity,
        },
    )

    assert fleet_rate >= single_rate, (
        f"a {WORKERS}-worker fleet moved {fleet_rate:.0f} deliveries/s "
        f"against {single_rate:.0f}/s single-process; sharding made the "
        "live plane slower"
    )


def _write_artifact(name: str, payload: dict) -> None:
    out_dir = pathlib.Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    (out_dir / name).write_text(json.dumps(payload, indent=2) + "\n")

"""Benchmark: the push vs. pull extension experiment.

Shape assertions: cooperative push achieves the best fidelity; pull
fidelity degrades as the TTR grows; the adaptive TTR lands between the
fast and slow fixed settings on both fidelity and traffic.
"""

from repro.experiments import pull_baseline


def bench_push_vs_pull(once):
    result = once(
        pull_baseline.run,
        preset="tiny",
        t_percent=80.0,
        ttrs_s=(2.0, 30.0),
        n_items=8,
        trace_samples=600,
    )
    systems = result.notes["systems"]
    losses = dict(zip(systems, result.series_by_label("loss %").ys))
    messages = dict(zip(systems, result.series_by_label("messages").ys))

    assert losses["push (coop)"] < min(
        loss for name, loss in losses.items() if name != "push (coop)"
    ), "cooperative push must dominate every pull variant on fidelity"
    assert losses["pull ttr=2s"] < losses["pull ttr=30s"]
    assert messages["pull ttr=2s"] > messages["pull ttr=30s"]
    adaptive = losses["pull adaptive"]
    assert losses["pull ttr=2s"] <= adaptive <= losses["pull ttr=30s"]

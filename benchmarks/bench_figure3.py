"""Benchmark: regenerate Figure 3 (loss of fidelity vs. cooperation).

Shape assertions: the T=100 curve is U-shaped with its minimum at a
moderate degree; curves order by stringency; T=0 stays flat near zero.
"""

from benchmarks.conftest import BENCH_DEGREES, BENCH_OVERRIDES
from repro.experiments import figure3


def bench_figure3_u_curve(once):
    result = once(
        figure3.run,
        preset="tiny",
        t_values=(100.0, 50.0, 0.0),
        degrees=BENCH_DEGREES,
        **BENCH_OVERRIDES,
    )
    t100 = result.series_by_label("T=100").ys
    best = min(t100)
    assert t100[0] > 1.5 * best, "chain arm must rise above the optimum"
    assert t100[-1] > 1.3 * best, "full-fan-out arm must rise again"
    t0 = result.series_by_label("T=0").ys
    assert max(t0) < 1.0, "lax mix should be flat near zero"
    for a, b in zip(t100, t0):
        assert a >= b

"""Benchmark: regenerate Section 6.3.5 (scalability sweep).

Shape assertion: tripling the repository count under controlled
cooperation grows the loss of fidelity by less than 5 percentage points.
"""

from repro.experiments import scalability


def bench_scalability_triple_repositories(once):
    result = once(
        scalability.run,
        preset="tiny",
        repo_counts=(20, 40, 60),
        t_percent=80.0,
        n_items=8,
        trace_samples=500,
    )
    assert result.notes["loss increase base->max (paper: <5%)"] < 5.0
    losses = result.series_by_label("controlled cooperation").ys
    assert all(0.0 <= loss <= 100.0 for loss in losses)

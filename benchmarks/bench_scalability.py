"""Benchmark: Section 6.3.5 scalability, plus the vectorized-kernel pin.

Two guarantees live here:

1. Shape: tripling the repository count under controlled cooperation
   grows the loss of fidelity by less than 5 percentage points.
2. Performance: on the ``scalability`` preset (10^3 repositories, 10^5+
   modeled clients) the vectorized array-backed kernel beats the scalar
   oracle by at least 10x wall-clock while producing a bit-identical
   ``SimulationResult``.

The performance pin trims the preset's trace length, item count and
router mesh (Floyd-Warshall is cubic in routers and identical for both
kernels, so it would only dilute the measured ratio) but keeps the full
thousand repositories and grows the client plane to 2 million modeled
clients -- the regime the vectorized kernel exists for.  Measured
speedup on the development container: ~25x.
"""

import time

from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import DisseminationSimulation
from repro.engine.vectorized import VectorizedSimulation
from repro.experiments import scalability

#: The scalability preset, trimmed where both kernels pay identically.
SPEEDUP_CONFIG = SCALE_PRESETS["scalability"].with_(
    n_routers=120,
    n_items=2,
    trace_samples=150,
    clients_per_repository=2_000,
)


def bench_scalability_triple_repositories(once):
    result = once(
        scalability.run,
        preset="tiny",
        repo_counts=(20, 40, 60),
        t_percent=80.0,
        n_items=8,
        trace_samples=500,
    )
    assert result.notes["loss increase base->max (paper: <5%)"] < 5.0
    losses = result.series_by_label("controlled cooperation").ys
    assert all(0.0 <= loss <= 100.0 for loss in losses)


def bench_vectorized_kernel_speedup(benchmark):
    """The tentpole pin: >=10x over the scalar oracle, bit-identical."""
    setup = build_setup(SPEEDUP_CONFIG)

    start = time.perf_counter()
    scalar_result = DisseminationSimulation(setup).run()
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    vector_result = benchmark.pedantic(
        lambda: VectorizedSimulation(setup).run(), rounds=1, iterations=1
    )
    vector_s = time.perf_counter() - start

    assert vector_result == scalar_result  # full-dataclass bit-identity
    speedup = scalar_s / vector_s
    benchmark.extra_info["scalar_s"] = round(scalar_s, 3)
    benchmark.extra_info["vectorized_s"] = round(vector_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["modeled_clients"] = (
        SPEEDUP_CONFIG.n_repositories * SPEEDUP_CONFIG.clients_per_repository
    )
    assert speedup >= 10.0, (
        f"vectorized kernel only {speedup:.1f}x faster than the scalar "
        f"oracle (scalar {scalar_s:.2f}s, vectorized {vector_s:.2f}s)"
    )

"""Benchmark: regenerate Figure 9 (P% sensitivity).

Shape assertion: once the degree of cooperation is controlled, the load
controller's admission band P% becomes a second-order knob.
"""

from benchmarks.conftest import BENCH_OVERRIDES
from repro.experiments import figure9


def bench_figure9_p_band(once):
    result = once(
        figure9.run,
        preset="tiny",
        p_values=(1.0, 5.0, 25.0),
        degrees=[4, 20],
        t_percent=100.0,
        **BENCH_OVERRIDES,
    )
    controlled = [s for s in result.series if s.label.endswith("W")]
    assert len(controlled) == 3
    for i in range(len(result.xs)):
        ys = [s.ys[i] for s in controlled]
        assert max(ys) - min(ys) < 3.0

"""Micro-benchmarks of the substrates the reproduction runs on.

These are conventional pytest-benchmark timings (many rounds): the
event kernel's throughput, Floyd-Warshall routing at the paper's base
scale fraction, and the vectorised fidelity metric.
"""

import numpy as np

from repro.core.fidelity import loss_of_fidelity
from repro.network.delays import ParetoDelayModel
from repro.network.routing import build_routing
from repro.network.topology import generate_topology
from repro.sim.kernel import Simulator


def bench_kernel_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.schedule(0.001, chain, n - 1)

        sim.schedule(0.0, chain, 10_000)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_001


def bench_floyd_warshall_200_nodes(benchmark):
    """All-pairs routing over a 200-node random mesh."""
    topo = generate_topology(30, 169, np.random.default_rng(0), ParetoDelayModel())

    routing = benchmark(build_routing, topo)
    assert routing.n_nodes == 200
    assert np.isfinite(routing.dist_ms).all()


def bench_fidelity_metric_10k_steps(benchmark):
    """Loss computation over two 10k-step functions."""
    rng = np.random.default_rng(1)
    src_t = np.arange(10_000, dtype=float)
    src_v = np.cumsum(rng.normal(0, 0.02, 10_000)) + 50.0
    recv_t = src_t + 0.15
    recv_t[0] = 0.0

    loss = benchmark(
        loss_of_fidelity, src_t, src_v, recv_t, src_v, 0.05, 0.0, 9_999.0
    )
    assert 0.0 <= loss <= 100.0

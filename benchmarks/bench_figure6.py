"""Benchmark: regenerate Figure 6 (no cooperation, comp-delay sweep).

Shape assertion: loss of fidelity worsens steeply with the per-dependent
computational delay when the source serves every repository directly.
"""

from repro.experiments import figure6


def bench_figure6_no_cooperation_comp_sweep(once):
    result = once(
        figure6.run,
        preset="tiny",
        t_values=(100.0, 0.0),
        comp_delays_ms=(0.0, 12.5, 25.0),
        n_items=12,
        trace_samples=500,
    )
    t100 = result.series_by_label("T=100").ys
    assert t100[0] < 1.0
    assert t100[0] < t100[1] < t100[2]
    assert t100[2] > 3.0
    assert max(result.series_by_label("T=0").ys) < 1.0

"""Benchmark: regenerate Figure 5 (no cooperation, comm-delay sweep).

Shape assertion: with the source serving everyone, loss is already large
at zero communication delay (the bottleneck is computational) and does
not improve with faster networks.
"""

from benchmarks.conftest import BENCH_OVERRIDES
from repro.experiments import figure5


def bench_figure5_no_cooperation_comm_sweep(once):
    result = once(
        figure5.run,
        preset="tiny",
        t_values=(100.0, 0.0),
        comm_delays_ms=(0.0, 50.0, 125.0),
        **BENCH_OVERRIDES,
    )
    t100 = result.series_by_label("T=100").ys
    assert t100[0] > 3.0, "loss must exist even on a zero-delay network"
    assert t100[-1] >= t100[0], "faster networks cannot rescue no-cooperation"
    assert max(result.series_by_label("T=0").ys) < 1.0

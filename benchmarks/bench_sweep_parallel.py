"""Benchmark: the parallel sweep subsystem vs. the serial path.

Two measurements on one multi-point degree sweep:

- **speedup**: wall-clock of ``run_sweep(jobs=N)`` vs. ``jobs=1``.  The
  >= 2x assertion only fires when the machine actually has >= 4 CPUs --
  on smaller boxes (1-2 core CI runners) the ratio is recorded in the
  benchmark extra-info instead, since no process pool can beat serial
  without cores to run on.
- **per-point overhead**: the pool's fixed cost (fork + pickle + merge)
  amortised over the sweep, measured against the serial per-point time.

Bit-identity of the merged output is asserted unconditionally -- that
part of the contract has nothing to do with core count.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine import SCALE_PRESETS, run_sweep
from repro.engine.sweep import resolve_jobs

#: Enough points that pool startup amortises and every worker stays busy.
SWEEP_DEGREES = [1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 20, 16, 12, 10, 8]

PARALLEL_JOBS = 4


def _sweep_configs():
    base = SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)
    return [base.with_(offered_degree=d) for d in SWEEP_DEGREES]


def _available_cpus() -> int:
    return resolve_jobs(None)


def bench_sweep_parallel_speedup(benchmark):
    configs = _sweep_configs()

    start = time.perf_counter()
    serial = run_sweep(configs, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        run_sweep, args=(configs,), kwargs={"jobs": PARALLEL_JOBS},
        rounds=1, iterations=1,
    )
    parallel_s = time.perf_counter() - start

    # The determinism contract holds on any machine.
    assert parallel == serial

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = _available_cpus()
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    if cpus >= PARALLEL_JOBS:
        assert speedup >= 2.0, (
            f"jobs={PARALLEL_JOBS} on {cpus} CPUs should at least halve the "
            f"wall-clock; got {speedup:.2f}x ({serial_s:.2f}s -> {parallel_s:.2f}s)"
        )
    else:
        # Not enough cores for parallel wins; the run above still proves
        # correctness, and the recorded ratio documents the machine.
        assert parallel_s < 10 * max(serial_s, 1e-9), "pool overhead exploded"


def bench_sweep_per_point_overhead(benchmark):
    """Fixed pool cost amortised per point: parallel time per point minus
    serial time per point, on a workload where both paths do identical
    simulation work."""
    configs = _sweep_configs()
    n = len(set(configs))

    start = time.perf_counter()
    run_sweep(configs, jobs=1)
    serial_per_point = (time.perf_counter() - start) / n

    jobs = min(PARALLEL_JOBS, _available_cpus())

    def parallel():
        return run_sweep(configs, jobs=max(jobs, 2))

    start = time.perf_counter()
    benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_per_point = (time.perf_counter() - start) / n

    # Overhead per point on an N-core box is bounded by (serial work /
    # effective parallelism) + fixed dispatch cost; assert the dispatch
    # cost alone stays under one serial point even with a single core
    # (fork + pickling a tiny result must be cheap relative to a
    # simulation of hundreds of thousands of events).
    overhead_per_point = parallel_per_point - serial_per_point / min(jobs, n)
    benchmark.extra_info["serial_per_point_s"] = round(serial_per_point, 4)
    benchmark.extra_info["parallel_per_point_s"] = round(parallel_per_point, 4)
    benchmark.extra_info["overhead_per_point_s"] = round(overhead_per_point, 4)
    assert overhead_per_point < 2.0 * serial_per_point + 0.25

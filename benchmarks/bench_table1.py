"""Benchmark: regenerate Table 1 (trace characteristics)."""

from repro.experiments import table1
from repro.traces.library import PAPER_TICKERS


def bench_table1_regeneration(once):
    stats = once(table1.run, 10_000)
    assert len(stats) == len(PAPER_TICKERS)
    for s, spec in zip(stats, PAPER_TICKERS):
        assert s.name == spec.ticker
        assert s.n_samples == 10_000
        # The synthetic calibration lands in a band of the same order of
        # magnitude as the paper's observed min/max spread.
        assert 0.2 * spec.band < s.band < 4.0 * spec.band
        # ~1 value per second for ~2.8 hours, as in the paper.
        assert s.span_s == 9_999.0

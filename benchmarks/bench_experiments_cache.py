"""Benchmark: the content-addressed experiment cache, warm vs. cold.

Runs the *entire* experiment registry (the full ``run_all --preset
tiny`` workload) through the unified execution plane twice against one
cache directory:

- **cold**: every distinct sweep point and auxiliary point (pull,
  hybrid, trace statistics) is simulated and stored;
- **warm** (under the benchmark timer): every point must be answered
  from the cache -- the acceptance bar is *zero new simulations* -- and
  every payload must be bit-identical to the cold run's.

Also pins the cross-experiment deduplication ratio: the union of all
plans must contain shared points (figures reuse each other's configs),
so ``planned > distinct`` whenever more than one experiment runs.

Recorded extra-info: cold/warm wall-clock, the speedup factor, the
dedup ratio and the point counts -- CI uploads the JSON for trending.
"""

from __future__ import annotations

import time

from repro.experiments import api
from repro.experiments.cache import ResultCache

#: Keep CI latency bounded while still exercising every registered
#: experiment, both auxiliary planes and the replay-corpus path.
TINY_OVERRIDES = dict(n_items=6, trace_samples=400)

#: Warm lookups are pure disk reads; even against a cold OS page cache
#: they must beat simulation by a wide margin.
MIN_WARM_SPEEDUP = 5.0

#: The crosscheck's TCP leg is wall-clock (real sockets, deliberately
#: never cached), so its payload cannot be bit-reproducible warm vs
#: cold; the in-process live legs stay on and stay bit-deterministic.
PARAMS = {"live_crosscheck": {"tcp": "off"}}


def bench_experiments_cache_warm_vs_cold(benchmark, tmp_path):
    names = api.available_experiments()
    cache = ResultCache(tmp_path / "cache")

    start = time.perf_counter()
    cold = api.run_experiments(
        names,
        preset="tiny",
        cache=cache,
        artifacts_dir=tmp_path / "artifacts",
        params_by_name=PARAMS,
        overrides=TINY_OVERRIDES,
    )
    cold_s = time.perf_counter() - start

    assert cold.stats.total_simulated > 0
    assert len(cold.payloads) == len(names)

    # Cross-experiment dedup: shared (preset, T, policy) points are
    # simulated once across figures.
    assert cold.stats.deduplicated > 0
    dedup_ratio = cold.stats.planned / cold.stats.distinct

    start = time.perf_counter()
    warm = benchmark.pedantic(
        api.run_experiments,
        args=(names,),
        kwargs=dict(
            preset="tiny",
            cache=cache,
            artifacts_dir=tmp_path / "artifacts",
            params_by_name=PARAMS,
            overrides=TINY_OVERRIDES,
        ),
        rounds=1,
        iterations=1,
    )
    warm_s = time.perf_counter() - start

    # The acceptance bar: a warm rerun performs zero new simulations...
    assert warm.stats.total_simulated == 0
    assert warm.stats.cache_hits == warm.stats.distinct
    # ...and reproduces every payload bit for bit.
    assert warm.payloads == cold.payloads
    assert warm.texts == cold.texts

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm rerun only {speedup:.1f}x faster than cold "
        f"({warm_s:.2f}s vs {cold_s:.2f}s)"
    )

    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    benchmark.extra_info["dedup_ratio"] = round(dedup_ratio, 4)
    benchmark.extra_info["planned_points"] = cold.stats.planned
    benchmark.extra_info["distinct_points"] = cold.stats.distinct
    benchmark.extra_info["simulated_cold"] = cold.stats.total_simulated
    benchmark.extra_info["simulated_warm"] = warm.stats.total_simulated


def bench_experiments_cache_cross_experiment_sharing(benchmark, tmp_path):
    """A config simulated for one figure is a cache hit for the next.

    figure3 at T=0 with the distributed policy plans exactly figure8's
    filtered arm, so running figure3 first must leave figure8 needing
    only its flooding arm.
    """
    cache = ResultCache(tmp_path / "cache")
    degrees = (1, 2, 4, 8, 20)
    api.run_experiments(
        ["figure3"],
        preset="tiny",
        cache=cache,
        params_by_name={"figure3": dict(t_values=(0.0,), degrees=degrees,
                                        policy="distributed")},
        overrides=TINY_OVERRIDES,
    )

    report = benchmark.pedantic(
        api.run_experiments,
        args=(["figure8"],),
        kwargs=dict(
            preset="tiny",
            cache=cache,
            params_by_name={"figure8": dict(degrees=degrees)},
            overrides=TINY_OVERRIDES,
        ),
        rounds=1,
        iterations=1,
    )
    # The filtered arm is answered from figure3's entries; only the
    # flooding arm simulates.
    assert report.stats.planned == 2 * len(degrees)
    assert report.stats.cache_hits == len(degrees)
    assert report.stats.simulated == len(degrees)

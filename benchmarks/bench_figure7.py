"""Benchmark: regenerate Figure 7 (controlled cooperation, three panels).

Shape assertions: the offered-resources sweep becomes an L (flat beyond
the Eq. 2 clamp); Eq. 2 raises the degree with communication delays and
lowers it with computational delays while keeping loss moderate.
"""

from benchmarks.conftest import BENCH_DEGREES, BENCH_OVERRIDES
from repro.experiments import figure7


def bench_figure7a_l_curve(once):
    result = once(
        figure7.run_base_case,
        preset="tiny",
        t_values=(100.0,),
        degrees=BENCH_DEGREES,
        **BENCH_OVERRIDES,
    )
    clamp = result.notes["coopDegree (Eq. 2 clamp at max offered)"]
    ys = result.series_by_label("T=100").ys
    tail = [y for x, y in zip(result.xs, ys) if x >= clamp]
    assert len(tail) >= 2
    assert max(tail) - min(tail) < 1e-9, "beyond the clamp the curve is flat"


def bench_figure7b_comm_adaptation(once):
    result = once(
        figure7.run_comm_sweep,
        preset="tiny",
        t_values=(100.0,),
        comm_delays_ms=(25.0, 125.0),
        n_items=12,
        trace_samples=500,
    )
    degrees = result.notes["Eq. (2) degrees along the sweep"]
    assert degrees[-1] > degrees[0]
    assert max(result.series_by_label("T=100").ys) < 8.0


def bench_figure7c_comp_adaptation(once):
    result = once(
        figure7.run_comp_sweep,
        preset="tiny",
        t_values=(100.0,),
        comp_delays_ms=(5.0, 25.0),
        n_items=12,
        trace_samples=500,
    )
    degrees = result.notes["Eq. (2) degrees along the sweep"]
    assert degrees[-1] < degrees[0]
    assert max(result.series_by_label("T=100").ys) < 8.0

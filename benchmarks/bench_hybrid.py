"""Benchmark: the push-pull hybrid threshold sweep.

Shape assertions: fidelity improves monotonically as more subscriptions
ride the push plane, and the $0.1 paper boundary already recovers most
of pure push's fidelity.
"""

from repro.experiments import hybrid_tradeoff


def bench_hybrid_threshold_tradeoff(once):
    result = once(
        hybrid_tradeoff.run,
        preset="tiny",
        thresholds=(0.005, 0.1, 1.0),
        t_percent=50.0,
        n_items=8,
        trace_samples=500,
    )
    losses = result.series_by_label("loss %").ys
    shares = result.series_by_label("push share %").ys
    assert shares[0] < shares[1] < shares[2]
    assert losses[0] > losses[1] >= losses[2]
    # The paper's stringent/lax boundary already lands near pure push.
    assert losses[1] < 0.3 * losses[0]

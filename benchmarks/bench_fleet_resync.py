"""Benchmark: sampled anti-entropy vs full-state transfer on rejoin.

The golden rejoin scenario: a repository serving 256 items reconnects
after a severed link lost the forwards for its three stalest items.  A
full-state resync would ship one frame pair plus all 256 values; the
setdiscovery-style sampled exchange probes a digest, samples
stalest-first and replays only the three-item delta.  The benchmark
asserts the sampled cost is *strictly* below full transfer, and that
the common no-loss rejoin collapses to the two-frame digest fast path.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.fleet import full_transfer_cost, run_resync

N_ITEMS = 256
N_LOST = 3


def _golden_rejoin():
    child = {item: 100 for item in range(N_ITEMS)}
    parent = {item: (100, 1.0) for item in range(N_ITEMS)}
    for item in range(N_LOST):
        child[item] = 60  # the severed tail: stalest heads at the child
        parent[item] = (100, 2.5)
    return child, parent


def bench_sampled_resync_beats_full_transfer(benchmark):
    child, parent = _golden_rejoin()
    missing, cost = benchmark.pedantic(
        run_resync, args=(child, parent), rounds=1, iterations=1
    )

    assert {item for item, _seq, _value in missing} == set(range(N_LOST))
    full = full_transfer_cost(N_ITEMS)
    benchmark.extra_info["sampled_messages"] = cost.messages
    benchmark.extra_info["full_transfer_messages"] = full
    benchmark.extra_info["rounds"] = cost.rounds
    benchmark.extra_info["savings_ratio"] = round(full / cost.messages, 1)

    # The no-loss rejoin (the overwhelmingly common reconnect) is two
    # frames regardless of item count.
    clean = {item: 100 for item in range(N_ITEMS)}
    clean_parent = {item: (100, 1.0) for item in range(N_ITEMS)}
    _nothing, clean_cost = run_resync(clean, clean_parent)
    assert clean_cost.messages == 2
    assert clean_cost.rounds == 1

    _write_artifact(
        "bench_fleet_resync.json",
        {
            "n_items": N_ITEMS,
            "n_lost": N_LOST,
            "sampled_messages": cost.messages,
            "full_transfer_messages": full,
            "digest_fast_path_messages": clean_cost.messages,
            "rounds": cost.rounds,
        },
    )

    assert cost.messages < full, (
        f"sampled resync cost {cost.messages} messages, not below the "
        f"full-transfer baseline of {full}"
    )


def _write_artifact(name: str, payload: dict) -> None:
    out_dir = pathlib.Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    (out_dir / name).write_text(json.dumps(payload, indent=2) + "\n")

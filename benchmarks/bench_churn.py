"""Benchmark: mid-run churn reconfiguration overhead and determinism.

Two measurements over the tiny-preset workload:

- **reconfiguration overhead**: wall-clock of a churned run (3 joins,
  3 departures, 3 coherency changes) against the static run of the same
  config.  Each churn event applies DynamicMembership, diffs the graph
  and rewires the live kernel; the assertion bounds that machinery to a
  small multiple of the static run so reconfiguration can never silently
  become the dominant cost.
- **parallel bit-identity**: a churned degree sweep through
  ``run_sweep(jobs=2)`` must merge bit-identically to the serial path --
  the PR-1 determinism contract extended to dynamic membership.

Conservation (``deliveries + drops == messages``) and the
reconfiguration counters are asserted on every run: they are the
accounting contract the churn subsystem adds.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine import SCALE_PRESETS, run_simulation, run_sweep, schedule_for_config

CHURN_PER_KIND = 3


def _base_config():
    return SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)


def _churned_config():
    base = _base_config()
    schedule = schedule_for_config(
        base, joins=CHURN_PER_KIND, departs=CHURN_PER_KIND, updates=CHURN_PER_KIND
    )
    return base.with_(churn=schedule)


def bench_churn_reconfiguration_overhead(benchmark):
    static_config = _base_config()
    churned_config = _churned_config()

    start = time.perf_counter()
    run_simulation(static_config)
    static_s = time.perf_counter() - start

    start = time.perf_counter()
    churned = benchmark.pedantic(
        run_simulation, args=(churned_config,), rounds=1, iterations=1
    )
    churned_s = time.perf_counter() - start

    assert churned.counters.reconfigurations == 3 * CHURN_PER_KIND
    assert churned.counters.resubscriptions > 0
    assert (
        churned.counters.deliveries + churned.counters.drops
        == churned.counters.messages
    )
    # Same seed, same schedule: the churned run is fully deterministic.
    assert run_simulation(churned_config) == churned

    benchmark.extra_info["static_s"] = round(static_s, 3)
    benchmark.extra_info["churned_s"] = round(churned_s, 3)
    benchmark.extra_info["reconfiguration_cost"] = churned.reconfiguration_cost
    # Nine reconfigurations (each a graph diff + rewiring) must stay a
    # modest multiple of the static run; the +0.5 s floor absorbs timer
    # noise on loaded CI runners where static_s is tens of milliseconds.
    assert churned_s < 5.0 * static_s + 0.5, (
        f"churn overhead exploded: static {static_s:.2f}s vs "
        f"churned {churned_s:.2f}s"
    )


def bench_churn_parallel_bit_identity(benchmark):
    churned = _churned_config()
    configs = [churned.with_(offered_degree=d) for d in (2, 3, 4, 6)]

    serial = run_sweep(configs, jobs=1)

    parallel = benchmark.pedantic(
        run_sweep, args=(configs,), kwargs={"jobs": 2}, rounds=1, iterations=1
    )

    assert parallel == serial
    for result in parallel:
        assert result.counters.reconfigurations == 3 * CHURN_PER_KIND
        assert (
            result.counters.deliveries + result.counters.drops
            == result.counters.messages
        )

"""Benchmark: live in-process transport throughput and sim overhead.

Two measurements over the tiny-preset workload:

- **deliveries per second** of the deterministic in-process transport:
  the live network runs the exact same filters and queueing semantics
  as the engine, so its virtual-time driver should move updates at a
  rate comparable to the simulation kernel.  The floor is deliberately
  conservative (a tenth of typically measured rates) -- it exists to
  catch the transport silently becoming quadratic (per-message replays,
  per-delivery graph scans), not to pin wall-clock numbers that vary
  across runners.
- **cross-plane overhead**: one live run against one simulation run of
  the same config.  The live plane re-derives the setup and drives the
  sans-io nodes, so a small multiple is expected; an order of magnitude
  means a regression.

Bit-determinism and message conservation are asserted on every run:
they are the contract the ``live_crosscheck`` experiment rests on.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_OVERRIDES
from repro.engine import SCALE_PRESETS, run_simulation
from repro.live import run_live

#: Conservative floor: measured rates on an idle laptop core are well
#: above 20k deliveries/s for this workload.
MIN_DELIVERIES_PER_S = 2_000


def _config():
    return SCALE_PRESETS["tiny"].with_(**BENCH_OVERRIDES)


def bench_live_inprocess_throughput(benchmark):
    config = _config()
    start = time.perf_counter()
    result = benchmark.pedantic(
        run_live, args=(config,), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start

    assert result.conserved and result.dropped == 0
    assert result.delivered > 0
    rate = result.delivered / elapsed
    benchmark.extra_info["deliveries_per_s"] = round(rate)
    benchmark.extra_info["deliveries"] = result.delivered
    assert rate >= MIN_DELIVERIES_PER_S, (
        f"in-process live transport moved {rate:.0f} deliveries/s, "
        f"below the {MIN_DELIVERIES_PER_S}/s floor"
    )

    # Bit-determinism: a second run reproduces every number exactly.
    again = run_live(config)
    assert again.loss_of_fidelity == result.loss_of_fidelity
    assert again.sent == result.sent
    assert again.per_repository_loss == result.per_repository_loss


def bench_live_vs_sim_overhead(benchmark):
    config = _config()

    sim_start = time.perf_counter()
    sim = run_simulation(config)
    sim_elapsed = time.perf_counter() - sim_start

    live_start = time.perf_counter()
    live = benchmark.pedantic(run_live, args=(config,), rounds=1, iterations=1)
    live_elapsed = time.perf_counter() - live_start

    # The cross-validation contract, asserted here too so the benchmark
    # can never go green while the planes drift.
    assert live.loss_of_fidelity == sim.loss_of_fidelity
    assert live.messages == sim.messages

    overhead = live_elapsed / sim_elapsed if sim_elapsed > 0 else 1.0
    benchmark.extra_info["live_vs_sim_overhead"] = round(overhead, 2)
    assert overhead < 10.0, (
        f"live in-process run took {overhead:.1f}x the simulation; "
        "the transport layer has become the dominant cost"
    )

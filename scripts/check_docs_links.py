#!/usr/bin/env python
"""Check internal links and anchors across the docs site.

Validates, without needing mkdocs installed:

- every relative markdown link in ``docs/**/*.md`` points at a file
  that exists;
- every ``#anchor`` (cross-page or same-page) matches a heading in the
  target page, using the same slugification the mkdocs toc extension
  applies;
- every page referenced from ``mkdocs.yml``'s nav exists, and every
  page under ``docs/`` is reachable from the nav (no orphans).

Exit status 1 with a per-problem report on any failure; used both by CI
(alongside ``mkdocs build --strict``, which cannot see anchors) and by
``tests/docs/test_docs_sync.py`` so tier-1 catches broken links before
review.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_NAV_PAGE = re.compile(r":\s*([\w./-]+\.md)\s*$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """The mkdocs/python-markdown toc slug for a heading line."""
    text = heading.replace("`", "").replace("*", "")
    text = re.sub(r"[^\w\s-]", "", text).strip().lower()
    return re.sub(r"[-\s]+", "-", text)


def anchors_of(markdown: str) -> set[str]:
    return {slugify(title) for _, title in _HEADING.findall(_FENCE.sub("", markdown))}


def check() -> list[str]:
    problems: list[str] = []
    root = DOCS.parent
    pages = {path: path.read_text() for path in sorted(DOCS.rglob("*.md"))}
    page_anchors = {path: anchors_of(text) for path, text in pages.items()}

    for path, text in pages.items():
        rel = path.relative_to(root)
        for target in _LINK.findall(_FENCE.sub("", text)):
            if target.startswith(_EXTERNAL):
                continue
            target_path, _, anchor = target.partition("#")
            resolved = (
                path if not target_path else (path.parent / target_path).resolve()
            )
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")
                continue
            if anchor and resolved.suffix == ".md":
                known = page_anchors.get(resolved)
                if known is None:
                    known = anchors_of(resolved.read_text())
                if anchor not in known:
                    problems.append(f"{rel}: missing anchor -> {target}")

    nav_pages = {DOCS / p for p in _NAV_PAGE.findall(MKDOCS_YML.read_text())}
    for page in sorted(nav_pages):
        if not page.exists():
            problems.append(f"mkdocs.yml: nav references missing page {page}")
    for path in pages:
        if path not in nav_pages:
            problems.append(f"{path.relative_to(root)}: not reachable from mkdocs.yml nav")
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("\n".join(problems))
        print(f"{len(problems)} documentation link problem(s)")
        return 1
    print(f"docs links OK ({len(list(DOCS.rglob('*.md')))} pages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

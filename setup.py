"""Packaging metadata for the reproduction.

The environment this reproduction targets has no ``wheel`` package, so
PEP 517 editable installs fail; this classic setup.py enables
``pip install -e . --no-use-pep517 --no-build-isolation``.

numpy is a hard runtime dependency: the trace layer stores change
arrays, the builder precomputes the global update schedule, and the
vectorized simulation kernel evaluates Eq. (3)/Eq. (7)/flooding/tag
cover over whole dependent sets as array operations.
"""

from setuptools import find_packages, setup

setup(
    name="repro-shah-vldb02",
    version="0.6.0",
    description=(
        "Reproduction of Shah, Ramamritham & Shenoy (VLDB 2002): "
        "resilient and coherency-preserving dissemination of dynamic "
        "data using cooperating repositories"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "docs": ["mkdocs"],
    },
)

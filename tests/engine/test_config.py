"""Unit tests for simulation configuration and presets."""

import pytest

from repro.engine.config import SCALE_PRESETS, SimulationConfig
from repro.errors import ConfigurationError


def test_default_config_matches_paper_parameters():
    config = SimulationConfig()
    assert config.comp_delay_ms == 12.5
    assert config.link_delay_mean_ms == 15.0
    assert config.link_delay_min_ms == 2.0
    assert config.subscription_probability == 0.5
    assert config.p_percent == 5.0
    assert config.interest_fraction_f == 50.0


def test_presets_exist_and_scale_up():
    assert set(SCALE_PRESETS) == {"tiny", "small", "paper", "scalability"}
    tiny, small, paper = (
        SCALE_PRESETS["tiny"],
        SCALE_PRESETS["small"],
        SCALE_PRESETS["paper"],
    )
    assert tiny.n_repositories < small.n_repositories < paper.n_repositories
    assert tiny.trace_samples < small.trace_samples < paper.trace_samples


def test_scalability_preset_reaches_roadmap_scale():
    # ROADMAP item 1: 10^3+ repositories, 10^5-10^6 modeled clients.
    scale = SCALE_PRESETS["scalability"]
    assert scale.n_repositories >= 1_000
    assert scale.n_repositories * scale.clients_per_repository >= 100_000
    assert scale.kernel == "auto"


@pytest.mark.parametrize("kernel", ["auto", "scalar", "vectorized"])
def test_kernel_field_accepts_known_kernels(kernel):
    assert SimulationConfig(kernel=kernel).kernel == kernel


def test_unknown_kernel_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(kernel="gpu")


def test_vectorized_kernel_rejects_churn_and_exotic_policies():
    from repro.engine.churn import ChurnEvent, ChurnSchedule

    schedule = ChurnSchedule(events=(ChurnEvent.depart(10.0, 1),))
    with pytest.raises(ConfigurationError):
        SimulationConfig(kernel="vectorized", churn=schedule)


def test_churn_tolerances_validated_at_build_time():
    from repro.engine.churn import ChurnEvent, ChurnSchedule

    bad = ChurnSchedule(
        events=(ChurnEvent.update(10.0, 1, {0: 1e-12}),)
    )
    with pytest.raises(ConfigurationError, match="quantisation"):
        SimulationConfig(churn=bad)
    nan = ChurnSchedule(
        events=(ChurnEvent.update(10.0, 1, {0: float("nan")}),)
    )
    with pytest.raises(ConfigurationError, match="finite"):
        SimulationConfig(churn=nan)


def test_negative_clients_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(clients_per_repository=-1)


def test_paper_preset_matches_base_case():
    paper = SCALE_PRESETS["paper"]
    assert paper.n_repositories == 100
    assert paper.n_routers == 600
    assert paper.trace_samples == 10_000


def test_with_replaces_fields_immutably():
    config = SimulationConfig()
    other = config.with_(t_percent=20.0, offered_degree=9)
    assert other.t_percent == 20.0
    assert other.offered_degree == 9
    assert config.t_percent != 20.0 or config.offered_degree != 9
    assert config is not other


def test_config_is_frozen():
    config = SimulationConfig()
    with pytest.raises(AttributeError):
        config.t_percent = 50.0  # type: ignore[misc]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_repositories": 0},
        {"n_routers": -1},
        {"n_items": 0},
        {"trace_samples": 1},
        {"comp_delay_ms": -1.0},
        {"link_delay_mean_ms": -1.0},
        {"comm_target_ms": -5.0},
        {"offered_degree": 0},
        {"t_percent": 150.0},
        {"interest_fraction_f": 0.0},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        SimulationConfig(**kwargs)


def test_with_revalidates():
    config = SimulationConfig()
    with pytest.raises(ConfigurationError):
        config.with_(offered_degree=0)


def test_default_workload_is_table1():
    from repro.workloads import Table1Workload

    assert SimulationConfig().workload == Table1Workload()


def test_configs_differing_only_in_workload_are_distinct_hash_keys():
    from repro.workloads import DiurnalWorkload

    base = SimulationConfig()
    other = base.with_(workload=DiurnalWorkload())
    assert base != other
    # The sweep merge keys results by config: workload-only deltas must
    # land in distinct dict slots.
    assert len({base: "a", other: "b"}) == 2
    assert base == SimulationConfig()


def test_invalid_workload_rejected():
    from repro.workloads import FlashCrowdWorkload

    with pytest.raises(ConfigurationError):
        SimulationConfig(workload="flash_crowd")
    with pytest.raises(ConfigurationError):
        SimulationConfig(workload=FlashCrowdWorkload(alpha=-1.0))

"""Churn-scenario tests: mid-run membership dynamics in the engine.

Covers the ISSUE-2 acceptance criteria: golden-seed regressions for
join-only / depart-only / mixed schedules, message conservation
(``deliveries + drops == messages``) under churn, and serial-vs-parallel
bit-identity of churned sweeps.
"""

import pytest

from repro.engine.builder import build_setup, make_membership
from repro.engine.churn import ChurnEvent, ChurnSchedule, schedule_for_config
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import run_simulation
from repro.engine.sweep import run_sweep
from repro.errors import ConfigurationError

BASE = SCALE_PRESETS["tiny"].with_(
    n_items=4, trace_samples=400, offered_degree=3, seed=3913
)


def churned(joins=0, departs=0, updates=0, **overrides):
    config = BASE.with_(**overrides) if overrides else BASE
    schedule = schedule_for_config(
        config, joins=joins, departs=departs, updates=updates
    )
    return config.with_(churn=schedule)


# ----------------------------------------------------------------------
# Golden-seed regressions: the mechanics (message counts, edge-level
# reconfiguration cost, surviving membership) are pinned at seed 3913;
# the fidelity float is asserted tightly but not bitwise, staying robust
# to platform-level numpy differences.
# ----------------------------------------------------------------------

GOLDEN = {
    "join-only": (dict(joins=3), 1.312943574667013, 3178, 3, 10, 3, 20),
    "depart-only": (dict(departs=3), 1.3800863064851803, 3406, 3, 34, 41, 17),
    "mixed": (dict(joins=2, departs=2, updates=2), 1.179585188685044, 2714, 6, 35, 36, 18),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_seed_regression(name):
    kwargs, loss, messages, reconf, added, removed, final = GOLDEN[name]
    result = run_simulation(churned(**kwargs))
    assert result.loss_of_fidelity == pytest.approx(loss, rel=1e-9)
    assert result.counters.messages == messages
    assert result.counters.reconfigurations == reconf
    assert result.counters.edges_added == added
    assert result.counters.edges_removed == removed
    assert result.reconfiguration_cost == added + removed
    assert result.extras["final_members"] == final


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_runs_are_bit_deterministic(name):
    kwargs = GOLDEN[name][0]
    config = churned(**kwargs)
    assert run_simulation(config) == run_simulation(config)


# ----------------------------------------------------------------------
# Accounting invariants under churn
# ----------------------------------------------------------------------

def test_conservation_under_mixed_churn():
    result = run_simulation(churned(joins=2, departs=2, updates=2))
    c = result.counters
    assert c.deliveries + c.drops == c.messages


def test_conservation_under_churn_with_message_loss():
    result = run_simulation(
        churned(joins=2, departs=2, updates=2, message_loss_probability=0.2)
    )
    c = result.counters
    assert c.drops > 0
    assert c.deliveries + c.drops == c.messages


def test_inflight_messages_to_departed_nodes_become_drops():
    # A 5-second mean hop delay keeps many updates in flight, so the
    # departures strand some of them (9 at this seed).
    result = run_simulation(
        churned(joins=2, departs=2, updates=2, comm_target_ms=5000.0)
    )
    c = result.counters
    assert c.drops > 0
    assert c.deliveries + c.drops == c.messages


def test_reconfiguration_counters_match_schedule():
    config = churned(joins=2, departs=2, updates=2)
    result = run_simulation(config)
    assert result.counters.reconfigurations == len(config.churn)
    assert (
        result.counters.resubscriptions
        == result.counters.edges_added + result.counters.edges_removed
    )
    assert result.reconfiguration_cost > 0


def test_static_run_reports_zero_reconfiguration():
    result = run_simulation(BASE)
    assert result.counters.reconfigurations == 0
    assert result.reconfiguration_cost == 0
    assert "churn_events" not in result.extras


def test_empty_schedule_is_normalised_to_static_membership():
    config = BASE.with_(churn=ChurnSchedule())
    assert config.churn is None
    assert config == BASE and hash(config) == hash(BASE)
    assert run_simulation(config) == run_simulation(BASE)


def test_schedule_referencing_unknown_item_rejected():
    schedule = ChurnSchedule((ChurnEvent.update(50.0, 1, {99: 0.1}),))
    with pytest.raises(ConfigurationError):
        build_setup(BASE.with_(churn=schedule))
    schedule = ChurnSchedule((ChurnEvent.join(50.0, 1, requirements={-1: 0.1}),))
    with pytest.raises(ConfigurationError):
        build_setup(BASE.with_(churn=schedule))


# ----------------------------------------------------------------------
# Mid-run semantics
# ----------------------------------------------------------------------

def test_late_joiner_is_served_after_joining():
    config = churned(joins=3)
    setup = build_setup(config)
    late = sorted(config.churn.late_joiners())
    assert late, "synthetic schedule must produce late joiners"
    # Late joiners are absent from the initial graph ...
    for repo in late:
        assert repo not in setup.graph.nodes
    # ... but scored (and served) once they join.
    result = run_simulation(config, setup=setup)
    for repo in late:
        assert repo in result.per_repository_loss
        assert result.per_repository_loss[repo] < 100.0


def test_departed_repository_scoring_stops_at_departure():
    config = churned(departs=3)
    departed = [e.repository for e in config.churn if e.kind == "depart"]
    result = run_simulation(config)
    # Departed repositories are still scored for their membership window.
    for repo in departed:
        assert repo in result.per_repository_loss
    assert result.extras["final_members"] == BASE.n_repositories - len(departed)


def test_mixed_schedule_has_all_three_kinds():
    config = churned(joins=2, departs=2, updates=2)
    kinds = {e.kind for e in config.churn}
    assert kinds == {"join", "depart", "update"}


def test_explicit_requirements_on_join_override_the_profile():
    schedule = ChurnSchedule(
        (ChurnEvent.join(100.0, 1, requirements={0: 0.05}),)
    )
    # Repository 1's generated profile is replaced by the explicit one.
    config = BASE.with_(churn=schedule)
    result = run_simulation(config)
    assert result.extras["final_members"] == BASE.n_repositories
    pair_losses = result.extras["per_pair_loss"]
    assert set(k for k in pair_losses if k[0] == 1) == {(1, 0)}


def test_depart_then_rejoin_is_served_again():
    """A repository that departs and later rejoins must be delivered to
    again (not treated as departed forever) and must initial-sync fresh
    copies rather than resume from its stale pre-departure state."""
    schedule = ChurnSchedule(
        (ChurnEvent.depart(50.0, 3), ChurnEvent.join(150.0, 3))
    )
    config = BASE.with_(churn=schedule)
    result = run_simulation(config)
    c = result.counters
    assert c.deliveries + c.drops == c.messages
    assert result.extras["final_members"] == BASE.n_repositories
    # The rejoiner is scored over both membership intervals and is
    # genuinely served after rejoining: its post-rejoin loss cannot be
    # the ~100% a permanently-stale copy would show.
    assert 3 in result.per_repository_loss
    assert result.per_repository_loss[3] < 50.0
    assert result == run_simulation(config)


def test_rejoiner_receives_deliveries_after_rejoin():
    from repro.engine.simulation import DisseminationSimulation

    schedule = ChurnSchedule(
        (ChurnEvent.depart(50.0, 3), ChurnEvent.join(150.0, 3))
    )
    setup = build_setup(BASE.with_(churn=schedule))
    sim = DisseminationSimulation(setup)
    sim.run()
    profile = setup.profiles[3]
    post_rejoin = [
        t
        for item_id in profile.requirements
        for t, _v in sim.delivery_log(3, item_id)
        if t > 150.0
    ]
    assert post_rejoin, "rejoined repository never received a delivery"


def test_membership_replay_matches_setup_graph():
    """The simulation's fresh membership rebuild is bit-identical to the
    graph the builder stored on the (shared, read-only) setup."""
    from repro.core.dynamics import _edges_of

    config = churned(joins=2, departs=1, updates=1)
    setup = build_setup(config)
    membership = make_membership(setup)
    assert _edges_of(membership.graph) == _edges_of(setup.graph)


def test_setup_reuse_is_safe_after_a_churned_run():
    """Running twice from one prebuilt setup gives identical results:
    churn never mutates the shared setup."""
    config = churned(joins=2, departs=2, updates=2)
    setup = build_setup(config)
    first = run_simulation(config, setup=setup)
    second = run_simulation(config, setup=setup)
    assert first == second


# ----------------------------------------------------------------------
# Parallel sweeps (the PR-1 determinism contract extended to churn)
# ----------------------------------------------------------------------

def test_churned_sweep_parallel_matches_serial_bitwise():
    mixed = churned(joins=2, departs=2, updates=2)
    configs = [mixed.with_(offered_degree=d) for d in (2, 3, 4, 6)]
    serial = run_sweep(configs, jobs=1)
    for jobs in (2, 4):
        assert run_sweep(configs, jobs=jobs) == serial


def test_churned_and_static_configs_mix_in_one_sweep():
    mixed = churned(joins=1, departs=1, updates=1)
    configs = [BASE, mixed, BASE.with_(offered_degree=5)]
    serial = run_sweep(configs, jobs=1)
    assert run_sweep(configs, jobs=2) == serial
    assert serial[0].counters.reconfigurations == 0
    assert serial[1].counters.reconfigurations == 3


# ----------------------------------------------------------------------
# Policy coverage and guard rails
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", ["distributed", "centralized", "flooding", "eq3_only"])
def test_every_policy_survives_mixed_churn(policy):
    result = run_simulation(churned(joins=1, departs=1, updates=1, policy=policy))
    c = result.counters
    assert c.reconfigurations == 3
    assert c.deliveries + c.drops == c.messages
    assert 0.0 <= result.loss_of_fidelity <= 100.0


def test_schedule_referencing_unknown_repository_rejected():
    schedule = ChurnSchedule((ChurnEvent.depart(10.0, 9999),))
    with pytest.raises(ConfigurationError):
        build_setup(BASE.with_(churn=schedule))


def test_hybrid_and_multisource_reject_churn():
    from repro.engine.hybrid import run_hybrid_simulation
    from repro.engine.multisource import build_multisource_setup

    config = churned(joins=1)
    with pytest.raises(ConfigurationError):
        run_hybrid_simulation(config)
    with pytest.raises(ConfigurationError):
        build_multisource_setup(config, n_sources=2)

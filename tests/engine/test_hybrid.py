"""Tests for the adaptive push-pull hybrid plane split."""

import pytest

from repro.core.interests import InterestProfile
from repro.engine.config import SCALE_PRESETS
from repro.engine.hybrid import run_hybrid_simulation, split_profiles
from repro.engine.simulation import run_simulation
from repro.errors import ConfigurationError


def profiles():
    return {
        1: InterestProfile(1, {0: 0.05, 1: 0.5}),
        2: InterestProfile(2, {0: 0.02}),
        3: InterestProfile(3, {1: 0.9}),
    }


def test_split_by_threshold():
    push, pull = split_profiles(profiles(), threshold_c=0.1)
    assert set(push) == {1, 2}
    assert set(pull) == {1, 3}
    assert push[1].requirements == {0: 0.05}
    assert pull[1].requirements == {1: 0.5}


def test_split_boundary_is_inclusive_for_push():
    push, pull = split_profiles({1: InterestProfile(1, {0: 0.1})}, 0.1)
    assert 1 in push and 1 not in pull


def test_split_invalid_threshold():
    with pytest.raises(ConfigurationError):
        split_profiles(profiles(), 0.0)


@pytest.fixture(scope="module")
def hybrid_config():
    return SCALE_PRESETS["tiny"].with_(
        n_items=6, trace_samples=500, t_percent=50.0, offered_degree=4
    )


def test_hybrid_runs_and_partitions_everything(hybrid_config):
    result = run_hybrid_simulation(hybrid_config)
    assert 0.0 <= result.loss_of_fidelity <= 100.0
    assert result.push_pairs > 0
    assert result.pull_pairs > 0
    assert result.messages == result.push_messages + result.pull_messages


def test_hybrid_covers_all_pairs(hybrid_config):
    from repro.engine.builder import build_setup

    setup = build_setup(hybrid_config)
    total_pairs = sum(len(p) for p in setup.profiles.values())
    result = run_hybrid_simulation(hybrid_config)
    assert result.push_pairs + result.pull_pairs == total_pairs


def test_all_push_when_threshold_huge(hybrid_config):
    result = run_hybrid_simulation(hybrid_config, threshold_c=100.0)
    assert result.pull_pairs == 0
    assert result.pull_messages == 0


def test_all_pull_when_threshold_tiny(hybrid_config):
    result = run_hybrid_simulation(hybrid_config, threshold_c=1e-6)
    assert result.push_pairs == 0
    assert result.push_messages == 0


def test_hybrid_saves_messages_versus_pure_push_of_everything(hybrid_config):
    # The pull plane only polls; for lax items that beats pushing every
    # qualifying change... at least it must not *inflate* push traffic.
    pure = run_simulation(hybrid_config)
    hybrid = run_hybrid_simulation(hybrid_config)
    assert hybrid.push_messages < pure.messages


def test_hybrid_fidelity_between_pure_extremes(hybrid_config):
    pure_push = run_simulation(hybrid_config)
    hybrid = run_hybrid_simulation(hybrid_config)
    # Push everything is the fidelity upper bound at this scale.
    assert hybrid.loss_of_fidelity >= pure_push.loss_of_fidelity


def test_hybrid_deterministic(hybrid_config):
    a = run_hybrid_simulation(hybrid_config)
    b = run_hybrid_simulation(hybrid_config)
    assert a.loss_of_fidelity == b.loss_of_fidelity
    assert a.messages == b.messages

"""Unit tests for setup assembly and reuse."""

import numpy as np
import pytest

from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS


@pytest.fixture(scope="module")
def setup():
    return build_setup(SCALE_PRESETS["tiny"].with_(offered_degree=4))


def test_setup_counts(setup):
    config = setup.config
    assert len(setup.repositories) == config.n_repositories
    assert len(setup.items) == config.n_items
    assert len(setup.traces) == config.n_items
    assert len(setup.profiles) == config.n_repositories


def test_graph_serves_every_profile(setup):
    for repo, profile in setup.profiles.items():
        for item_id in profile.requirements:
            assert item_id in setup.graph.nodes[repo].receive_c


def test_graph_validates(setup):
    budgets = {n: setup.effective_degree for n in setup.graph.nodes}
    setup.graph.validate(max_dependents=budgets)


def test_effective_degree_uncontrolled_is_offered(setup):
    assert setup.effective_degree == 4


def test_controlled_cooperation_clamps():
    config = SCALE_PRESETS["tiny"].with_(
        offered_degree=100, controlled_cooperation=True
    )
    setup = build_setup(config)
    assert setup.effective_degree < 100
    assert setup.effective_degree >= 1


def test_controlled_never_exceeds_offered():
    config = SCALE_PRESETS["tiny"].with_(
        offered_degree=2, controlled_cooperation=True
    )
    assert build_setup(config).effective_degree <= 2


def test_comm_target_retargets_network():
    config = SCALE_PRESETS["tiny"].with_(comm_target_ms=80.0)
    setup = build_setup(config)
    assert setup.avg_comm_delay_ms == pytest.approx(80.0)


def test_comm_target_zero_gives_zero_delays():
    config = SCALE_PRESETS["tiny"].with_(comm_target_ms=0.0)
    setup = build_setup(config)
    assert setup.avg_comm_delay_ms == 0.0


def test_zero_link_delay_mean_gives_zero_delays():
    config = SCALE_PRESETS["tiny"].with_(link_delay_mean_ms=0.0)
    setup = build_setup(config)
    assert setup.network.mean_repo_delay_ms() == 0.0


def test_build_is_deterministic():
    config = SCALE_PRESETS["tiny"]
    a, b = build_setup(config), build_setup(config)
    assert np.array_equal(a.network.topology.edges, b.network.topology.edges)
    for item_id in a.traces:
        assert np.array_equal(a.traces[item_id].values, b.traces[item_id].values)
    assert {r: p.requirements for r, p in a.profiles.items()} == {
        r: p.requirements for r, p in b.profiles.items()
    }


def test_reuse_shares_unchanged_pieces(setup):
    # Degree change: network, traces, interests all reusable.
    other = build_setup(setup.config.with_(offered_degree=2), base=setup)
    assert other.network is setup.network
    assert other.traces is setup.traces
    assert other.profiles is setup.profiles
    assert other.graph is not setup.graph


def test_reuse_rebuilds_interests_on_t_change(setup):
    other = build_setup(setup.config.with_(t_percent=10.0), base=setup)
    assert other.network is setup.network
    assert other.traces is setup.traces
    assert other.profiles is not setup.profiles


def test_reuse_rescales_network_on_comm_target_change(setup):
    first = build_setup(setup.config.with_(comm_target_ms=30.0), base=setup)
    second = build_setup(first.config.with_(comm_target_ms=60.0), base=first)
    assert second.avg_comm_delay_ms == pytest.approx(60.0)
    # Same topology object family: edges identical.
    assert np.array_equal(
        second.network.topology.edges, setup.network.topology.edges
    )


def test_reuse_ignored_on_seed_change(setup):
    other = build_setup(setup.config.with_(seed=999), base=setup)
    assert other.network is not setup.network
    assert other.traces is not setup.traces

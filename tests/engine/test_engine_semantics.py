"""Focused tests of the engine's modelling semantics (DESIGN.md §5)."""

import numpy as np
import pytest

from repro.core.dissemination import make_policy
from repro.core.interests import InterestProfile
from repro.core.items import DataItem
from repro.core.lela import build_d3g
from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import DisseminationSimulation
from repro.network.model import build_network
from repro.traces.model import Trace


def two_hop_setup(comp_delay_ms=0.0, values=(1.0, 1.2, 1.4, 1.5, 1.7, 2.0)):
    """Source -> repo 1 (c=0.3) -> repo 2 (c=0.5) on one item.

    Repo 1 relays the item for repo 2 but also wants it itself; the
    trace is exactly the paper's Figure 4 sequence by default.
    """
    network = build_network(2, 10, np.random.default_rng(3)).scaled_delays(0.0)
    items = [DataItem(item_id=0, name="X")]
    times = np.arange(len(values), dtype=float)
    traces = {0: Trace(name="X", times=times, values=np.array(values))}
    profiles = {
        1: InterestProfile(1, {0: 0.3}),
        2: InterestProfile(2, {0: 0.5}),
    }
    graph = build_d3g(
        [profiles[1], profiles[2]],
        source=0,
        comm_delay_ms=network.delay_ms,
        offered_degree=1,
    )
    config = SCALE_PRESETS["tiny"].with_(
        n_repositories=2, n_items=1, comp_delay_ms=comp_delay_ms,
        offered_degree=1,
    )
    return SimulationSetup(
        config=config,
        network=network,
        items=items,
        traces=traces,
        profiles=profiles,
        graph=graph,
        effective_degree=1,
        avg_comm_delay_ms=0.0,
    )


def test_figure4_chain_is_perfect_under_distributed():
    setup = two_hop_setup()
    result = DisseminationSimulation(setup, make_policy("distributed")).run()
    assert result.loss_of_fidelity == 0.0


def test_figure4_chain_loses_fidelity_under_eq3_only():
    # Drive Q's copy past its tolerance: extend the sequence so the
    # missed 1.4 turns into a real violation interval.
    setup = two_hop_setup(values=(1.0, 1.2, 1.4, 1.5, 1.51, 1.7, 2.0))
    result = DisseminationSimulation(setup, make_policy("eq3_only")).run()
    assert result.loss_of_fidelity > 0.0


def test_delivery_logs_reflect_figure4_forwards():
    setup = two_hop_setup()
    sim = DisseminationSimulation(setup, make_policy("distributed"))
    sim.run()
    q_values = [v for _, v in sim.delivery_log(2, 0)]
    # Priming value plus the guarded forward of 1.4.
    assert q_values[0] == 1.0
    assert 1.4 in q_values


def test_relay_only_items_not_scored_for_fidelity():
    """A repository relaying an item its own users never asked for must
    forward it but not have it counted in its fidelity."""
    network = build_network(2, 10, np.random.default_rng(3)).scaled_delays(0.0)
    items = [DataItem(item_id=0, name="X")]
    times = np.arange(4, dtype=float)
    traces = {0: Trace(name="X", times=times, values=np.array([1.0, 2.0, 3.0, 4.0]))}
    profiles = {
        1: InterestProfile(1, {0: 0.5}),  # re-profiled below
        2: InterestProfile(2, {0: 0.5}),
    }
    # Force the chain 0 -> 1 -> 2 where 1 has *no own interest*: build
    # via LeLA with an augmentation-only need.
    profiles[1] = InterestProfile(1, {0: 0.5})
    graph = build_d3g(
        [InterestProfile(1, {0: 0.5}), InterestProfile(2, {0: 0.5})],
        source=0,
        comm_delay_ms=network.delay_ms,
        offered_degree=1,
    )
    config = SCALE_PRESETS["tiny"].with_(
        n_repositories=2, n_items=1, comp_delay_ms=0.0, offered_degree=1
    )
    # Repo 1's *scored* profile omits the item: relay-only.
    scored_profiles = {
        1: InterestProfile(1, {}),
        2: profiles[2],
    }
    setup = SimulationSetup(
        config=config,
        network=network,
        items=items,
        traces=traces,
        profiles=scored_profiles,
        graph=graph,
        effective_degree=1,
        avg_comm_delay_ms=0.0,
    )
    result = DisseminationSimulation(setup, make_policy("distributed")).run()
    # Repo 1 forwarded (repo 2 received beyond the prime)...
    assert result.counters.deliveries > 0
    # ...but repo 1 contributes no fidelity entries.
    assert 1 not in result.per_repository_loss
    assert 2 in result.per_repository_loss


def test_centralized_source_drops_unneeded_updates():
    # With one lax tolerance, small moves are dropped at the source:
    # checks happen, no messages.
    network = build_network(1, 10, np.random.default_rng(3)).scaled_delays(0.0)
    items = [DataItem(item_id=0, name="X")]
    times = np.arange(3, dtype=float)
    traces = {0: Trace(name="X", times=times, values=np.array([1.0, 1.01, 1.02]))}
    profiles = {1: InterestProfile(1, {0: 0.9})}
    graph = build_d3g(
        [profiles[1]], source=0, comm_delay_ms=network.delay_ms, offered_degree=1
    )
    config = SCALE_PRESETS["tiny"].with_(
        n_repositories=1, n_items=1, comp_delay_ms=0.0, offered_degree=1
    )
    setup = SimulationSetup(
        config=config, network=network, items=items, traces=traces,
        profiles=profiles, graph=graph, effective_degree=1, avg_comm_delay_ms=0.0,
    )
    result = DisseminationSimulation(setup, make_policy("centralized")).run()
    assert result.messages == 0
    assert result.counters.source_checks == 2  # one per source change
    assert result.loss_of_fidelity == 0.0


def test_station_contention_delays_second_item():
    """Two items updating at the same instant at the source must be
    serialised: the second forwarded copy departs one comp delay later."""
    network = build_network(1, 10, np.random.default_rng(3)).scaled_delays(0.0)
    items = [DataItem(0, "A"), DataItem(1, "B")]
    times = np.array([0.0, 1.0])
    traces = {
        0: Trace(name="A", times=times, values=np.array([1.0, 9.0])),
        1: Trace(name="B", times=times, values=np.array([1.0, 9.0])),
    }
    profiles = {1: InterestProfile(1, {0: 0.1, 1: 0.1})}
    graph = build_d3g(
        [profiles[1]], source=0, comm_delay_ms=network.delay_ms, offered_degree=1
    )
    config = SCALE_PRESETS["tiny"].with_(
        n_repositories=1, n_items=2, comp_delay_ms=100.0, offered_degree=1
    )
    setup = SimulationSetup(
        config=config, network=network, items=items, traces=traces,
        profiles=profiles, graph=graph, effective_degree=1, avg_comm_delay_ms=0.0,
    )
    sim = DisseminationSimulation(setup, make_policy("distributed"))
    sim.run()
    arrival_a = sim.delivery_log(1, 0)[-1][0]
    arrival_b = sim.delivery_log(1, 1)[-1][0]
    first, second = sorted([arrival_a, arrival_b])
    assert first == pytest.approx(1.1)   # 1.0 + one 100 ms service
    assert second == pytest.approx(1.2)  # queued behind the first


def test_build_setup_graph_consistent_with_profiles(tiny_setup):
    for repo, profile in tiny_setup.profiles.items():
        state = tiny_setup.graph.nodes[repo]
        for item_id, c in profile.requirements.items():
            assert state.receive_c[item_id] <= c + 1e-12


def test_events_processed_matches_messages_plus_updates():
    setup = build_setup(
        SCALE_PRESETS["tiny"].with_(n_items=4, trace_samples=300, offered_degree=4)
    )
    sim = DisseminationSimulation(setup, make_policy("distributed"))
    result = sim.run()
    n_changes = sum(len(t.changes()) - 1 for t in setup.traces.values())
    assert result.events_processed == n_changes + result.counters.deliveries

"""Tests for the multi-source extension."""

import pytest

from repro.engine.config import SCALE_PRESETS
from repro.engine.multisource import (
    MultiSourceSimulation,
    build_multisource_setup,
    run_multisource_simulation,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def config():
    return SCALE_PRESETS["tiny"].with_(
        n_items=8, trace_samples=500, offered_degree=6, t_percent=80.0
    )


@pytest.fixture(scope="module")
def multi(config):
    return build_multisource_setup(config, n_sources=3)


def test_sources_are_distinct_nodes(multi):
    assert len(set(multi.sources)) == 3
    assert multi.sources[0] == multi.base.source


def test_items_partitioned_round_robin(multi, config):
    owned = [multi.items_of(s) for s in multi.sources]
    all_items = sorted(i for items in owned for i in items)
    assert all_items == list(range(config.n_items))
    # Round-robin: every source owns 8/3 -> 2 or 3 items.
    assert all(2 <= len(items) <= 3 for items in owned)


def test_every_tree_is_valid_and_rooted_at_its_source(multi):
    for source in multi.sources:
        graph = multi.graphs[source]
        assert graph.source == source
        graph.validate()


def test_every_interest_served_by_the_owning_tree(multi):
    for repo, profile in multi.base.profiles.items():
        for item_id in profile.requirements:
            owner = multi.item_owner[item_id]
            graph = multi.graphs[owner]
            assert item_id in graph.nodes[repo].receive_c


def test_shared_budgets_respected_across_trees(multi, config):
    degree = multi.base.effective_degree
    for repo in multi.base.repositories:
        used = sum(
            multi.graphs[s].nodes[repo].n_dependents
            for s in multi.sources
            if repo in multi.graphs[s].nodes
        )
        assert used <= degree


def test_simulation_runs_and_scores(config, multi):
    result = MultiSourceSimulation(multi).run()
    assert 0.0 <= result.loss_of_fidelity <= 100.0
    assert result.messages > 0
    assert result.extras["sources"] == multi.sources


def test_one_source_matches_single_source_engine(config):
    from repro.engine.simulation import run_simulation

    single = run_simulation(config)
    multi = run_multisource_simulation(config, 1)
    # One "multi"-source run degenerates to the plain engine... except
    # LeLA's augmentation rng stream differs; losses must agree closely.
    assert multi.loss_of_fidelity == pytest.approx(
        single.loss_of_fidelity, abs=1.0
    )


def test_more_sources_never_increase_source_load_concentration(config):
    one = run_multisource_simulation(config, 1)
    four = run_multisource_simulation(config, 4)
    busiest_one = one.counters.busiest_sender()[1]
    busiest_four = four.counters.busiest_sender()[1]
    assert busiest_four <= busiest_one


def test_invalid_source_count_rejected(config):
    with pytest.raises(ConfigurationError):
        build_multisource_setup(config, 0)


def test_too_many_sources_rejected():
    config = SCALE_PRESETS["tiny"].with_(
        n_repositories=3, n_routers=2, n_items=4, trace_samples=300
    )
    with pytest.raises(ConfigurationError):
        build_multisource_setup(config, 5)


def test_deterministic(config):
    a = run_multisource_simulation(config, 2)
    b = run_multisource_simulation(config, 2)
    assert a.loss_of_fidelity == b.loss_of_fidelity
    assert a.messages == b.messages

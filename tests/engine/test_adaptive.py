"""Unit tests for the adaptive re-optimization subsystem.

Covers the pieces below the kernels: policy validation and CLI-spec
parsing, the drift estimator's windowing arithmetic, the controller's
trigger/cooldown/cap gates, the load-aware LeLA hook, and the config
plumbing (mutual exclusions, builder factory).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamics import edges_of
from repro.core.lela import LelaBuilder, build_d3g, reoptimize_d3g
from repro.engine.adaptive import (
    AdaptiveController,
    AdaptivePolicy,
    DriftEstimator,
    parse_adaptive_spec,
)
from repro.engine.builder import build_setup, make_adaptive_controller
from repro.engine.churn import ChurnEvent, ChurnSchedule
from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import FailureEvent, FailureSchedule
from repro.errors import ConfigurationError, TreeConstructionError
from repro.workloads import FlashCrowdWorkload

BASE = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=300, seed=3913)

POLICY = AdaptivePolicy(window=30.0, threshold=0.75)


def _adaptive_setup(policy: AdaptivePolicy = POLICY):
    return build_setup(
        BASE.with_(workload=FlashCrowdWorkload(), adaptive=policy)
    )


# ---------------------------------------------------------------- policy


def test_policy_defaults_are_valid_and_hashable():
    policy = AdaptivePolicy()
    assert policy.window == 60.0
    assert policy.scope == "subtree"
    assert hash(policy) == hash(AdaptivePolicy())


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window": 0.0},
        {"window": -1.0},
        {"window": float("nan")},
        {"window": float("inf")},
        {"threshold": 0.0},
        {"threshold": float("nan")},
        {"cooldown": -0.5},
        {"cooldown": float("inf")},
        {"scope": "tree"},
        {"max_rewires": -1},
        {"max_rewires": 1.5},
    ],
)
def test_policy_rejects_invalid_fields(kwargs):
    with pytest.raises(ConfigurationError):
        AdaptivePolicy(**kwargs)


def test_spec_parsing_roundtrip():
    policy = parse_adaptive_spec(
        "window=40, threshold=0.5, cooldown=10, scope=global, max_rewires=4"
    )
    assert policy == AdaptivePolicy(
        window=40.0, threshold=0.5, cooldown=10.0, scope="global", max_rewires=4
    )
    assert parse_adaptive_spec("") == AdaptivePolicy()


@pytest.mark.parametrize("text", ["windows=3", "window", "window=abc", "max_rewires=1.5"])
def test_spec_parsing_rejects_bad_entries(text):
    with pytest.raises(ConfigurationError):
        parse_adaptive_spec(text)


# ---------------------------------------------------------------- config


def test_config_rejects_adaptive_with_churn():
    schedule = ChurnSchedule(events=(ChurnEvent.depart(1.0e9, 1),))
    with pytest.raises(ConfigurationError):
        BASE.with_(adaptive=POLICY, churn=schedule)


def test_config_rejects_adaptive_with_failures():
    schedule = FailureSchedule(events=(FailureEvent.crash(10.0, 1),))
    with pytest.raises(ConfigurationError):
        BASE.with_(adaptive=POLICY, failures=schedule)


def test_config_accepts_adaptive_for_every_push_policy():
    from repro.core.dissemination.filtering import FILTERED_POLICIES

    for policy in FILTERED_POLICIES:
        assert BASE.with_(adaptive=POLICY, policy=policy).adaptive is POLICY


def test_config_rejects_non_policy_adaptive_value():
    with pytest.raises(ConfigurationError):
        BASE.with_(adaptive="window=30")


def test_make_adaptive_controller_requires_adaptive_config():
    setup = build_setup(BASE)
    with pytest.raises(ConfigurationError):
        make_adaptive_controller(setup)


# ------------------------------------------------------------- estimator


def test_estimator_baseline_window_reports_no_drift():
    estimator = DriftEstimator()
    assert estimator.observe({1: 10, 2: 4}) == {}


def test_estimator_stationary_counts_never_drift():
    estimator = DriftEstimator()
    for tick in range(1, 6):
        # Equal per-window increments: cumulative grows, drift stays 0.
        assert estimator.observe({1: 10 * tick, 2: 4 * tick}) == {}


def test_estimator_relative_drift_arithmetic():
    estimator = DriftEstimator()
    estimator.observe({1: 4, 2: 8})          # baseline window: 4, 8
    drifts = estimator.observe({1: 10, 2: 12})  # windows: 6, 4
    assert drifts == {1: abs(6 - 4) / 4, 2: abs(4 - 8) / 8}
    # A node that vanishes entirely still registers drift (prev vs 0).
    drifts = estimator.observe({1: 16, 2: 12})  # windows: 6, 0
    assert drifts == {2: 4 / 4}


# ------------------------------------------------------------ controller


def test_tick_times_cover_the_span_by_repeated_addition():
    setup = _adaptive_setup()
    controller = AdaptiveController(setup)
    times = controller.tick_times(299.0)
    assert times[0] == 30.0
    assert len(times) == 9
    assert all(b - a == pytest.approx(30.0) for a, b in zip(times, times[1:]))
    assert controller.tick_times(29.0) == []


def test_controller_requires_a_policy():
    setup = build_setup(BASE)
    with pytest.raises(ConfigurationError):
        AdaptiveController(setup)


def test_no_drift_means_no_rewire():
    setup = _adaptive_setup()
    controller = AdaptiveController(setup)
    counts = {node: 7 for node in setup.graph.nodes}
    for tick in range(1, 5):
        scaled = {node: value * tick for node, value in counts.items()}
        assert controller.on_tick(30.0 * tick, scaled) is None
    assert controller.ticks == 4
    assert controller.triggered == 0
    assert controller.rewires == 0
    assert controller.graph is setup.graph


def test_cooldown_vetoes_but_counts_the_trigger():
    policy = AdaptivePolicy(window=30.0, threshold=0.5, cooldown=1.0e9)
    setup = _adaptive_setup(policy)
    controller = AdaptiveController(setup, policy)
    controller.on_tick(30.0, {1: 4})
    first = controller.on_tick(60.0, {1: 40})
    vetoed = controller.on_tick(90.0, {1: 400})
    assert first is not None
    assert vetoed is None
    assert controller.rewires == 1
    assert controller.triggered == 2


def test_max_rewires_caps_applied_rewires():
    policy = AdaptivePolicy(window=30.0, threshold=0.5, max_rewires=1)
    setup = _adaptive_setup(policy)
    controller = AdaptiveController(setup, policy)
    controller.on_tick(30.0, {1: 4})
    assert controller.on_tick(60.0, {1: 40}) is not None
    assert controller.on_tick(90.0, {1: 400}) is None
    assert controller.rewires == 1
    assert controller.triggered == 2


def test_rewire_diff_is_consistent_with_the_rebound_graph():
    setup = _adaptive_setup()
    controller = AdaptiveController(setup)
    before = edges_of(setup.graph)
    controller.on_tick(30.0, {1: 4})
    diff = controller.on_tick(60.0, {1: 400})
    assert diff is not None
    assert diff.added.isdisjoint(diff.removed)
    assert edges_of(controller.graph) == (before - diff.removed) | diff.added


# ------------------------------------------------------- load-aware LeLA


def test_empty_load_reoptimization_reproduces_the_original_graph():
    setup = _adaptive_setup()
    from repro.core.preference import get_preference_function
    from repro.sim.rng import RandomStreams

    rebuilt = reoptimize_d3g(
        profiles=[setup.profiles[r] for r in sorted(setup.profiles)],
        source=setup.source,
        comm_delay_ms=setup.network.delay_ms,
        offered_degree=setup.effective_degree,
        preference=get_preference_function(setup.config.preference),
        p_percent=setup.config.p_percent,
        rng=RandomStreams(setup.config.seed).stream("lela"),
        node_load={},
    )
    assert edges_of(rebuilt) == edges_of(setup.graph)


def test_nonzero_load_can_change_the_graph():
    setup = _adaptive_setup()
    from repro.core.preference import get_preference_function
    from repro.sim.rng import RandomStreams

    # Penalise every non-source repository heavily: the level ranking
    # must reshuffle somewhere on a 20-repository grid.
    load = {node: 50.0 for node in setup.graph.nodes if node != setup.source}
    rebuilt = reoptimize_d3g(
        profiles=[setup.profiles[r] for r in sorted(setup.profiles)],
        source=setup.source,
        comm_delay_ms=setup.network.delay_ms,
        offered_degree=setup.effective_degree,
        preference=get_preference_function(setup.config.preference),
        p_percent=setup.config.p_percent,
        rng=RandomStreams(setup.config.seed).stream("lela"),
        node_load=load,
    )
    # Same members either way; the load only re-ranks parents.
    assert set(rebuilt.nodes) == set(setup.graph.nodes)


@pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
def test_lela_builder_rejects_invalid_loads(bad):
    setup = _adaptive_setup()
    with pytest.raises(TreeConstructionError):
        LelaBuilder(
            source=setup.source,
            comm_delay_ms=setup.network.delay_ms,
            offered_degree=setup.effective_degree,
            node_load={1: bad},
        )


def test_build_d3g_accepts_node_load_passthrough():
    setup = _adaptive_setup()
    from repro.core.preference import get_preference_function
    from repro.sim.rng import RandomStreams

    graph = build_d3g(
        profiles=[setup.profiles[r] for r in sorted(setup.profiles)],
        source=setup.source,
        comm_delay_ms=setup.network.delay_ms,
        offered_degree=setup.effective_degree,
        preference=get_preference_function(setup.config.preference),
        p_percent=setup.config.p_percent,
        rng=RandomStreams(setup.config.seed).stream("lela"),
        node_load=None,
    )
    assert edges_of(graph) == edges_of(setup.graph)


def test_edges_of_is_the_public_diff_representation():
    setup = _adaptive_setup()
    edges = edges_of(setup.graph)
    assert edges and all(len(edge) == 4 for edge in edges)
    parents = {parent for parent, _child, _item, _c in edges}
    assert setup.source in parents
    assert all(np.isfinite(c) for _p, _ch, _it, c in edges)

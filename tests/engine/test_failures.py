"""Failure schedules and their execution: validation, goldens, identity.

The golden-seed section pins the PR's central equivalence claim: the
scalar oracle and the vectorized kernel produce *identical*
``SimulationResult`` objects under crash-only, partition-only and
crash-then-recover schedules -- full dataclass equality, so one ``==``
covers fidelity, every counter (drops, failovers, resyncs) and the
event count at float bit-exactness.
"""

from __future__ import annotations

import pytest

from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import (
    FailureEvent,
    FailureSchedule,
    failures_for_config,
    parse_failure_spec,
    synthetic_failures,
)
from repro.engine.simulation import run_simulation
from repro.errors import ConfigurationError

BASE = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=300)


def _service_edges(config):
    """Real (sender, receiver) service edges of the built ``d3g``."""
    setup = build_setup(config)
    return sorted(
        (node, child)
        for node, state in setup.graph.nodes.items()
        for child, items in state.children.items()
        if items
    )


def _pair(config):
    scalar = run_simulation(config.with_(kernel="scalar"))
    vector = run_simulation(config.with_(kernel="vectorized"))
    return scalar, vector


def _assert_conserved(result):
    assert (
        result.counters.deliveries + result.counters.drops
        == result.counters.messages
    )


# --- event and schedule validation ----------------------------------------


def test_event_validation():
    with pytest.raises(ConfigurationError):
        FailureEvent(time=-1.0, kind="crash", repository=1)
    with pytest.raises(ConfigurationError):
        FailureEvent(time=0.0, kind="meteor", repository=1)
    with pytest.raises(ConfigurationError):
        FailureEvent(time=0.0, kind="crash", link=(0, 1))  # repo kind, link arg
    with pytest.raises(ConfigurationError):
        FailureEvent(time=0.0, kind="link_down", repository=1)
    with pytest.raises(ConfigurationError):
        FailureEvent.link_down(0.0, 3, 3)  # self-link


def test_schedule_sorts_and_counts():
    schedule = FailureSchedule((
        FailureEvent.recover(20.0, 1),
        FailureEvent.crash(10.0, 1),
        FailureEvent.link_down(5.0, 0, 2),
    ))
    assert [e.time for e in schedule] == [5.0, 10.0, 20.0]
    assert len(schedule) == 3 and bool(schedule)
    assert schedule.count("crash") == 1
    assert schedule.count("link_up") == 0
    with pytest.raises(ConfigurationError):
        schedule.count("meteor")


def test_schedule_alternation_enforced():
    with pytest.raises(ConfigurationError):  # double crash
        FailureSchedule((
            FailureEvent.crash(1.0, 1), FailureEvent.crash(2.0, 1)
        ))
    with pytest.raises(ConfigurationError):  # recover without crash
        FailureSchedule((FailureEvent.recover(1.0, 1),))
    with pytest.raises(ConfigurationError):  # same-instant pair
        FailureSchedule((
            FailureEvent.crash(1.0, 1), FailureEvent.recover(1.0, 1)
        ))
    with pytest.raises(ConfigurationError):  # up without down
        FailureSchedule((FailureEvent.link_up(1.0, 0, 1),))
    # Open windows (no repair before the end) are legal.
    FailureSchedule((FailureEvent.crash(1.0, 1),))


def test_validate_nodes_ranges():
    FailureSchedule((FailureEvent.crash(1.0, 5),)).validate_nodes(5)
    with pytest.raises(ConfigurationError):  # the source cannot crash
        FailureSchedule((FailureEvent.crash(1.0, 0),)).validate_nodes(5)
    with pytest.raises(ConfigurationError):
        FailureSchedule((FailureEvent.crash(1.0, 6),)).validate_nodes(5)
    with pytest.raises(ConfigurationError):
        FailureSchedule((FailureEvent.link_down(1.0, 0, 9),)).validate_nodes(5)


def test_windows_are_half_open_pairs():
    schedule = FailureSchedule((
        FailureEvent.crash(10.0, 2),
        FailureEvent.recover(30.0, 2),
        FailureEvent.crash(50.0, 2),
        FailureEvent.link_down(5.0, 1, 2),
    ))
    assert schedule.crash_windows() == {2: [(10.0, 30.0), (50.0, None)]}
    assert schedule.link_windows() == {(1, 2): [(5.0, None)]}


def test_parse_failure_spec():
    assert parse_failure_spec("2,1") == (2, 1)
    assert parse_failure_spec(" 0 , 3 ") == (0, 3)
    for bad in ("2", "2,1,0", "a,b", "-1,0"):
        with pytest.raises(ConfigurationError):
            parse_failure_spec(bad)


# --- config integration and generation ------------------------------------


def test_config_carries_schedule_and_rejects_churn_mix():
    schedule = failures_for_config(BASE, crashes=1, partitions=1)
    config = BASE.with_(failures=schedule)
    assert config.failures is schedule
    from repro.engine.churn import schedule_for_config

    churn = schedule_for_config(BASE, joins=1, departs=1, updates=1)
    with pytest.raises(ConfigurationError):
        config.with_(churn=churn)
    # An empty schedule normalises to None (cache-key friendly).
    assert BASE.with_(failures=FailureSchedule()).failures is None


def test_failures_for_config_is_deterministic_and_targeted():
    a = failures_for_config(BASE, crashes=2, partitions=2)
    b = failures_for_config(BASE, crashes=2, partitions=2)
    assert a == b
    assert a.count("crash") == 2 and a.count("recover") == 2
    assert a.count("link_down") == 2 and a.count("link_up") == 2
    edges = set(_service_edges(BASE))
    interior = {sender for sender, _ in edges if sender != 0}
    for event in a:
        if event.kind in ("crash", "recover"):
            assert event.repository in interior
        else:
            assert event.link in edges


def test_synthetic_failures_needs_targets():
    with pytest.raises(ConfigurationError):
        synthetic_failures(repositories=[], span_s=100.0, crashes=1)
    with pytest.raises(ConfigurationError):
        synthetic_failures(repositories=[1], span_s=100.0, partitions=1, links=())


# --- golden-seed kernel identity ------------------------------------------


def test_golden_crash_only_bit_identity():
    """A crash with no recovery: open availability window to the end."""
    sender, receiver = next(e for e in _service_edges(BASE) if e[0] != 0)
    config = BASE.with_(failures=FailureSchedule((
        FailureEvent.crash(90.0, sender),
    )))
    scalar, vector = _pair(config)
    assert scalar == vector
    _assert_conserved(scalar)
    assert scalar.counters.drops > 0
    assert scalar.counters.edges_added > 0  # orphans failed over
    assert scalar.counters.resyncs == 0  # nobody recovered
    assert scalar.extras["crashes"] == 1


def test_golden_partition_only_bit_identity():
    edge = _service_edges(BASE)[0]
    config = BASE.with_(failures=FailureSchedule((
        FailureEvent.link_down(60.0, *edge),
        FailureEvent.link_up(200.0, *edge),
    )))
    scalar, vector = _pair(config)
    assert scalar == vector
    _assert_conserved(scalar)
    assert scalar.counters.drops > 0
    assert scalar.counters.edges_added == 0  # partitions do not rewire
    assert scalar.extras["partitions"] == 1


def test_golden_crash_then_recover_bit_identity():
    config = BASE.with_(
        failures=failures_for_config(BASE, crashes=2, partitions=1)
    )
    scalar, vector = _pair(config)
    assert scalar == vector
    _assert_conserved(scalar)
    assert scalar.counters.resyncs == 2  # one anti-entropy pass per recovery
    assert scalar.counters.resync_checks >= scalar.counters.resync_messages
    assert scalar.counters.resync_checks > 0


@pytest.mark.parametrize("policy", ("distributed", "centralized"))
def test_golden_failures_with_loss_bit_identity(policy):
    """Failures compose with seeded Bernoulli loss on both kernels."""
    base = BASE.with_(policy=policy, message_loss_probability=0.05)
    config = base.with_(
        failures=failures_for_config(base, crashes=1, partitions=1)
    )
    scalar, vector = _pair(config)
    assert scalar == vector
    _assert_conserved(scalar)


def test_failed_runs_are_deterministic():
    config = BASE.with_(
        failures=failures_for_config(BASE, crashes=1, partitions=1)
    )
    assert run_simulation(config) == run_simulation(config)

"""Tests for the pull-based baselines (fixed and adaptive TTR)."""

import pytest

from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS
from repro.engine.pull import PullSimulation, TtrConfig, run_pull_simulation
from repro.engine.simulation import run_simulation
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def setup():
    return build_setup(
        SCALE_PRESETS["tiny"].with_(
            n_items=4, trace_samples=400, offered_degree=4, t_percent=80.0
        )
    )


def test_ttr_config_validation():
    with pytest.raises(ConfigurationError):
        TtrConfig(mode="weird")
    with pytest.raises(ConfigurationError):
        TtrConfig(ttr_s=0.0)
    with pytest.raises(ConfigurationError):
        TtrConfig(ttr_min_s=10.0, ttr_max_s=1.0)
    with pytest.raises(ConfigurationError):
        TtrConfig(shrink=1.5)
    with pytest.raises(ConfigurationError):
        TtrConfig(grow=-1.0)


def test_fixed_pull_produces_result(setup):
    result = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=5.0))
    assert 0.0 <= result.loss_of_fidelity <= 100.0
    assert result.messages > 0
    assert result.counters.deliveries > 0
    assert result.extras["mode"] == "pull-fixed"


def test_two_messages_per_poll(setup):
    result = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=5.0))
    # Every completed poll costs a request plus a response.
    assert result.messages == 2 * result.counters.source_checks


def test_shorter_ttr_improves_fidelity(setup):
    fast = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=2.0))
    slow = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=30.0))
    assert fast.loss_of_fidelity < slow.loss_of_fidelity
    assert fast.messages > slow.messages


def test_adaptive_between_extremes(setup):
    fast = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=1.0))
    slow = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=60.0))
    adaptive = run_pull_simulation(
        setup,
        TtrConfig(mode="adaptive", ttr_s=10.0, ttr_min_s=1.0, ttr_max_s=60.0),
    )
    assert slow.loss_of_fidelity > adaptive.loss_of_fidelity
    assert adaptive.messages < fast.messages


def test_adaptive_shrinks_ttr_on_hot_items(setup):
    sim = PullSimulation(
        setup,
        TtrConfig(mode="adaptive", ttr_s=30.0, ttr_min_s=1.0, ttr_max_s=60.0),
    )
    sim.run()
    ttrs = list(sim._current_ttr.values())
    # At least some subscriptions reacted to changes.
    assert any(t != 30.0 for t in ttrs)
    assert all(1.0 <= t <= 60.0 for t in ttrs)


def test_push_dominates_pull_at_equal_or_less_traffic(setup):
    push = run_simulation(setup.config, setup=setup)
    pull = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=5.0))
    # The cooperative push gets strictly better fidelity...
    assert push.loss_of_fidelity < pull.loss_of_fidelity
    # ...and the pull source does at least as much work per useful byte:
    # every poll costs a source check even when nothing changed.
    assert pull.counters.source_checks > 0


def test_pull_determinism(setup):
    a = run_pull_simulation(setup, TtrConfig(mode="adaptive", ttr_s=10.0))
    b = run_pull_simulation(setup, TtrConfig(mode="adaptive", ttr_s=10.0))
    assert a.loss_of_fidelity == b.loss_of_fidelity
    assert a.messages == b.messages

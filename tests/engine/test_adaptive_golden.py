"""Golden-seed adaptive-vs-static regression suite.

Pins the adaptive subsystem's observable behaviour on fixed seeds so a
refactor of the controller, the kernels, or the rewiring path cannot
silently change results:

- a *hit* policy (window=30, threshold=0.75) fires on both drifting
  workloads and its loss/cost/rewire numbers are pinned to the literal
  values measured at introduction;
- a *miss* policy (window=100, threshold=0.75) never crosses the
  threshold and must reproduce the static run's result exactly --
  adaptation that doesn't trigger is free (no cost, no fidelity delta);
- every adaptive run is bit-identical between the scalar oracle and the
  vectorized kernel (full ``SimulationResult`` dataclass equality), and
  sweep execution is bit-identical serial vs multiprocess.
"""

from __future__ import annotations

import pytest

from repro.engine.adaptive import AdaptivePolicy
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import run_simulation
from repro.engine.sweep import run_sweep
from repro.workloads import DiurnalWorkload, FlashCrowdWorkload

BASE = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=300, seed=3913)

WORKLOADS = {
    "flash_crowd": FlashCrowdWorkload(),
    "diurnal": DiurnalWorkload(),
}

#: Fires 2 capped rewires on both drifting workloads at this scale.
HIT = AdaptivePolicy(window=30.0, threshold=0.75, max_rewires=2)
#: Two 100 s windows fit the 300 s traces; neither crosses 0.75.
MISS = AdaptivePolicy(window=100.0, threshold=0.75)

#: The pinned goldens: (loss, messages, reconfigurations, edges_added,
#: edges_removed, rewires, ticks, triggered), measured at introduction
#: on seed 3913.  An intentional behaviour change must update these
#: literals in the same commit that changes the behaviour.
GOLDEN = {
    "flash_crowd": (0.9771564928952374, 1292, 2, 26, 27, 2, 9, 3),
    "diurnal": (1.31505672250742, 1465, 2, 32, 33, 2, 9, 4),
}


def _pair(config):
    scalar = run_simulation(config.with_(kernel="scalar"))
    vector = run_simulation(config.with_(kernel="vectorized"))
    return scalar, vector


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_hit_policy_golden_values(workload):
    config = BASE.with_(workload=WORKLOADS[workload], adaptive=HIT)
    scalar, vector = _pair(config)
    assert scalar == vector
    loss, messages, reconf, added, removed, rewires, ticks, triggered = GOLDEN[
        workload
    ]
    assert scalar.loss_of_fidelity == loss
    assert scalar.counters.messages == messages
    assert scalar.counters.reconfigurations == reconf
    assert scalar.counters.edges_added == added
    assert scalar.counters.edges_removed == removed
    assert scalar.counters.resubscriptions == added + removed
    assert scalar.extras["adaptive_rewires"] == rewires
    assert scalar.extras["adaptive_ticks"] == ticks
    assert scalar.extras["adaptive_triggered"] == triggered


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_miss_policy_reproduces_the_static_run(workload):
    static = run_simulation(BASE.with_(workload=WORKLOADS[workload]))
    adaptive_cfg = BASE.with_(workload=WORKLOADS[workload], adaptive=MISS)
    scalar, vector = _pair(adaptive_cfg)
    assert scalar == vector
    # The controller ticked but never fired: the run is the static run.
    assert scalar.extras["adaptive_ticks"] == 2
    assert scalar.extras["adaptive_triggered"] == 0
    assert scalar.extras["adaptive_rewires"] == 0
    assert scalar.counters.reconfigurations == 0
    assert scalar.loss_of_fidelity == static.loss_of_fidelity
    assert scalar.per_repository_loss == static.per_repository_loss
    assert scalar.counters.messages == static.counters.messages
    assert (
        scalar.counters.per_node_messages == static.counters.per_node_messages
    )


@pytest.mark.parametrize("policy", ["distributed", "centralized"])
def test_bit_identity_across_dissemination_policies(policy):
    config = BASE.with_(
        policy=policy, workload=FlashCrowdWorkload(), adaptive=HIT
    )
    scalar, vector = _pair(config)
    assert scalar == vector
    assert scalar.extras["adaptive_rewires"] > 0


def test_adaptive_sweep_is_bit_identical_serial_vs_parallel():
    configs = [
        BASE.with_(workload=WORKLOADS[workload], adaptive=policy)
        for workload in sorted(WORKLOADS)
        for policy in (HIT, MISS)
    ]
    serial = run_sweep(configs, jobs=1)
    assert run_sweep(configs, jobs=4) == serial


def test_adaptive_composes_with_message_loss():
    config = BASE.with_(
        workload=FlashCrowdWorkload(),
        adaptive=HIT,
        message_loss_probability=0.02,
    )
    scalar, vector = _pair(config)
    assert scalar == vector
    assert scalar.counters.drops > 0
    assert scalar.counters.deliveries + scalar.counters.drops == (
        scalar.counters.messages
    )

"""Unit tests for the result container."""

from repro.core.metrics import CostCounters
from repro.core.tree import TreeStats
from repro.engine.results import SimulationResult


def make_result(loss=5.0, messages=10):
    counters = CostCounters()
    for _ in range(messages):
        counters.record_message(0, is_source=True)
    counters.record_check(0, is_source=True, count=7)
    return SimulationResult(
        loss_of_fidelity=loss,
        per_repository_loss={1: loss},
        counters=counters,
        tree_stats=TreeStats(
            n_nodes=2,
            n_levels=2,
            max_depth=1,
            mean_depth=1.0,
            max_dependents=1,
            mean_dependents=0.5,
            diameter_hops=1,
        ),
        effective_degree=4,
        avg_comm_delay_ms=25.0,
        events_processed=100,
        sim_span_s=600.0,
    )


def test_fidelity_complement():
    assert make_result(loss=5.0).fidelity == 95.0


def test_message_and_check_accessors():
    result = make_result(messages=10)
    assert result.messages == 10
    assert result.source_checks == 7


def test_summary_mentions_key_numbers():
    text = make_result().summary()
    assert "loss=5.00%" in text
    assert "messages=10" in text
    assert "degree=4" in text


def test_extras_dict_is_writable():
    result = make_result()
    result.extras["anything"] = 42
    assert result.extras["anything"] == 42

"""Integration tests for the end-to-end dissemination simulation."""

import pytest

from repro.core.dissemination import make_policy
from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import DisseminationSimulation, run_simulation


@pytest.fixture(scope="module")
def tiny_result(tiny_setup_module):
    return DisseminationSimulation(tiny_setup_module).run()


@pytest.fixture(scope="module")
def tiny_setup_module():
    return build_setup(SCALE_PRESETS["tiny"].with_(offered_degree=4))


def test_result_fields_sane(tiny_result):
    assert 0.0 <= tiny_result.loss_of_fidelity <= 100.0
    assert tiny_result.fidelity == pytest.approx(100.0 - tiny_result.loss_of_fidelity)
    assert tiny_result.messages > 0
    assert tiny_result.events_processed > 0
    assert tiny_result.sim_span_s > 0
    assert tiny_result.effective_degree == 4


def test_per_repository_losses_cover_all_repos(tiny_result, tiny_setup_module):
    assert set(tiny_result.per_repository_loss) == set(
        tiny_setup_module.profiles.keys()
    )
    for loss in tiny_result.per_repository_loss.values():
        assert 0.0 <= loss <= 100.0


def test_messages_equal_deliveries(tiny_result):
    # Every sent message arrives exactly once (no loss model).
    assert tiny_result.counters.messages == tiny_result.counters.deliveries


def test_distributed_source_checks_scale_with_children(tiny_setup_module):
    result = DisseminationSimulation(
        tiny_setup_module, make_policy("distributed")
    ).run()
    # The source checks each item-child per source change; it must have
    # done at least one check per message it sent.
    assert result.counters.source_checks >= result.counters.source_messages


def test_same_setup_same_result(tiny_setup_module):
    a = DisseminationSimulation(tiny_setup_module, make_policy("distributed")).run()
    b = DisseminationSimulation(tiny_setup_module, make_policy("distributed")).run()
    assert a.loss_of_fidelity == b.loss_of_fidelity
    assert a.messages == b.messages
    assert a.counters.source_checks == b.counters.source_checks


def test_run_simulation_end_to_end():
    result = run_simulation(SCALE_PRESETS["tiny"].with_(offered_degree=4))
    assert 0.0 <= result.loss_of_fidelity <= 100.0


def test_flooding_sends_more_than_distributed(tiny_setup_module):
    flood = DisseminationSimulation(tiny_setup_module, make_policy("flooding")).run()
    filtered = DisseminationSimulation(
        tiny_setup_module, make_policy("distributed")
    ).run()
    assert flood.messages > filtered.messages


def test_centralized_and_distributed_send_similar_messages(tiny_setup_module):
    # Figure 11(b): both exact policies send (essentially) the same
    # number of messages.
    central = DisseminationSimulation(
        tiny_setup_module, make_policy("centralized")
    ).run()
    dist = DisseminationSimulation(
        tiny_setup_module, make_policy("distributed")
    ).run()
    assert central.messages == pytest.approx(dist.messages, rel=0.15)


def test_centralized_does_more_source_checks(tiny_setup_module):
    # Figure 11(a): the tagging source checks every unique tolerance.
    central = DisseminationSimulation(
        tiny_setup_module, make_policy("centralized")
    ).run()
    dist = DisseminationSimulation(
        tiny_setup_module, make_policy("distributed")
    ).run()
    assert central.counters.source_checks > dist.counters.source_checks


def test_zero_delay_distributed_is_perfect():
    # The paper's central theorem: Eq. (3) + Eq. (7) give 100% fidelity
    # when communication and computation are free.
    config = SCALE_PRESETS["tiny"].with_(
        offered_degree=4, comm_target_ms=0.0, comp_delay_ms=0.0,
        policy="distributed",
    )
    result = run_simulation(config)
    assert result.loss_of_fidelity == 0.0


def test_zero_delay_centralized_is_perfect():
    config = SCALE_PRESETS["tiny"].with_(
        offered_degree=4, comm_target_ms=0.0, comp_delay_ms=0.0,
        policy="centralized",
    )
    result = run_simulation(config)
    assert result.loss_of_fidelity == 0.0


def test_zero_delay_eq3_only_is_not_perfect():
    # ... and the missed-update problem makes Eq. (3) alone lossy even
    # on an ideal network (Figure 4's argument, end to end).
    config = SCALE_PRESETS["tiny"].with_(
        offered_degree=4, comm_target_ms=0.0, comp_delay_ms=0.0,
        policy="eq3_only",
    )
    result = run_simulation(config)
    assert result.loss_of_fidelity > 0.0


def test_delivery_log_primed_and_ordered(tiny_setup_module):
    sim = DisseminationSimulation(tiny_setup_module, make_policy("distributed"))
    sim.run()
    repo, profile = next(iter(tiny_setup_module.profiles.items()))
    item_id = profile.items[0]
    log = sim.delivery_log(repo, item_id)
    assert log[0] == (0.0, tiny_setup_module.traces[item_id].initial_value)
    times = [t for t, _ in log]
    assert times == sorted(times)


def test_chain_has_higher_loss_than_balanced_tree():
    base = SCALE_PRESETS["tiny"].with_(t_percent=100.0)
    chain = run_simulation(base.with_(offered_degree=1))
    tree = run_simulation(base.with_(offered_degree=4))
    assert chain.loss_of_fidelity > tree.loss_of_fidelity


def test_deeper_repositories_lose_more_fidelity_in_chain():
    config = SCALE_PRESETS["tiny"].with_(offered_degree=1, t_percent=100.0)
    setup = build_setup(config)
    result = DisseminationSimulation(setup).run()
    levels = {r: setup.graph.nodes[r].level for r in setup.repositories}
    shallow = [
        loss for r, loss in result.per_repository_loss.items() if levels[r] <= 5
    ]
    deep = [
        loss for r, loss in result.per_repository_loss.items() if levels[r] > 15
    ]
    assert sum(deep) / len(deep) > sum(shallow) / len(shallow)

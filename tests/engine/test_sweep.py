"""Unit tests for the parallel sweep-execution subsystem."""

import pickle

import pytest

from repro.engine.config import SCALE_PRESETS, SimulationConfig
from repro.engine.simulation import run_simulation
from repro.engine.sweep import _contiguous_chunks, resolve_jobs, run_sweep
from repro.errors import ConfigurationError

BASE = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=200)


def test_resolve_jobs_passthrough_and_auto():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) == resolve_jobs(None)


def test_resolve_jobs_rejects_negative():
    with pytest.raises(ConfigurationError):
        resolve_jobs(-2)


def test_contiguous_chunks_cover_in_order():
    items = list(enumerate("abcdefg"))
    chunks = _contiguous_chunks(items, 3)
    assert len(chunks) == 3
    assert [pair for chunk in chunks for pair in chunk] == items
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= 1


def test_contiguous_chunks_never_exceed_item_count():
    items = list(enumerate("ab"))
    chunks = _contiguous_chunks(items, 8)
    assert len(chunks) == 2
    assert all(chunk for chunk in chunks)


def test_empty_sweep():
    assert run_sweep([], jobs=1) == []
    assert run_sweep([], jobs=4) == []


def test_results_align_to_input_order():
    configs = [BASE.with_(offered_degree=d) for d in (4, 1, 8, 2)]
    results = run_sweep(configs, jobs=1)
    assert [r.effective_degree for r in results] == [4, 1, 8, 2]


def test_serial_matches_independent_runs_bitwise():
    """base= recycling inside a sweep is pure optimisation: each point's
    result equals a from-scratch run of the same config."""
    configs = [
        BASE.with_(offered_degree=1),
        BASE.with_(offered_degree=4),
        BASE.with_(offered_degree=4, comm_target_ms=10.0),
        BASE.with_(offered_degree=4, comm_target_ms=40.0),
    ]
    swept = run_sweep(configs, jobs=1)
    fresh = [run_simulation(c) for c in configs]
    assert swept == fresh


def test_parallel_matches_serial_bitwise():
    configs = [BASE.with_(offered_degree=d) for d in (1, 2, 4, 8, 12)]
    serial = run_sweep(configs, jobs=1)
    for jobs in (2, 4):
        assert run_sweep(configs, jobs=jobs) == serial


def test_parallel_with_more_workers_than_points():
    configs = [BASE.with_(offered_degree=d) for d in (1, 4)]
    assert run_sweep(configs, jobs=8) == run_sweep(configs, jobs=1)


def test_duplicate_configs_run_once_and_share_results():
    config = BASE.with_(offered_degree=3)
    results = run_sweep([config, BASE.with_(offered_degree=1), config], jobs=1)
    assert results[0] is results[2]
    assert results[0] == run_simulation(config)


def test_submission_order_does_not_change_per_config_results():
    configs = [BASE.with_(offered_degree=d) for d in (1, 2, 4, 8)]
    forward = dict(zip(configs, run_sweep(configs, jobs=2)))
    backward = dict(zip(reversed(configs), run_sweep(list(reversed(configs)), jobs=2)))
    assert forward == backward


def test_worker_errors_propagate():
    good = BASE.with_(offered_degree=2)
    bad = BASE.with_(policy="no-such-policy")
    with pytest.raises(Exception):
        run_sweep([good, bad], jobs=2)


def test_config_and_result_pickle_round_trip():
    """The pool ships configs out and results back; both must survive
    pickling unchanged (config: bit-equal and hash-stable; result:
    bit-equal including nested counters/stats/extras)."""
    config = BASE.with_(offered_degree=3, comm_target_ms=12.5)
    thawed = pickle.loads(pickle.dumps(config))
    assert thawed == config
    assert hash(thawed) == hash(config)

    result = run_simulation(config)
    assert pickle.loads(pickle.dumps(result)) == result

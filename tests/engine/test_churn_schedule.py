"""Unit tests for churn schedules and the synthetic generator."""

import pickle

import pytest

from repro.engine.churn import (
    ChurnEvent,
    ChurnSchedule,
    parse_churn_spec,
    schedule_for_config,
    synthetic_schedule,
)
from repro.engine.config import SCALE_PRESETS
from repro.errors import ConfigurationError


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------

def test_event_constructors_and_freezing():
    join = ChurnEvent.join(5.0, 3, requirements={1: 0.2, 0: 0.1})
    assert join.requirements == ((0, 0.1), (1, 0.2))
    update = ChurnEvent.update(6.0, 3, [(2, 0.5)])
    assert update.requirements == ((2, 0.5),)
    depart = ChurnEvent.depart(7.0, 3)
    assert depart.requirements is None
    assert join.profile().requirements == {0: 0.1, 1: 0.2}
    assert ChurnEvent.join(5.0, 3).profile() is None


def test_event_validation():
    with pytest.raises(ConfigurationError):
        ChurnEvent(time=-1.0, kind="join", repository=1)
    with pytest.raises(ConfigurationError):
        ChurnEvent(time=1.0, kind="teleport", repository=1)
    with pytest.raises(ConfigurationError):
        ChurnEvent(time=1.0, kind="update", repository=1)  # no requirements
    with pytest.raises(ConfigurationError):
        ChurnEvent.depart(1.0, 1).__class__(
            time=1.0, kind="depart", repository=1, requirements=((0, 0.1),)
        )
    with pytest.raises(ConfigurationError):
        ChurnEvent.update(1.0, 1, {0: -0.5})
    with pytest.raises(ConfigurationError):
        ChurnEvent.update(1.0, 1, [(0, 0.1), (0, 0.2)])  # duplicate item


def test_events_are_hashable_and_picklable():
    event = ChurnEvent.update(3.0, 2, {0: 0.25})
    assert hash(event) == hash(pickle.loads(pickle.dumps(event)))


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------

def test_schedule_sorts_by_time_and_counts():
    schedule = ChurnSchedule(
        (
            ChurnEvent.depart(20.0, 2),
            ChurnEvent.join(10.0, 5),
            ChurnEvent.update(15.0, 1, {0: 0.3}),
        )
    )
    assert [e.time for e in schedule] == [10.0, 15.0, 20.0]
    assert len(schedule) == 3 and bool(schedule)
    assert schedule.count("join") == 1
    assert schedule.count("depart") == 1
    assert schedule.count("update") == 1
    with pytest.raises(ConfigurationError):
        schedule.count("teleport")
    assert not ChurnSchedule()


def test_schedule_rejects_non_events():
    with pytest.raises(ConfigurationError):
        ChurnSchedule(("join",))


def test_late_joiners_are_first_event_joins():
    schedule = ChurnSchedule(
        (
            ChurnEvent.join(10.0, 5),
            ChurnEvent.depart(20.0, 5),
            ChurnEvent.depart(12.0, 2),  # initial member departs
        )
    )
    assert schedule.late_joiners() == frozenset({5})


def test_initial_members_validates_transitions():
    pool = range(1, 6)
    good = ChurnSchedule(
        (ChurnEvent.join(10.0, 5), ChurnEvent.depart(20.0, 2))
    )
    assert good.initial_members(pool) == [1, 2, 3, 4]

    with pytest.raises(ConfigurationError):  # unknown repository
        ChurnSchedule((ChurnEvent.depart(1.0, 99),)).initial_members(pool)
    with pytest.raises(ConfigurationError):  # departs twice
        ChurnSchedule(
            (ChurnEvent.depart(1.0, 2), ChurnEvent.depart(2.0, 2))
        ).initial_members(pool)
    with pytest.raises(ConfigurationError):  # update after departure
        ChurnSchedule(
            (ChurnEvent.depart(1.0, 2), ChurnEvent.update(2.0, 2, {0: 0.1}))
        ).initial_members(pool)
    with pytest.raises(ConfigurationError):  # joins twice
        ChurnSchedule(
            (ChurnEvent.join(1.0, 5), ChurnEvent.join(2.0, 5))
        ).initial_members(pool)


def test_schedules_hash_equal_when_equal():
    a = ChurnSchedule((ChurnEvent.depart(1.0, 2),))
    b = ChurnSchedule((ChurnEvent.depart(1.0, 2),))
    assert a == b and hash(a) == hash(b)
    config = SCALE_PRESETS["tiny"].with_(churn=a)
    assert config == SCALE_PRESETS["tiny"].with_(churn=b)
    assert hash(config) == hash(SCALE_PRESETS["tiny"].with_(churn=b))


# ----------------------------------------------------------------------
# Synthetic generator
# ----------------------------------------------------------------------

def _generate(seed=7, **kwargs):
    defaults = dict(
        repositories=range(1, 21), n_items=5, span_s=500.0, seed=seed
    )
    defaults.update(kwargs)
    return synthetic_schedule(**defaults)


def test_generator_respects_counts_and_window():
    schedule = _generate(joins=3, departs=2, updates=4)
    assert schedule.count("join") == 3
    assert schedule.count("depart") == 2
    assert schedule.count("update") == 4
    for event in schedule:
        assert 0.05 * 500.0 <= event.time <= 0.85 * 500.0
    # Valid by construction against its own pool.
    schedule.initial_members(range(1, 21))


def test_generator_is_deterministic_in_the_seed():
    assert _generate(joins=2, departs=2, updates=2) == _generate(
        joins=2, departs=2, updates=2
    )
    assert _generate(joins=2, departs=2, updates=2) != _generate(
        seed=8, joins=2, departs=2, updates=2
    )


def test_generator_update_events_carry_fresh_requirements():
    schedule = _generate(updates=5)
    for event in schedule:
        assert event.kind == "update"
        assert event.requirements
        for item_id, c in event.requirements:
            assert 0 <= item_id < 5
            assert c > 0


def test_generator_rejects_impossible_workloads():
    with pytest.raises(ConfigurationError):
        _generate(joins=25)  # more joins than repositories
    with pytest.raises(ConfigurationError):
        synthetic_schedule(
            repositories=[1, 2], n_items=2, span_s=100.0, departs=2, seed=1
        )  # would empty the network
    with pytest.raises(ConfigurationError):
        _generate(joins=-1)
    with pytest.raises(ConfigurationError):
        _generate(span_s=0.0, joins=1)
    with pytest.raises(ConfigurationError):
        _generate(joins=1, window=(0.9, 0.1))


def test_generator_zero_counts_give_empty_schedule():
    assert _generate() == ChurnSchedule()


def test_schedule_for_config_uses_config_fields():
    config = SCALE_PRESETS["tiny"]
    schedule = schedule_for_config(config, joins=2, departs=1, updates=1)
    assert len(schedule) == 4
    schedule.initial_members(range(1, config.n_repositories + 1))
    # Seed-stable: the same config always yields the same schedule.
    assert schedule == schedule_for_config(config, joins=2, departs=1, updates=1)
    for event in schedule:
        assert event.time < config.trace_samples


# ----------------------------------------------------------------------
# CLI spec parsing
# ----------------------------------------------------------------------

def test_parse_churn_spec():
    assert parse_churn_spec("2,1,3") == (2, 1, 3)
    assert parse_churn_spec(" 0 , 0 , 1 ") == (0, 0, 1)
    for bad in ("2,1", "a,b,c", "1,2,3,4", "1,-2,3"):
        with pytest.raises(ConfigurationError):
            parse_churn_spec(bad)

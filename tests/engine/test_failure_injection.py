"""Failure-injection tests: lossy networks degrade fidelity gracefully."""

import pytest

from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import run_simulation
from repro.errors import ConfigurationError


def config(loss):
    return SCALE_PRESETS["tiny"].with_(
        n_items=6,
        trace_samples=500,
        t_percent=80.0,
        offered_degree=4,
        message_loss_probability=loss,
    )


def test_invalid_probability_rejected():
    with pytest.raises(ConfigurationError):
        config(1.0)
    with pytest.raises(ConfigurationError):
        config(-0.1)


def test_no_loss_means_no_drops():
    result = run_simulation(config(0.0))
    assert result.counters.drops == 0
    assert result.counters.deliveries == result.counters.messages


def test_drops_accounted_against_messages():
    result = run_simulation(config(0.2))
    assert result.counters.drops > 0
    assert (
        result.counters.deliveries + result.counters.drops
        == result.counters.messages
    )


def test_drop_rate_near_configured_probability():
    result = run_simulation(config(0.2))
    rate = result.counters.drops / result.counters.messages
    assert 0.1 < rate < 0.3


def test_loss_degrades_fidelity_monotonically():
    clean = run_simulation(config(0.0))
    lossy = run_simulation(config(0.3))
    very_lossy = run_simulation(config(0.6))
    assert clean.loss_of_fidelity < lossy.loss_of_fidelity
    assert lossy.loss_of_fidelity < very_lossy.loss_of_fidelity


def test_system_survives_extreme_loss():
    # Even at 90% loss the run completes and fidelity is merely terrible.
    result = run_simulation(config(0.9))
    assert 0.0 <= result.loss_of_fidelity <= 100.0
    assert result.counters.drops > result.counters.deliveries


def test_lossy_runs_are_deterministic():
    a = run_simulation(config(0.25))
    b = run_simulation(config(0.25))
    assert a.loss_of_fidelity == b.loss_of_fidelity
    assert a.counters.drops == b.counters.drops

"""Golden-seed bit-identity: vectorized kernel vs the scalar oracle.

The vectorized kernel is a pure performance refactor.  These tests pin
that claim: for every supported policy, workload, and execution mode
(serial and multi-process sweeps) the scalar and vectorized kernels
produce *identical* ``SimulationResult`` objects -- loss of fidelity,
per-repository losses, every message/check counter (including per-node
breakdowns and client-plane totals), and the event count.

``SimulationResult`` equality is full dataclass equality, so a single
``==`` covers all of those fields at float bit-exactness.
"""

from __future__ import annotations

import pytest

from repro.core.dissemination.filtering import FILTERED_POLICIES
from repro.engine.builder import build_setup
from repro.engine.churn import ChurnEvent, ChurnSchedule
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import (
    DisseminationSimulation,
    make_simulation,
    run_simulation,
)
from repro.engine.sweep import run_sweep
from repro.engine.vectorized import VectorizedSimulation
from repro.errors import ConfigurationError
from repro.workloads import DiurnalWorkload, FlashCrowdWorkload, Table1Workload

BASE = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=300)

WORKLOADS = {
    "table1": Table1Workload(),
    "flash_crowd": FlashCrowdWorkload(),
    "diurnal": DiurnalWorkload(),
}


def _pair(config):
    """Run the same config under both kernels and return both results."""
    scalar = run_simulation(config.with_(kernel="scalar"))
    vector = run_simulation(config.with_(kernel="vectorized"))
    return scalar, vector


@pytest.mark.parametrize("policy", sorted(FILTERED_POLICIES))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_scalar_and_vectorized_results_are_bit_identical(policy, workload):
    config = BASE.with_(policy=policy, workload=WORKLOADS[workload])
    scalar, vector = _pair(config)
    assert scalar == vector


@pytest.mark.parametrize("policy", sorted(FILTERED_POLICIES))
def test_bit_identity_with_message_loss_and_clients(policy):
    config = BASE.with_(
        policy=policy,
        message_loss_probability=0.02,
        seed=3913,
        clients_per_repository=50,
    )
    scalar, vector = _pair(config)
    assert scalar == vector
    # The client plane actually exercised something.
    assert scalar.counters.client_checks > 0


def test_bit_identity_under_parallel_sweep():
    """``--jobs 4`` sweeps dispatch through the same kernel selection."""
    configs = [
        BASE.with_(policy=policy, workload=WORKLOADS[workload])
        for policy in sorted(FILTERED_POLICIES)
        for workload in ("flash_crowd", "diurnal")
    ]
    scalar_cfgs = [c.with_(kernel="scalar") for c in configs]
    vector_cfgs = [c.with_(kernel="vectorized") for c in configs]
    serial = run_sweep(scalar_cfgs, jobs=1)
    assert run_sweep(vector_cfgs, jobs=1) == serial
    assert run_sweep(vector_cfgs, jobs=4) == serial


def test_auto_selects_vectorized_when_supported():
    setup = build_setup(BASE.with_(kernel="auto"))
    sim = make_simulation(setup)
    assert type(sim) is VectorizedSimulation


def test_auto_falls_back_to_scalar_under_churn():
    schedule = ChurnSchedule(events=(ChurnEvent.depart(1.0e9, 1),))
    setup = build_setup(BASE.with_(kernel="auto", churn=schedule))
    sim = make_simulation(setup)
    assert type(sim) is DisseminationSimulation


def test_vectorized_kernel_refuses_churn_setups():
    schedule = ChurnSchedule(events=(ChurnEvent.depart(1.0e9, 1),))
    setup = build_setup(BASE.with_(churn=schedule))
    with pytest.raises(ConfigurationError):
        VectorizedSimulation(setup)


def test_shared_setup_reuse_is_stateless():
    """One built setup can back many runs without cross-contamination."""
    setup = build_setup(BASE.with_(clients_per_repository=25))
    first = VectorizedSimulation(setup).run()
    second = VectorizedSimulation(setup).run()
    oracle = DisseminationSimulation(setup).run()
    assert first == second == oracle

"""Unit tests for the metrics registry primitives."""

import json
import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_rejects_negative():
    c = Counter("messages")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_last_min_max():
    g = Gauge("queue_depth")
    for v in (3.0, 7.0, 1.0):
        g.set(v)
    assert g.value == 1.0
    assert g.min == 1.0
    assert g.max == 7.0


def test_histogram_buckets_are_inclusive_upper_edges():
    h = Histogram("latency", bounds=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 10.0, 99.0):
        h.observe(v)
    # buckets: <=1, <=10, overflow
    assert h.buckets == [2, 2, 1]
    assert h.count == 5
    assert h.total == pytest.approx(115.5)
    assert h.min == 0.5
    assert h.max == 99.0
    assert h.mean == pytest.approx(115.5 / 5)


def test_registry_get_or_create_is_idempotent():
    m = MetricsRegistry()
    assert m.counter("a") is m.counter("a")
    assert m.gauge("b") is m.gauge("b")
    assert m.histogram("c") is m.histogram("c")


def test_snapshot_is_json_ready_and_sorted(tmp_path):
    m = MetricsRegistry()
    m.counter("z").inc(2)
    m.counter("a").inc(1)
    m.gauge("depth").set(4.0)
    m.histogram("lat", bounds=DEFAULT_LATENCY_BOUNDS_MS).observe(3.0)
    snap = m.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms"]
    assert list(snap["counters"]) == ["a", "z"]
    # Round-trips through json without custom encoders.
    json.dumps(snap)
    path = m.write_json(tmp_path / "metrics.json")
    assert json.loads(path.read_text()) == snap


def test_snapshot_empty_histogram_has_no_non_finite_floats():
    m = MetricsRegistry()
    m.histogram("empty")
    snap = m.snapshot()
    h = snap["histograms"]["empty"]
    assert h["count"] == 0
    assert h["min"] is None and h["max"] is None
    assert not any(
        isinstance(v, float) and not math.isfinite(v) for v in h.values()
    )


def test_absorb_merges_counters_histograms_and_prefixes_gauges():
    a = MetricsRegistry()
    a.counter("msgs").inc(3)
    a.histogram("lat", bounds=(1.0, 10.0)).observe(5.0)
    a.gauge("depth").set(2.0)

    b = MetricsRegistry()
    b.counter("msgs").inc(1)
    b.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
    b.absorb(a.snapshot(), gauge_prefix="worker0.")

    assert b.counter("msgs").value == 4
    h = b.histogram("lat")
    assert h.count == 2
    assert h.buckets == [1, 1, 0]
    assert b.gauge("worker0.depth").value == 2.0


def test_absorb_rejects_mismatched_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("lat", bounds=(1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("lat", bounds=(2.0,))
    with pytest.raises(ValueError):
        b.absorb(a.snapshot())

"""Fleet tracing: spans travel home in worker reports, results untouched.

Real processes and real sockets, so wall-clock fields are normalized;
everything else -- counters, losses, conservation totals, extras -- must
be identical between a traced and an untraced 2-worker fleet run, and
the merged span stream must reconcile exactly against the merged
``CostCounters``.  Heartbeats are disabled so neither run carries
wall-timing-dependent extras.
"""

from __future__ import annotations

import dataclasses
import socket

import pytest

from repro.engine.config import SimulationConfig
from repro.fleet import run_fleet
from repro.live.harness import build_live_network, run_live
from repro.obs.trace import TraceRecorder

pytestmark = pytest.mark.live

CONFIG = SimulationConfig(
    n_repositories=5, n_routers=15, n_items=2, trace_samples=80
)

FLEET_KNOBS = dict(
    workers=2, duration=40.0, time_scale=400.0, heartbeat_interval_s=0
)


@pytest.fixture(scope="module", autouse=True)
def _require_localhost_sockets():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind localhost sockets here: {exc}")


def _normalize(result):
    extras = dict(result.extras)
    extras.pop("worker_wall_seconds", None)
    return dataclasses.replace(result, wall_seconds=0.0, extras=extras)


def test_traced_fleet_is_identical_and_reconciles():
    untraced = run_fleet(CONFIG, **FLEET_KNOBS)
    recorder = TraceRecorder(policy=CONFIG.policy)
    traced = run_fleet(CONFIG, trace_recorder=recorder, **FLEET_KNOBS)

    assert _normalize(traced) == _normalize(untraced)

    totals = recorder.totals()
    counters = traced.counters
    assert totals.messages == counters.messages
    assert totals.source_checks == counters.source_checks
    assert totals.repository_checks == counters.repository_checks
    assert totals.deliveries == counters.deliveries
    assert totals.drops == counters.drops

    # Worker telemetry merged under per-worker gauge prefixes.
    snapshot = recorder.metrics.snapshot()
    assert snapshot["counters"]["fleet.reconnects"] == 0
    assert "fleet.queue_stalls" in snapshot["counters"]


def test_fleet_trace_ids_are_stable_across_shards():
    """A sharded trace tells the same story as the single-process one."""
    fleet_recorder = TraceRecorder(policy=CONFIG.policy)
    run_fleet(CONFIG, trace_recorder=fleet_recorder, **FLEET_KNOBS)

    live_recorder = TraceRecorder(policy=CONFIG.policy)
    network = build_live_network(CONFIG)
    network.attach_observer(live_recorder)
    run_live(CONFIG, "inprocess", duration=40.0, network=network)

    def spans(recorder, kind):
        return {
            (ev.update_id, ev.item_id, ev.node, ev.dst)
            for ev in recorder.events
            if ev.kind == kind
        }

    assert spans(fleet_recorder, "forward") == spans(live_recorder, "forward")
    assert spans(fleet_recorder, "deliver") == spans(live_recorder, "deliver")

"""Golden tests for the fidelity-violation explainer.

A seeded crash-and-partition run loses fidelity on many (repository,
item) pairs; the explainer must reconstruct, for every such loss
segment, the causal chain from the trace -- naming the hop and the
reason each missing update never arrived.
"""

from __future__ import annotations

import pytest

from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import failures_for_config
from repro.engine.simulation import run_simulation
from repro.obs.explain import (
    explain_loss_segments,
    explain_pair,
    format_explanation,
)
from repro.obs.trace import TraceRecorder

BASE = SCALE_PRESETS["tiny"].with_(
    n_repositories=8, n_routers=24, n_items=3, trace_samples=150, seed=11
)

TERMINAL_VERDICTS = {"dropped", "filtered", "suppressed"}


@pytest.fixture(scope="module")
def crash_partition_run():
    config = BASE.with_(
        failures=failures_for_config(BASE, crashes=2, partitions=1)
    )
    recorder = TraceRecorder(policy=config.policy)
    result = run_simulation(config, observer=recorder)
    return recorder, result


def test_every_loss_segment_gets_a_named_cause(crash_partition_run):
    recorder, result = crash_partition_run
    per_pair = result.extras["per_pair_loss"]
    lossy = {pair for pair, loss in per_pair.items() if loss > 0.0}
    assert lossy, "the seeded schedule must actually cost fidelity"

    explanations = explain_loss_segments(recorder, per_pair)
    assert set(explanations) == lossy  # one entry per loss segment

    for (repo, item_id), pair_explanations in explanations.items():
        assert pair_explanations, f"pair ({repo}, {item_id}) unexplained"
        for explanation in pair_explanations:
            assert explanation.verdict in TERMINAL_VERDICTS | {"unexplained"}
            if explanation.verdict == "dropped":
                assert explanation.dst is not None  # the hop is named
                assert explanation.reason in (
                    "crash", "partition", "loss", "departed", "wire"
                )
            if explanation.verdict == "filtered":
                assert explanation.dst is not None
                assert explanation.reason == "within-tolerance-and-slack"
        # No segment may be explained *only* by "unexplained" verdicts.
        assert any(
            e.verdict in TERMINAL_VERDICTS for e in pair_explanations
        ), f"pair ({repo}, {item_id}) has no terminal cause"


def test_failure_drops_surface_as_crash_or_partition(crash_partition_run):
    recorder, result = crash_partition_run
    explanations = explain_loss_segments(
        recorder, result.extras["per_pair_loss"]
    )
    reasons = {
        e.reason
        for pair_explanations in explanations.values()
        for e in pair_explanations
        if e.verdict == "dropped"
    }
    assert reasons & {"crash", "partition"}


def test_clean_run_pairs_explain_as_filtered():
    recorder = TraceRecorder(policy=BASE.policy)
    result = run_simulation(BASE, observer=recorder)
    per_pair = result.extras["per_pair_loss"]
    lossy = [pair for pair, loss in per_pair.items() if loss > 0.0]
    assert lossy, "tiny-scale filtering always costs some fidelity"
    repo, item_id = lossy[0]
    explanations = explain_pair(recorder, repo, item_id)
    assert explanations
    # With no failures in play every missing update was filtered away
    # (or suppressed at the source) -- never dropped.
    assert all(e.verdict != "dropped" for e in explanations)


def test_format_explanation_names_hop_and_reason(crash_partition_run):
    recorder, result = crash_partition_run
    explanations = explain_loss_segments(
        recorder, result.extras["per_pair_loss"]
    )
    dropped = next(
        e
        for pair_explanations in explanations.values()
        for e in pair_explanations
        if e.verdict == "dropped"
    )
    line = format_explanation(dropped)
    assert f"{dropped.node}->{dropped.dst}" in line
    assert f"[{dropped.reason}]" in line
    assert f"update {dropped.update_id}" in line

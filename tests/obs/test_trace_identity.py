"""Golden determinism tests: tracing must not perturb results.

The observer contract (:mod:`repro.obs.trace`) promises that attaching
a recorder is invisible to the run: every hook site only *records* a
decision already made.  These tests pin the strongest readable form of
that promise -- full ``SimulationResult`` dataclass equality between a
traced and an untraced run -- on the scalar kernel, the vectorized
kernel and the live in-process transport, plus exact reconciliation of
the span economy against ``CostCounters``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.dissemination import available_policies
from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import failures_for_config
from repro.engine.simulation import run_simulation
from repro.engine.churn import schedule_for_config
from repro.live.harness import build_live_network, run_live
from repro.obs.trace import TraceRecorder

BASE = SCALE_PRESETS["tiny"].with_(
    n_repositories=8, n_routers=24, n_items=3, trace_samples=150
)


def _reconciled(recorder: TraceRecorder, counters) -> None:
    totals = recorder.totals()
    assert totals.messages == counters.messages
    assert totals.source_checks == counters.source_checks
    assert totals.repository_checks == counters.repository_checks
    assert totals.deliveries == counters.deliveries
    assert totals.drops == counters.drops


@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
@pytest.mark.parametrize("policy", available_policies())
def test_traced_run_is_bit_identical_and_reconciles(kernel, policy):
    config = BASE.with_(policy=policy, kernel=kernel)
    untraced = run_simulation(config)
    recorder = TraceRecorder(policy=policy)
    traced = run_simulation(config, observer=recorder)
    assert traced == untraced  # full dataclass equality, extras included
    assert len(recorder) > 0
    _reconciled(recorder, traced.counters)


@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
def test_traced_failure_run_is_bit_identical_and_reconciles(kernel):
    config = BASE.with_(kernel=kernel, message_loss_probability=0.05, seed=7)
    config = config.with_(
        failures=failures_for_config(config, crashes=2, partitions=1)
    )
    untraced = run_simulation(config)
    recorder = TraceRecorder(policy=config.policy)
    traced = run_simulation(config, observer=recorder)
    assert traced == untraced
    _reconciled(recorder, traced.counters)
    assert any(ev.kind == "drop" for ev in recorder.events)


def test_scalar_and_vectorized_emit_identical_span_multisets():
    """Same update ids, same hops, same decisions -- kernel-independent."""
    recorders = {}
    for kernel in ("scalar", "vectorized"):
        recorder = TraceRecorder(policy=BASE.policy)
        run_simulation(BASE.with_(kernel=kernel), observer=recorder)
        recorders[kernel] = recorder

    def key(recorder):
        return sorted(
            (ev.kind, ev.update_id, ev.item_id, ev.node, ev.dst,
             ev.forwarded, ev.reason)
            for ev in recorder.events
        )

    assert key(recorders["scalar"]) == key(recorders["vectorized"])


@pytest.mark.live
def test_traced_live_inprocess_is_identical_and_reconciles():
    config = BASE
    untraced = run_live(config, "inprocess")
    recorder = TraceRecorder(policy=config.policy)
    network = build_live_network(config)
    network.attach_observer(recorder)
    traced = run_live(config, "inprocess", network=network)
    normalize = lambda r: dataclasses.replace(r, wall_seconds=0.0)  # noqa: E731
    assert normalize(traced) == normalize(untraced)
    _reconciled(recorder, traced.counters)


@pytest.mark.live
def test_live_and_scalar_trace_ids_agree():
    """seq - 1 on the live plane IS the engine's schedule index."""
    sim_recorder = TraceRecorder(policy=BASE.policy)
    run_simulation(BASE.with_(kernel="scalar"), observer=sim_recorder)

    live_recorder = TraceRecorder(policy=BASE.policy)
    network = build_live_network(BASE)
    network.attach_observer(live_recorder)
    run_live(BASE, "inprocess", network=network)

    def forwards(recorder):
        return {
            (ev.update_id, ev.item_id, ev.node, ev.dst)
            for ev in recorder.events
            if ev.kind == "forward"
        }

    assert forwards(sim_recorder) == forwards(live_recorder)


def test_traced_churn_run_is_bit_identical():
    config = BASE.with_(kernel="scalar")
    config = config.with_(
        churn=schedule_for_config(config, joins=1, departs=1, updates=1)
    )
    untraced = run_simulation(config)
    recorder = TraceRecorder(policy=config.policy)
    traced = run_simulation(config, observer=recorder)
    assert traced == untraced
    _reconciled(recorder, traced.counters)

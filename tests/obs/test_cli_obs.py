"""Tests for the ``python -m repro obs`` subcommand and CLI logging."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main as cli_main


def test_obs_trace_prints_spans_and_reconciles(capsys):
    cli_main(["obs", "trace", "--preset", "tiny", "--limit", "6"])
    out = capsys.readouterr().out
    assert "spans recorded" in out
    assert "(counters agree: True)" in out
    assert "source" in out and "check" in out


def test_obs_trace_single_update_filter(capsys):
    cli_main(["obs", "trace", "--update", "0", "--limit", "0"])
    out = capsys.readouterr().out
    span_lines = [line for line in out.splitlines() if line.startswith("  t=")]
    assert span_lines
    assert all("update=0 " in line for line in span_lines)


def test_obs_trace_json_artifact(capsys, tmp_path):
    path = tmp_path / "trace.json"
    cli_main(["obs", "trace", "--limit", "1", "--json", str(path)])
    spans = json.loads(path.read_text())
    assert spans and {"kind", "update_id", "node"} <= set(spans[0])
    assert str(path) in capsys.readouterr().out


def test_obs_metrics_snapshot(capsys):
    cli_main(["obs", "metrics", "--preset", "tiny"])
    snapshot = json.loads(capsys.readouterr().out)
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    assert any(
        name.startswith("edge_latency_ms[") for name in snapshot["histograms"]
    )


def test_obs_metrics_json_artifact(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    cli_main(["obs", "metrics", "--json", str(path)])
    snapshot = json.loads(path.read_text())
    assert "histograms" in snapshot


def test_obs_explain_names_hops_and_reasons(capsys):
    cli_main(["obs", "explain", "--failures", "2,1", "--seed", "11"])
    out = capsys.readouterr().out
    assert "loss segments" in out
    assert "filtered on hop" in out
    assert "[crash]" in out or "[partition]" in out


def test_obs_explain_clean_run_reports_filtering_only(capsys):
    cli_main(["obs", "explain", "--preset", "tiny"])
    out = capsys.readouterr().out
    assert "dropped on hop" not in out


def test_obs_options_do_not_clobber_top_level():
    args = build_parser().parse_args(
        ["--preset", "small", "obs", "trace", "--preset", "tiny"]
    )
    assert args.preset == "small"
    assert args.obs_preset == "tiny"


def test_obs_rejects_unknown_kernel():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["obs", "trace", "--kernel", "quantum"])


def test_log_level_flag_accepted_and_quiet_at_error(capsys):
    cli_main([
        "--log-level", "error",
        "experiments", "run", "table1", "--preset", "tiny", "--no-cache",
    ])
    out = capsys.readouterr().out
    # Progress lines route through the logger (suppressed at error);
    # the experiment's rendered text still prints.
    assert "execution plane:" not in out
    assert "Ticker" in out


def test_default_log_level_keeps_progress_output(capsys):
    cli_main([
        "experiments", "run", "table1", "--preset", "tiny", "--no-cache",
    ])
    out = capsys.readouterr().out
    assert "execution plane:" in out

"""Multi-process fleet smoke: real processes, real sockets, real frames.

Deliberately small (5 repositories, 2 items) and fast (aggressive time
scale): these tests check the supervisor/worker plumbing and the
cross-process conservation and fidelity invariants, not statistics.
"""

import socket

import pytest

from repro.engine.churn import synthetic_schedule
from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.fleet import run_fleet, run_fleet_loadgen
from repro.live.harness import run_live
from repro.live.loadgen import run_loadgen

pytestmark = pytest.mark.live

CONFIG = SimulationConfig(
    n_repositories=5, n_routers=15, n_items=2, trace_samples=80
)


@pytest.fixture(scope="module", autouse=True)
def _require_localhost_sockets():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind localhost sockets here: {exc}")


def test_fleet_matches_single_process_exactly():
    single = run_live(CONFIG, "inprocess", duration=40.0)
    result = run_fleet(CONFIG, workers=2, duration=40.0, time_scale=400.0)
    assert result.transport == "fleet"
    assert result.conserved
    assert result.dropped == 0
    assert result.delivered == result.sent
    # Filtering decisions depend only on values and logical arrival
    # stamps, both of which the fleet reproduces bit-for-bit.
    assert result.sent == single.sent
    assert result.loss_of_fidelity == pytest.approx(
        single.loss_of_fidelity, abs=0.5
    )
    assert result.extras["workers"] == 2
    assert sum(result.extras["shard_sizes"]) == CONFIG.n_repositories + 1


def test_fleet_sever_reconnects_resyncs_and_conserves():
    result = run_fleet(
        CONFIG,
        workers=2,
        duration=40.0,
        time_scale=100.0,
        heartbeat_interval_s=0.05,
        sever_at_s=10.0,
        sever_worker=0,
    )
    assert result.conserved
    assert result.sent == result.delivered + result.dropped
    assert result.extras["severed_worker"] == 0
    assert result.extras.get("reconnects", 0) >= 1
    # The generation jump triggered anti-entropy on the far side.
    assert result.counters.resyncs >= 1
    assert result.extras["resync_frames"] >= 2
    # A severed-then-resynced run still scores real fidelity.
    assert 0.0 <= result.loss_of_fidelity <= 100.0


def test_fleet_loadgen_agrees_with_single_process():
    fleet = run_fleet_loadgen(
        CONFIG, 8, workers=2, duration=40.0, time_scale=400.0
    )
    single = run_loadgen(CONFIG, 8, duration=40.0)
    assert fleet.result.conserved
    assert fleet.n_requirements == single.n_requirements
    assert fleet.n_met == single.n_met
    assert [c.met for c in fleet.clients] == [c.met for c in single.clients]
    assert fleet.result.extras["client_messages"] > 0


def test_fleet_rejects_unsupported_configs():
    schedule = synthetic_schedule(
        repositories=range(1, CONFIG.n_repositories + 1),
        n_items=CONFIG.n_items,
        span_s=float(CONFIG.trace_samples - 1),
        joins=1,
        departs=1,
        updates=1,
        seed=1,
    )
    with pytest.raises(ConfigurationError):
        run_fleet(CONFIG.with_(churn=schedule), workers=2)
    with pytest.raises(ConfigurationError):
        run_fleet(
            CONFIG.with_(message_loss_probability=0.1), workers=2
        )
    with pytest.raises(ConfigurationError):
        run_fleet(CONFIG, workers=CONFIG.n_repositories + 2)

"""Shard-plan invariants: total, near-equal, deterministic, co-located."""

import pytest

from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS
from repro.errors import ConfigurationError
from repro.fleet.sharding import plan_shards
from repro.live.harness import _client_node_base
from repro.live.loadgen import generate_clients

CONFIG = SCALE_PRESETS["tiny"]


@pytest.fixture(scope="module")
def setup():
    return build_setup(CONFIG)


def test_plan_covers_every_node_exactly_once(setup):
    plan = plan_shards(setup, 3)
    assert set(plan.owner) == set(setup.graph.nodes)
    assert sum(plan.shard_sizes()) == len(setup.graph.nodes)


def test_source_lands_on_worker_zero(setup):
    for workers in (1, 2, 4):
        plan = plan_shards(setup, workers)
        assert plan.worker_of(plan.source) == 0


def test_shard_sizes_are_near_equal(setup):
    for workers in (2, 3, 5, 7):
        sizes = plan_shards(setup, workers).shard_sizes()
        assert len(sizes) == workers
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1


def test_single_worker_owns_everything(setup):
    plan = plan_shards(setup, 1)
    assert set(plan.owner.values()) == {0}


def test_plan_is_deterministic(setup):
    assert plan_shards(setup, 4) == plan_shards(setup, 4)


def test_nodes_of_partitions_the_graph(setup):
    plan = plan_shards(setup, 3)
    hosted = [node for worker in range(3) for node in plan.nodes_of(worker)]
    assert sorted(hosted) == sorted(setup.graph.nodes)


def test_worker_count_is_validated(setup):
    with pytest.raises(ConfigurationError):
        plan_shards(setup, 0)
    with pytest.raises(ConfigurationError):
        plan_shards(setup, len(setup.graph.nodes) + 1)


def test_clients_live_with_their_repository(setup):
    clients = generate_clients(CONFIG, 12, setup=setup)
    base = _client_node_base(setup)
    plan = plan_shards(setup, 3, clients=clients, client_node_base=base)
    for offset, client in enumerate(clients.clients):
        assert plan.owner[base + offset] == plan.owner[client.repository]


def test_clients_require_a_node_base(setup):
    clients = generate_clients(CONFIG, 4, setup=setup)
    with pytest.raises(ConfigurationError):
        plan_shards(setup, 2, clients=clients)

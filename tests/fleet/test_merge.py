"""Merging worker reports: conservation restored, never fabricated."""

import pytest

from repro.core.fidelity import FidelityAccumulator
from repro.core.metrics import CostCounters
from repro.errors import SimulationError
from repro.fleet.supervisor import merge_reports
from repro.fleet.worker import WorkerReport


def _report(worker, sent=0, delivered=0, dropped=0, **kwargs):
    return WorkerReport(
        worker=worker, sent=sent, delivered=delivered, dropped=dropped, **kwargs
    )


def test_cross_worker_counts_only_conserve_in_the_sum():
    # Worker 0 sent 10 (6 locally delivered, 4 to the peer); worker 1
    # delivered those 4 plus 2 of its own 3.  One frame is in flight.
    merged = merge_reports(
        [
            _report(0, sent=10, delivered=6),
            _report(1, sent=3, delivered=6),
        ]
    )
    assert merged.sent == 13
    assert merged.delivered == 12
    assert merged.dropped == 1  # the in-flight residual, charged as a drop
    assert merged.conserved


def test_over_delivery_raises_instead_of_reconciling():
    with pytest.raises(SimulationError):
        merge_reports([_report(0, sent=1, delivered=3)])


def test_repo_plane_residual_becomes_counter_drops():
    counters = CostCounters()
    counters.messages = 8
    counters.deliveries = 5
    report = _report(0, sent=8, delivered=5)
    report.counters = counters
    merged = merge_reports([report])
    assert merged.counters.drops == 3
    assert (
        merged.counters.messages
        == merged.counters.deliveries + merged.counters.drops
    )


def test_repo_plane_over_delivery_raises():
    counters = CostCounters()
    counters.messages = 2
    counters.deliveries = 5
    report = _report(0, sent=5, delivered=5)
    report.counters = counters
    with pytest.raises(SimulationError):
        merge_reports([report])


def test_fidelity_reaccumulates_across_workers():
    a = _report(0, sent=2, delivered=2)
    a.per_pair_loss = {(1, 0): 4.0, (1, 1): 8.0}
    b = _report(1, sent=2, delivered=2)
    b.per_pair_loss = {(2, 0): 1.0}
    merged = merge_reports([a, b])

    expected = FidelityAccumulator()
    for pairs in (a.per_pair_loss, b.per_pair_loss):
        for (repo, item_id), loss in pairs.items():
            expected.add(repo, item_id, loss)
    assert merged.loss_of_fidelity == expected.system_loss()
    assert merged.per_repository_loss == expected.per_repository()
    assert merged.extras["per_pair_loss"] == {
        (1, 0): 4.0, (1, 1): 8.0, (2, 0): 1.0
    }


def test_extras_aggregate_per_worker_health():
    a = _report(0, sent=1, delivered=1, queue_stalls=2, n_local_nodes=3)
    b = _report(1, queue_stalls=1, protocol_errors=1, n_local_nodes=2)
    merged = merge_reports([b, a], extras={"policy": "distributed"})
    assert merged.extras["workers"] == 2
    assert merged.extras["shard_sizes"] == [3, 2]  # indexed by worker id
    assert merged.extras["queue_stalls"] == 3
    assert merged.extras["protocol_errors"] == 1
    assert merged.extras["policy"] == "distributed"
    # Quiet-health keys only appear when something happened.
    assert "heartbeats" not in merged.extras
    assert "reconnects" not in merged.extras


def test_counters_fold_commutes():
    a = _report(0, sent=3, delivered=3)
    a.counters.messages = 3
    a.counters.deliveries = 3
    a.counters.record_resync(4, 2)
    b = _report(1, sent=1, delivered=1)
    b.counters.messages = 1
    b.counters.deliveries = 1
    ab, ba = merge_reports([a, b]), merge_reports([b, a])
    assert ab.counters.resyncs == ba.counters.resyncs == 1
    assert ab.counters.resync_checks == 4
    assert ab.counters.messages == ba.counters.messages == 4

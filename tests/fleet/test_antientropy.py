"""Sample-based anti-entropy: correctness, cost, and protocol discipline."""

import pytest

from repro.errors import SimulationError
from repro.fleet.antientropy import (
    AntiEntropyCost,
    ChildSession,
    ParentView,
    full_transfer_cost,
    heads_digest,
    run_resync,
)
from repro.live.protocol import ResyncResponse


def test_digest_fast_path_costs_one_round_trip():
    heads = {i: i * 3 for i in range(64)}
    parent = {i: (seq, float(seq)) for i, seq in heads.items()}
    missing, cost = run_resync(heads, parent)
    assert missing == []
    assert cost.rounds == 1
    assert cost.frames == 2
    assert cost.transferred == 0
    assert cost.checks == 0


def test_missed_tail_is_discovered_and_replayed():
    child = {i: 10 for i in range(32)}
    parent = {i: (10, 1.0) for i in range(32)}
    behind = {3, 17, 29}
    for i in behind:
        parent[i] = (14, 2.5)
    missing, cost = run_resync(child, parent)
    assert {item for item, _seq, _value in missing} == behind
    assert all(seq == 14 and value == 2.5 for _i, seq, value in missing)
    assert cost.transferred == len(behind)
    assert cost.messages < full_transfer_cost(len(parent))


def test_stalest_first_resolves_localized_loss_in_one_sample_round():
    # The behind items carry the *lowest* heads, so a sample_size as
    # small as the loss finds them in the very first sample round.
    child = {i: 50 for i in range(100)}
    behind = {0, 1, 2}
    for i in behind:
        child[i] = 7
    parent = {i: (50, 1.0) for i in range(100)}
    for i in behind:
        parent[i] = (50, 9.0)
    session = ChildSession(0, 0, child, sample_size=4)
    view = ParentView(parent)
    session.absorb(view.respond(session.next_request()))  # digest mismatch
    session.absorb(view.respond(session.next_request()))  # first sample
    assert {item for item, _s, _v in session.missing} == behind


def test_parent_never_owes_what_filtering_pruned():
    # A child head at or above the parent's *forwarded* head is current,
    # even if the source published far beyond it.
    view = ParentView({5: (10, 1.0)})
    session = ChildSession(0, 0, {5: 10})
    missing, cost = run_resync({5: 10}, {5: (10, 1.0)})
    assert missing == []
    response = view.respond(
        session.next_request()  # digest probe matches
    )
    assert response.complete
    assert cost.transferred == 0


def test_items_unknown_to_the_parent_classify_as_known():
    missing, _cost = run_resync({1: 4, 2: 0}, {1: (4, 1.0)})
    assert missing == []


def test_sampled_cost_beats_full_transfer_at_scale():
    n, d = 256, 3
    child = {i: 100 for i in range(n)}
    parent = {i: (100, 1.0) for i in range(n)}
    for i in range(d):
        child[i] = 90
        parent[i] = (100, 2.0)
    _missing, cost = run_resync(child, parent)
    assert cost.messages < full_transfer_cost(n)


def test_unsolicited_response_raises():
    session = ChildSession(0, 1, {1: 1})
    with pytest.raises(SimulationError):
        session.absorb(ResyncResponse(child=0, parent=1, round_no=3))


def test_digest_mismatch_with_nothing_to_sample_ends_cleanly():
    session = ChildSession(0, 1, {})
    assert session.next_request().round_no == 0
    session.absorb(
        ResyncResponse(child=0, parent=1, round_no=0, complete=False)
    )
    assert session.done
    assert session.missing == []


def test_sample_size_is_validated():
    with pytest.raises(SimulationError):
        ChildSession(0, 1, {1: 1}, sample_size=0)


def test_cost_messages_unit_matches_full_transfer_unit():
    cost = AntiEntropyCost(rounds=2, frames=4, checks=8, transferred=3)
    assert cost.messages == 7
    assert full_transfer_cost(0) == 2  # a frame pair even for nothing


def test_heads_digest_is_order_independent():
    assert heads_digest({1: 2, 3: 4}) == heads_digest({3: 4, 1: 2})
    assert heads_digest({1: 2}) != heads_digest({1: 3})

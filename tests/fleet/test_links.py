"""SendQueue watermark semantics: hysteresis, ordering, control bypass."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.fleet.links import SendQueue


def run(coroutine):
    return asyncio.run(coroutine)


def test_watermarks_are_validated():
    with pytest.raises(ConfigurationError):
        SendQueue(high=0)
    with pytest.raises(ConfigurationError):
        SendQueue(high=4, low=4)
    with pytest.raises(ConfigurationError):
        SendQueue(high=4, low=-1)


def test_fifo_order_preserved():
    async def scenario():
        queue = SendQueue(high=8, low=2)
        for i in range(5):
            await queue.put(i)
        return [await queue.get() for _ in range(5)]

    assert run(scenario()) == [0, 1, 2, 3, 4]


def test_put_blocks_at_high_and_resumes_below_low():
    async def scenario():
        queue = SendQueue(high=3, low=1)
        for i in range(3):
            await queue.put(i)

        blocked = asyncio.create_task(queue.put(99))
        await asyncio.sleep(0)
        assert not blocked.done()  # producer stalled at the watermark
        assert queue.stalls == 1

        await queue.get()  # depth 2: still above low, still stalled
        await asyncio.sleep(0)
        assert not blocked.done()

        await queue.get()  # depth 1 == low: hysteresis releases
        await blocked
        return len(queue)

    assert run(scenario()) == 2


def test_put_nowait_jumps_backpressure():
    async def scenario():
        queue = SendQueue(high=2, low=0)
        await queue.put("a")
        await queue.put("b")
        queue.put_nowait("control")  # never blocks, even when full
        return len(queue)

    assert run(scenario()) == 3


def test_get_waits_for_an_item():
    async def scenario():
        queue = SendQueue()
        getter = asyncio.create_task(queue.get())
        await asyncio.sleep(0)
        assert not getter.done()
        await queue.put("late")
        return await getter

    assert run(scenario()) == "late"


def test_drain_nowait_empties_and_unblocks():
    async def scenario():
        queue = SendQueue(high=2, low=0)
        await queue.put(1)
        await queue.put(2)
        blocked = asyncio.create_task(queue.put(3))
        await asyncio.sleep(0)
        drained = queue.drain_nowait()
        await blocked  # writable again after the drain
        return drained, len(queue)

    drained, remaining = run(scenario())
    assert drained == [1, 2]
    assert remaining == 1

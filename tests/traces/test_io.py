"""Unit tests for trace CSV round-tripping."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.io import read_trace_csv, write_trace_csv
from repro.traces.model import Trace


def make_trace():
    return Trace(
        name="RT",
        times=np.array([0.0, 1.5, 3.25]),
        values=np.array([10.01, 10.02, 9.99]),
    )


def test_roundtrip_preserves_data(tmp_path):
    path = tmp_path / "trace.csv"
    original = make_trace()
    write_trace_csv(original, path)
    loaded = read_trace_csv(path)
    assert np.array_equal(loaded.times, original.times)
    assert np.array_equal(loaded.values, original.values)


def test_name_defaults_to_stem(tmp_path):
    path = tmp_path / "msft.csv"
    write_trace_csv(make_trace(), path)
    assert read_trace_csv(path).name == "msft"


def test_explicit_name(tmp_path):
    path = tmp_path / "x.csv"
    write_trace_csv(make_trace(), path)
    assert read_trace_csv(path, name="CUSTOM").name == "CUSTOM"


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(TraceError):
        read_trace_csv(path)


def test_bad_header_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(TraceError):
        read_trace_csv(path)


def test_wrong_column_count_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time_s,value\n1,2,3\n")
    with pytest.raises(TraceError):
        read_trace_csv(path)


def test_non_numeric_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time_s,value\n1,abc\n")
    with pytest.raises(TraceError):
        read_trace_csv(path)


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "gaps.csv"
    path.write_text("time_s,value\n0.0,1.0\n\n1.0,2.0\n")
    trace = read_trace_csv(path)
    assert len(trace) == 2


def test_header_only_is_empty_trace_error(tmp_path):
    path = tmp_path / "header.csv"
    path.write_text("time_s,value\n")
    with pytest.raises(TraceError):
        read_trace_csv(path)

@pytest.mark.parametrize("cell", ["nan", "NaN", "inf", "-inf", "Infinity"])
def test_non_finite_value_rejected_with_location(tmp_path, cell):
    """NaN values must never reach the filtering layer: ``!=`` forwards
    a NaN on every update under flooding while Eq. (3)/Eq. (7) never
    fire on it, so the push policies would silently diverge."""
    path = tmp_path / "naughty.csv"
    path.write_text(f"time_s,value\n0.0,1.0\n1.0,{cell}\n")
    with pytest.raises(TraceError, match=r"naughty\.csv:3: non-finite"):
        read_trace_csv(path)


@pytest.mark.parametrize("cell", ["nan", "inf", "-inf"])
def test_non_finite_time_rejected_with_location(tmp_path, cell):
    path = tmp_path / "warped.csv"
    path.write_text(f"time_s,value\n{cell},1.0\n")
    with pytest.raises(TraceError, match=r"warped\.csv:2: non-finite"):
        read_trace_csv(path)

"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.model import Trace


def make_trace():
    return Trace(
        name="T", times=np.array([0.0, 1.0, 2.0, 3.0]), values=np.array([10.0, 10.5, 10.5, 11.0])
    )


def test_basic_properties():
    trace = make_trace()
    assert len(trace) == 4
    assert trace.initial_value == 10.0
    assert trace.span == 3.0
    assert trace.min_value == 10.0
    assert trace.max_value == 11.0


def test_empty_trace_rejected():
    with pytest.raises(TraceError):
        Trace(name="E", times=np.array([]), values=np.array([]))


def test_length_mismatch_rejected():
    with pytest.raises(TraceError):
        Trace(name="M", times=np.array([0.0, 1.0]), values=np.array([1.0]))


def test_non_increasing_times_rejected():
    with pytest.raises(TraceError):
        Trace(name="D", times=np.array([0.0, 0.0]), values=np.array([1.0, 2.0]))
    with pytest.raises(TraceError):
        Trace(name="D", times=np.array([1.0, 0.5]), values=np.array([1.0, 2.0]))


def test_non_finite_rejected():
    with pytest.raises(TraceError):
        Trace(name="N", times=np.array([0.0, 1.0]), values=np.array([1.0, np.nan]))
    with pytest.raises(TraceError):
        Trace(name="N", times=np.array([0.0, np.inf]), values=np.array([1.0, 2.0]))


def test_multidimensional_rejected():
    with pytest.raises(TraceError):
        Trace(name="X", times=np.zeros((2, 2)), values=np.zeros((2, 2)))


def test_changes_drops_repeats_keeps_first():
    changes = make_trace().changes()
    assert list(changes.times) == [0.0, 1.0, 3.0]
    assert list(changes.values) == [10.0, 10.5, 11.0]


def test_changes_of_single_sample():
    trace = Trace(name="S", times=np.array([0.0]), values=np.array([5.0]))
    assert len(trace.changes()) == 1


def test_changes_of_constant_trace_is_single_sample():
    trace = Trace(
        name="C", times=np.array([0.0, 1.0, 2.0]), values=np.array([5.0, 5.0, 5.0])
    )
    assert len(trace.changes()) == 1


def test_value_at_step_semantics():
    trace = make_trace()
    assert trace.value_at(0.0) == 10.0
    assert trace.value_at(0.99) == 10.0
    assert trace.value_at(1.0) == 10.5
    assert trace.value_at(99.0) == 11.0


def test_value_at_before_start_rejected():
    with pytest.raises(TraceError):
        make_trace().value_at(-0.1)


def test_slice_prefix():
    sliced = make_trace().slice(2)
    assert len(sliced) == 2
    assert list(sliced.values) == [10.0, 10.5]


def test_slice_longer_than_trace_is_whole_trace():
    assert len(make_trace().slice(100)) == 4


def test_slice_invalid_rejected():
    with pytest.raises(TraceError):
        make_trace().slice(0)

"""Unit tests for the Table 1 preset library."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.traces.library import (
    PAPER_TICKERS,
    TickerSpec,
    config_for_spec,
    make_paper_trace,
    make_trace_set,
)


def test_all_six_paper_tickers_present():
    names = [spec.ticker for spec in PAPER_TICKERS]
    assert names == ["MSFT", "SUNW", "DELL", "QCOM", "INTC", "ORCL"]


def test_paper_bands_match_table1():
    msft = PAPER_TICKERS[0]
    assert msft.min_price == 60.09
    assert msft.max_price == 60.85


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        TickerSpec("BAD", 10.0, 9.0)
    with pytest.raises(ConfigurationError):
        TickerSpec("BAD", 0.0, 9.0)


def test_spec_derived_properties():
    spec = TickerSpec("X", 10.0, 12.0)
    assert spec.mid_price == 11.0
    assert spec.band == 2.0


def test_trace_starts_near_mid_price():
    spec = PAPER_TICKERS[0]
    trace = make_paper_trace(spec, np.random.default_rng(0), n_samples=1_000)
    assert trace.values[0] == pytest.approx(spec.mid_price, abs=0.01)


def test_trace_stays_in_a_band_comparable_to_table1():
    # The calibration targets the Table 1 band; allow generous slack but
    # require the right order of magnitude.
    for i, spec in enumerate(PAPER_TICKERS):
        trace = make_paper_trace(spec, np.random.default_rng(i), n_samples=10_000)
        realised = trace.max_value - trace.min_value
        assert 0.2 * spec.band < realised < 4.0 * spec.band, spec.ticker


def test_trace_meta_carries_table1_band():
    trace = make_paper_trace(PAPER_TICKERS[1], np.random.default_rng(0), 100)
    assert trace.meta["table1_min"] == PAPER_TICKERS[1].min_price


def test_config_for_spec_reasonable():
    config = config_for_spec(PAPER_TICKERS[0])
    assert config.start_price == pytest.approx(60.47)
    assert config.volatility > 0
    assert config.tick == 0.01


def factory(seed):
    streams = RandomStreams(seed)
    return lambda i: streams.spawn("traces", i)


def test_make_trace_set_counts_and_names():
    traces = make_trace_set(10, factory(5), n_samples=500)
    assert len(traces) == 10
    assert traces[0].name == "MSFT"
    assert traces[6].name == "SYN006"


def test_make_trace_set_more_than_presets():
    traces = make_trace_set(8, factory(5), n_samples=200)
    assert all(len(t) == 200 for t in traces)


def test_make_trace_set_reproducible():
    a = make_trace_set(3, factory(7), n_samples=300)
    b = make_trace_set(3, factory(7), n_samples=300)
    for x, y in zip(a, b):
        assert np.array_equal(x.values, y.values)


def test_make_trace_set_rejects_zero():
    with pytest.raises(ConfigurationError):
        make_trace_set(0, factory(1))

"""Unit tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def gen(seed=0, **kwargs):
    config = SyntheticTraceConfig(**kwargs)
    return generate_trace("X", config, np.random.default_rng(seed))


def test_length_and_timestamps():
    trace = gen(n_samples=500, interval_s=1.0)
    assert len(trace) == 500
    assert trace.times[0] == 0.0
    assert np.allclose(np.diff(trace.times), 1.0)


def test_prices_on_tick_grid():
    trace = gen(n_samples=2_000, tick=0.01)
    remainder = np.abs(trace.values / 0.01 - np.round(trace.values / 0.01))
    assert (remainder < 1e-6).all()


def test_prices_stay_positive():
    trace = gen(n_samples=5_000, start_price=0.05, volatility=0.5, tick=0.01)
    assert (trace.values >= 0.01).all()


def test_first_value_is_start_price():
    trace = gen(start_price=42.0)
    assert trace.values[0] == 42.0


def test_reproducible_given_seed():
    a, b = gen(seed=9), gen(seed=9)
    assert np.array_equal(a.values, b.values)


def test_seeds_differ():
    a, b = gen(seed=1, n_samples=500), gen(seed=2, n_samples=500)
    assert not np.array_equal(a.values, b.values)


def test_change_probability_controls_activity():
    quiet = gen(seed=3, n_samples=3_000, change_probability=0.05)
    busy = gen(seed=3, n_samples=3_000, change_probability=0.9)
    quiet_changes = np.count_nonzero(np.diff(quiet.values))
    busy_changes = np.count_nonzero(np.diff(busy.values))
    assert busy_changes > 3 * quiet_changes


def test_mean_reversion_bounds_excursions():
    wanderer = gen(seed=4, n_samples=10_000, reversion=0.0, volatility=0.05)
    reverter = gen(seed=4, n_samples=10_000, reversion=0.2, volatility=0.05)
    assert reverter.values.std() < wanderer.values.std()


def test_metadata_recorded():
    trace = gen()
    assert trace.meta["synthetic"] is True
    assert "volatility" in trace.meta


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_samples": 0},
        {"interval_s": 0.0},
        {"start_price": -1.0},
        {"volatility": -0.1},
        {"reversion": 1.0},
        {"reversion": -0.1},
        {"tick": 0.0},
        {"change_probability": 0.0},
        {"change_probability": 1.5},
        {"interval_s": float("nan")},
        {"start_price": float("inf")},
        {"volatility": float("nan")},
        {"reversion": float("-inf")},
        {"tick": float("nan")},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        gen(**kwargs)

"""Unit tests for Table-1-style trace summaries."""

import numpy as np
import pytest

from repro.traces.model import Trace
from repro.traces.stats import format_table1, summarize


def make_trace():
    return Trace(
        name="S",
        times=np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
        values=np.array([10.0, 10.0, 10.5, 10.5, 9.8]),
    )


def test_summarize_basic_fields():
    stats = summarize(make_trace())
    assert stats.name == "S"
    assert stats.n_samples == 5
    assert stats.span_s == 4.0
    assert stats.min_value == 9.8
    assert stats.max_value == 10.5
    assert stats.band == pytest.approx(0.7)


def test_summarize_change_statistics():
    stats = summarize(make_trace())
    assert stats.n_changes == 2  # 10->10.5 and 10.5->9.8
    assert stats.change_rate == 0.5
    assert stats.mean_abs_jump == pytest.approx((0.5 + 0.7) / 2)
    assert stats.max_abs_jump == pytest.approx(0.7)


def test_summarize_constant_trace():
    trace = Trace(
        name="C", times=np.array([0.0, 1.0]), values=np.array([3.0, 3.0])
    )
    stats = summarize(trace)
    assert stats.n_changes == 0
    assert stats.change_rate == 0.0
    assert stats.mean_abs_jump == 0.0


def test_summarize_single_sample():
    trace = Trace(name="O", times=np.array([0.0]), values=np.array([1.0]))
    stats = summarize(trace)
    assert stats.n_changes == 0
    assert stats.change_rate == 0.0


def test_format_table1_contains_all_rows():
    stats = [summarize(make_trace())]
    text = format_table1(stats)
    assert "Ticker" in text
    assert "S" in text
    assert len(text.splitlines()) == 3

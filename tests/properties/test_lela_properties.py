"""Property-based tests of LeLA's structural invariants.

For arbitrary interest profiles, degrees and P% bands, the constructed
``d3g`` must satisfy every invariant of DESIGN.md: per-item trees rooted
at the source, Eq. (1) along every edge, full coverage of every declared
interest, and capacity limits in push connections.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.interests import InterestProfile
from repro.core.lela import build_d3g

N_ITEMS = 5


@st.composite
def scenario(draw):
    n_repos = draw(st.integers(min_value=1, max_value=12))
    degree = draw(st.integers(min_value=1, max_value=6))
    p_percent = draw(st.sampled_from([0.0, 1.0, 5.0, 25.0, 100.0]))
    profiles = []
    for repo in range(1, n_repos + 1):
        n_wanted = draw(st.integers(min_value=1, max_value=N_ITEMS))
        items = draw(
            st.permutations(list(range(N_ITEMS))).map(lambda p: p[:n_wanted])
        )
        reqs = {
            item: draw(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
            )
            for item in items
        }
        profiles.append(InterestProfile(repository=repo, requirements=reqs))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return profiles, degree, p_percent, seed


def delays(u, v):
    if u == v:
        return 0.0
    # Deterministic pseudo-distances keep preference factors distinct.
    return 10.0 + ((hash((min(u, v), max(u, v))) % 97) / 10.0)


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_lela_invariants(case):
    profiles, degree, p_percent, seed = case
    graph = build_d3g(
        profiles,
        source=0,
        comm_delay_ms=delays,
        offered_degree=degree,
        p_percent=p_percent,
        rng=np.random.default_rng(seed),
    )
    # validate() checks Eq. (1), parent tables, reachability, capacity.
    graph.validate(max_dependents={n: degree for n in graph.nodes})
    # Every declared interest is served at sufficient stringency.
    for profile in profiles:
        state = graph.nodes[profile.repository]
        for item_id, c in profile.requirements.items():
            assert item_id in state.receive_c
            assert state.receive_c[item_id] <= c + 1e-12
    # Levels partition the repositories.
    placed = [n for level in graph.levels for n in level]
    assert sorted(placed) == sorted(graph.nodes)


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_lela_receive_c_is_min_over_subtree(case):
    """A node's receive coherency equals the most stringent requirement
    among its own need and everything it serves downstream."""
    profiles, degree, p_percent, seed = case
    graph = build_d3g(
        profiles,
        source=0,
        comm_delay_ms=delays,
        offered_degree=degree,
        p_percent=p_percent,
        rng=np.random.default_rng(seed),
    )
    for node, state in graph.nodes.items():
        if node == graph.source:
            continue
        for item_id, c_recv in state.receive_c.items():
            own = state.own_c.get(item_id, float("inf"))
            served = [
                graph.nodes[child].receive_c[item_id]
                for child, items in state.children.items()
                if item_id in items
            ]
            needed = min([own] + served)
            assert c_recv <= needed + 1e-12

"""Property-based reconciliation: span sums equal ``CostCounters``.

For any policy, any seeded loss probability, any failure schedule,
churn or adaptive configuration, the span stream recorded by an
attached :class:`~repro.obs.trace.TraceRecorder` must re-derive the
run's message economy exactly -- and recording it must leave the result
bit-identical.  This is the trace layer's conservation law: every
charged message/check/drop/delivery appears as exactly one span.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.dissemination import available_policies
from repro.engine.adaptive import AdaptivePolicy
from repro.engine.churn import schedule_for_config
from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import failures_for_config
from repro.engine.simulation import run_simulation
from repro.obs.trace import TraceRecorder

#: Small grid so each drawn example simulates in tens of milliseconds.
BASE = SCALE_PRESETS["tiny"].with_(
    n_repositories=8, n_routers=24, n_items=2, trace_samples=120
)


def _assert_reconciled(config):
    untraced = run_simulation(config)
    recorder = TraceRecorder(policy=config.policy)
    traced = run_simulation(config, observer=recorder)
    assert traced == untraced
    totals = recorder.totals()
    counters = traced.counters
    assert totals.messages == counters.messages
    assert totals.source_checks == counters.source_checks
    assert totals.repository_checks == counters.repository_checks
    assert totals.deliveries == counters.deliveries
    assert totals.drops == counters.drops


@settings(max_examples=12, deadline=None)
@given(
    policy=st.sampled_from(available_policies()),
    kernel=st.sampled_from(["scalar", "vectorized"]),
    loss=st.sampled_from([0.0, 0.05, 0.2]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_spans_reconcile_under_loss(policy, kernel, loss, seed):
    _assert_reconciled(
        BASE.with_(
            policy=policy, kernel=kernel,
            message_loss_probability=loss, seed=seed,
        )
    )


@settings(max_examples=8, deadline=None)
@given(
    kernel=st.sampled_from(["scalar", "vectorized"]),
    crashes=st.integers(min_value=0, max_value=3),
    partitions=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_spans_reconcile_under_failures(kernel, crashes, partitions, seed):
    config = BASE.with_(kernel=kernel, seed=seed)
    config = config.with_(
        failures=failures_for_config(
            config, crashes=crashes, partitions=partitions
        )
    )
    _assert_reconciled(config)


@settings(max_examples=6, deadline=None)
@given(
    joins=st.integers(min_value=0, max_value=2),
    departs=st.integers(min_value=0, max_value=2),
    updates=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_spans_reconcile_under_churn(joins, departs, updates, seed):
    # Churn is a scalar-kernel feature.
    config = BASE.with_(kernel="scalar", seed=seed)
    config = config.with_(
        churn=schedule_for_config(
            config, joins=joins, departs=departs, updates=updates
        )
    )
    _assert_reconciled(config)


@settings(max_examples=6, deadline=None)
@given(
    window=st.sampled_from([20.0, 40.0]),
    threshold=st.sampled_from([0.5, 0.9]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_spans_reconcile_under_adaptive(window, threshold, seed):
    config = BASE.with_(
        kernel="scalar", seed=seed,
        adaptive=AdaptivePolicy(window=window, threshold=threshold),
    )
    _assert_reconciled(config)

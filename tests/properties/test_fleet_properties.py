"""Fleet merge and shard-plan invariants over arbitrary assignments.

The fleet counts a cross-worker frame as ``sent`` on its sender and
``delivered`` on its receiver, so no single worker report conserves --
only the merged sum can, and only after the supervisor charges the
in-flight residual to drops.  These properties pin that reconciliation
over arbitrary traffic matrices and shard assignments: however messages
are scattered across workers, the merged result obeys exactly the
invariants the single-process transports end with.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sharding import plan_shards
from repro.fleet.supervisor import merge_reports
from repro.fleet.worker import WorkerReport

# One message: (sender worker, receiver worker, fate).
_FATES = ("delivered", "in-flight", "dropped")


@st.composite
def _traffic(draw):
    n_workers = draw(st.integers(min_value=1, max_value=5))
    messages = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_workers - 1),
                st.integers(0, n_workers - 1),
                st.sampled_from(_FATES),
            ),
            max_size=60,
        )
    )
    return n_workers, messages


@given(_traffic())
@settings(max_examples=200, deadline=None)
def test_merged_counters_conserve_over_any_shard_assignment(traffic):
    n_workers, messages = traffic
    reports = [WorkerReport(worker=w) for w in range(n_workers)]
    for sender, receiver, fate in messages:
        reports[sender].sent += 1
        reports[sender].counters.messages += 1
        if fate == "delivered":
            reports[receiver].delivered += 1
            reports[receiver].counters.deliveries += 1
        elif fate == "dropped":
            reports[sender].dropped += 1
            reports[sender].counters.drops += 1
        # in-flight: counted nowhere else; the merge must reconcile it.

    merged = merge_reports(reports)
    assert merged.sent == len(messages)
    assert merged.sent == merged.delivered + merged.dropped
    assert merged.conserved
    assert (
        merged.counters.messages
        == merged.counters.deliveries + merged.counters.drops
    )
    in_flight = sum(1 for _s, _r, fate in messages if fate == "in-flight")
    explicit = sum(1 for _s, _r, fate in messages if fate == "dropped")
    assert merged.dropped == explicit + in_flight


@given(_traffic())
@settings(max_examples=100, deadline=None)
def test_merge_is_independent_of_report_order(traffic):
    n_workers, messages = traffic
    reports = [WorkerReport(worker=w) for w in range(n_workers)]
    for sender, receiver, fate in messages:
        reports[sender].sent += 1
        if fate == "delivered":
            reports[receiver].delivered += 1
        elif fate == "dropped":
            reports[sender].dropped += 1
    forward = merge_reports(list(reports))
    backward = merge_reports(list(reversed(reports)))
    assert (forward.sent, forward.delivered, forward.dropped) == (
        backward.sent, backward.delivered, backward.dropped
    )
    assert forward.extras["shard_sizes"] == backward.extras["shard_sizes"]


@given(st.integers(min_value=1, max_value=21))
@settings(max_examples=21, deadline=None)
def test_shard_plan_is_total_and_balanced(tiny_setup, n_workers):
    n_nodes = len(tiny_setup.graph.nodes)
    if n_workers > n_nodes:
        pytest.skip("more workers than nodes is a configuration error")
    plan = plan_shards(tiny_setup, n_workers)
    assert set(plan.owner) == set(tiny_setup.graph.nodes)
    sizes = plan.shard_sizes()
    assert sum(sizes) == n_nodes
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1
    assert plan.worker_of(plan.source) == 0

"""Property-based tests of end-to-end engine invariants.

These drive the full engine (tiny workloads) over hypothesis-chosen
configurations and check invariants that must hold regardless of the
parameter point: accounting identities, fidelity bounds, and the
zero-delay fidelity theorem across seeds.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.config import SimulationConfig
from repro.engine.simulation import run_simulation

_BASE = dict(
    n_repositories=8,
    n_routers=20,
    n_items=3,
    trace_samples=150,
)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    t=st.sampled_from([0.0, 50.0, 100.0]),
    degree=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(["distributed", "centralized", "flooding", "eq3_only"]),
)
@settings(max_examples=25, deadline=None)
def test_accounting_identities_hold_everywhere(seed, t, degree, policy):
    config = SimulationConfig(
        seed=seed, t_percent=t, offered_degree=degree, policy=policy, **_BASE
    )
    result = run_simulation(config)
    assert 0.0 <= result.loss_of_fidelity <= 100.0
    assert result.counters.deliveries == result.counters.messages
    assert result.counters.drops == 0
    assert set(result.per_repository_loss) == set(range(1, 9))
    # Every message was preceded by at least one check somewhere.
    assert result.counters.total_checks >= result.counters.messages


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_zero_delay_theorem_across_seeds(seed):
    """The 100%-fidelity guarantee holds for every random workload."""
    config = SimulationConfig(
        seed=seed,
        t_percent=80.0,
        offered_degree=3,
        policy="distributed",
        comm_target_ms=0.0,
        comp_delay_ms=0.0,
        **_BASE,
    )
    assert run_simulation(config).loss_of_fidelity == 0.0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    degree=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_exact_policies_agree_on_message_volume(seed, degree):
    """Figure 11(b) across random workloads: message volumes agree.

    The band is degree-conditioned.  At degree >= 2 the d3g is bushy and
    shallow and the two exact policies land within the paper's ~1.0
    ratio (empirically [0.85, 1.23] over 95 sampled workloads; band
    0.75..1.35 keeps the original margin).  At degree == 1 the d3g
    degenerates to per-item *chains* as deep as the repository count;
    every non-source hop then has c_p > 0, so the distributed policy's
    Eq. (7) guard fires preemptive forwards at every level while the
    centralised source still sends only on true violations.  The
    resulting extra distributed traffic compounds with depth: over 750+
    sampled degree-1 workloads on this 8-repository configuration the
    ratio spans [0.68, 1.11] (the Eq. (3)-only ablation confirms the gap
    is entirely Eq. (7): eq3_only message counts stay within ~10% of
    centralised).  Bound 0.55 leaves the same relative margin below the
    observed floor that 0.75 left for the bushy case.
    """
    base = SimulationConfig(
        seed=seed, t_percent=80.0, offered_degree=degree, **_BASE
    )
    dist = run_simulation(base.with_(policy="distributed"))
    central = run_simulation(base.with_(policy="centralized"))
    if dist.messages and central.messages:
        ratio = central.messages / dist.messages
        lower = 0.55 if degree == 1 else 0.75
        assert lower < ratio < 1.35


def test_message_volume_divergence_is_eq7_regression():
    """Regression: the seed/degree pair Hypothesis found (seed=3913,
    degree=1, ratio ~0.74) is genuine Eq. (7) chain overhead, not a
    policy bug: dropping the guard (eq3_only) closes the gap with the
    centralised count."""
    base = SimulationConfig(
        seed=3913, t_percent=80.0, offered_degree=1, **_BASE
    )
    dist = run_simulation(base.with_(policy="distributed"))
    central = run_simulation(base.with_(policy="centralized"))
    eq3 = run_simulation(base.with_(policy="eq3_only"))
    # The distributed policy sends more than centralised on deep chains...
    assert dist.messages > central.messages
    assert 0.55 < central.messages / dist.messages < 0.75
    # ...and the surplus is exactly the preemptive Eq. (7) forwards.
    assert central.messages / eq3.messages < 1.15
    assert dist.messages - eq3.messages > 0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.floats(min_value=0.05, max_value=0.9),
    policy=st.sampled_from(["distributed", "centralized"]),
)
@settings(max_examples=15, deadline=None)
def test_loss_accounting_identities_hold_under_drops(seed, loss, policy):
    """The Figure 11 accounting generalises to lossy networks: every
    message is either delivered or dropped, never both or neither."""
    config = SimulationConfig(
        seed=seed,
        t_percent=80.0,
        offered_degree=3,
        policy=policy,
        message_loss_probability=loss,
        **_BASE,
    )
    result = run_simulation(config)
    assert result.counters.drops >= 0
    assert (
        result.counters.deliveries + result.counters.drops
        == result.counters.messages
    )
    assert 0.0 <= result.loss_of_fidelity <= 100.0

"""Property-based tests of end-to-end engine invariants.

These drive the full engine (tiny workloads) over hypothesis-chosen
configurations and check invariants that must hold regardless of the
parameter point: accounting identities, fidelity bounds, and the
zero-delay fidelity theorem across seeds.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.config import SimulationConfig
from repro.engine.simulation import run_simulation

_BASE = dict(
    n_repositories=8,
    n_routers=20,
    n_items=3,
    trace_samples=150,
)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    t=st.sampled_from([0.0, 50.0, 100.0]),
    degree=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(["distributed", "centralized", "flooding", "eq3_only"]),
)
@settings(max_examples=25, deadline=None)
def test_accounting_identities_hold_everywhere(seed, t, degree, policy):
    config = SimulationConfig(
        seed=seed, t_percent=t, offered_degree=degree, policy=policy, **_BASE
    )
    result = run_simulation(config)
    assert 0.0 <= result.loss_of_fidelity <= 100.0
    assert result.counters.deliveries == result.counters.messages
    assert result.counters.drops == 0
    assert set(result.per_repository_loss) == set(range(1, 9))
    # Every message was preceded by at least one check somewhere.
    assert result.counters.total_checks >= result.counters.messages


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_zero_delay_theorem_across_seeds(seed):
    """The 100%-fidelity guarantee holds for every random workload."""
    config = SimulationConfig(
        seed=seed,
        t_percent=80.0,
        offered_degree=3,
        policy="distributed",
        comm_target_ms=0.0,
        comp_delay_ms=0.0,
        **_BASE,
    )
    assert run_simulation(config).loss_of_fidelity == 0.0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    degree=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_exact_policies_agree_on_message_volume(seed, degree):
    """Figure 11(b) across random workloads: within 20% of each other."""
    base = SimulationConfig(
        seed=seed, t_percent=80.0, offered_degree=degree, **_BASE
    )
    dist = run_simulation(base.with_(policy="distributed"))
    central = run_simulation(base.with_(policy="centralized"))
    if dist.messages and central.messages:
        ratio = central.messages / dist.messages
        assert 0.75 < ratio < 1.35

"""Property-based tests of the paper's Section 5 fidelity theorems.

The paper sketches (via its technical report) that both exact
dissemination policies maintain every repository within its coherency
tolerance at all times, *given zero communication and computational
delays*.  We verify this with hypothesis over arbitrary update sequences
and arbitrary Eq.-(1)-consistent chains: the source value and every
node's held copy must never differ by more than the node's tolerance.

The Eq.-3-only policy provably lacks this property; the deterministic
counterexample lives in tests/core/test_missed_updates.py.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.dissemination.centralized import CentralizedPolicy
from repro.core.dissemination.distributed import DistributedPolicy

_TOL = 1e-9

# Price-like values and tolerance ladders shaped like the paper's mixes.
values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=60,
)
tolerances_strategy = st.lists(
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)


def run_distributed_chain(values: list[float], chain_cs: list[float]) -> list[list[float]]:
    """Drive a zero-delay chain source -> n0 -> n1 -> ...; return holdings."""
    policy = DistributedPolicy()
    initial = values[0]
    n = len(chain_cs)
    for i in range(n):
        parent = i - 1  # -1 encodes the source
        policy.register_edge(parent, i, 0, chain_cs[i], initial)
    held = [initial] * n
    history = [list(held)]
    for v in values[1:]:
        for i in range(n):
            parent_c = 0.0 if i == 0 else chain_cs[i - 1]
            if policy.decide(i - 1, i, 0, v, parent_c, None).forward:
                held[i] = v
            else:
                break  # downstream nodes cannot see a suppressed update
        history.append(list(held))
    return history


@given(values=values_strategy, cs=tolerances_strategy)
@settings(max_examples=200, deadline=None)
def test_distributed_chain_always_coherent(values, cs):
    chain_cs = sorted(cs)  # Eq. (1): stringency non-increasing downstream
    history = run_distributed_chain(values, chain_cs)
    for v, held in zip(values, history):
        for i, c in enumerate(chain_cs):
            assert abs(v - held[i]) <= c + _TOL, (
                f"node {i} (c={c}) holds {held[i]} while source is {v}"
            )


@given(values=values_strategy, cs=tolerances_strategy)
@settings(max_examples=200, deadline=None)
def test_centralized_chain_always_coherent(values, cs):
    chain_cs = sorted(cs)
    policy = CentralizedPolicy()
    initial = values[0]
    n = len(chain_cs)
    for i in range(n):
        policy.register_edge(i - 1, i, 0, chain_cs[i], initial)
    held = [initial] * n
    for v in values[1:]:
        decision = policy.at_source(0, v)
        if decision.disseminate:
            for i in range(n):
                parent_c = 0.0 if i == 0 else chain_cs[i - 1]
                if policy.decide(i - 1, i, 0, v, parent_c, decision.tag).forward:
                    held[i] = v
                else:
                    break
        for i, c in enumerate(chain_cs):
            assert abs(v - held[i]) <= c + _TOL


@given(values=values_strategy, cs=tolerances_strategy)
@settings(max_examples=100, deadline=None)
def test_centralized_tagging_invariants(values, cs):
    """Section 5.2's bookkeeping, as a property.

    After every source update: the returned tag (if any) is the largest
    violated unique tolerance; every tolerance <= tag has its last-sent
    refreshed to the new value; every tolerance > tag keeps its anchor.
    (Figure 11(b)'s equal-message claim is empirical on stock traces and
    is asserted on realistic workloads in the engine tests, not here --
    adversarial sequences can legitimately split the two policies.)
    """
    chain_cs = sorted(set(round(c, 9) for c in cs))
    policy = CentralizedPolicy()
    initial = values[0]
    for i, c in enumerate(chain_cs):
        policy.register_edge(i - 1, i, 0, c, initial)
    anchors = {c: initial for c in chain_cs}
    for v in values[1:]:
        decision = policy.at_source(0, v)
        violated = [c for c in chain_cs if abs(v - anchors[c]) > c]
        if not violated:
            assert not decision.disseminate
            continue
        assert decision.disseminate
        assert decision.tag == max(violated)
        assert decision.checks == len(chain_cs)
        for c in chain_cs:
            if c <= decision.tag:
                anchors[c] = v


@given(values=values_strategy, cs=tolerances_strategy)
@settings(max_examples=100, deadline=None)
def test_distributed_suppression_is_safe(values, cs):
    """Whenever the distributed policy suppresses, the slack really was
    large enough that the child could absorb any parent-invisible move."""
    chain_cs = sorted(cs)
    policy = DistributedPolicy()
    initial = values[0]
    policy.register_edge("p", "q", 0, chain_cs[-1], initial)
    last_sent = initial
    c_q = chain_cs[-1]
    c_p = chain_cs[0] if len(chain_cs) > 1 else 0.0
    for v in values[1:]:
        if policy.decide("p", "q", 0, v, c_p, None).forward:
            last_sent = v
        else:
            # Suppressed: Eq. (7) must NOT have fired.
            assert c_q - abs(v - last_sent) >= c_p - _TOL
            assert abs(v - last_sent) <= c_q + _TOL

"""Property-based tests for the adaptive re-optimization subsystem.

Three contracts, checked over drawn policies and traffic patterns:

- **cooldown**: two *applied* rewires are never closer than the
  policy's cooldown, whatever the drift pattern;
- **accounting**: every applied diff's added and removed edge sets are
  disjoint, and a full run charges ``resubscriptions`` equal to the sum
  of diff costs and ``reconfigurations`` equal to the applied rewires;
- **no drift, no rewires**: a controller fed per-window-constant
  traffic never triggers, and the kernels agree bit-for-bit on every
  drawn adaptive config, serial or fanned out.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.adaptive import AdaptiveController, AdaptivePolicy
from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import run_simulation
from repro.engine.sweep import run_sweep
from repro.workloads import FlashCrowdWorkload

#: Small grid so each drawn example simulates in tens of milliseconds.
BASE = SCALE_PRESETS["tiny"].with_(
    n_repositories=10, n_routers=30, n_items=2, trace_samples=200, seed=3913,
    workload=FlashCrowdWorkload(),
)

#: One read-only setup shared by the controller-level properties (the
#: controller never mutates its setup; rewires rebind its own graph).
SETUP = build_setup(BASE.with_(adaptive=AdaptivePolicy()))

_policies = st.builds(
    AdaptivePolicy,
    window=st.sampled_from([20.0, 40.0, 60.0]),
    threshold=st.sampled_from([0.25, 0.75, 1.5]),
    cooldown=st.sampled_from([0.0, 30.0, 90.0]),
    scope=st.sampled_from(["subtree", "global"]),
    max_rewires=st.sampled_from([0, 1, 3]),
)

#: Per-tick traffic multipliers: each tick scales every node's window
#: count, so consecutive equal multipliers are drift-free and jumps are
#: drift.  Values are integers to keep counts exact.
_multipliers = st.lists(
    st.integers(min_value=1, max_value=50), min_size=2, max_size=8
)


def _feed(controller: AdaptiveController, multipliers: list[int]):
    """Drive the controller with synthetic traffic; return rewire times."""
    nodes = sorted(SETUP.graph.nodes)
    window = controller.policy.window
    cumulative = {node: 0 for node in nodes}
    rewire_times = []
    for tick, multiplier in enumerate(multipliers, start=1):
        for rank, node in enumerate(nodes):
            cumulative[node] += multiplier * (1 + rank % 3)
        now = window * tick
        if controller.on_tick(now, dict(cumulative)) is not None:
            rewire_times.append(now)
    return rewire_times


@settings(max_examples=30, deadline=None)
@given(policy=_policies, multipliers=_multipliers)
def test_cooldown_spacing_is_never_violated(policy, multipliers):
    controller = AdaptiveController(SETUP, policy)
    rewire_times = _feed(controller, multipliers)
    assert controller.rewires == len(rewire_times)
    if policy.max_rewires:
        assert controller.rewires <= policy.max_rewires
    for earlier, later in zip(rewire_times, rewire_times[1:]):
        assert later - earlier >= policy.cooldown
    assert controller.triggered <= controller.ticks
    assert controller.rewires <= controller.triggered


@settings(max_examples=20, deadline=None)
@given(policy=_policies, constant=st.integers(min_value=1, max_value=100))
def test_drift_free_traffic_never_triggers(policy, constant):
    controller = AdaptiveController(SETUP, policy)
    rewire_times = _feed(controller, [constant] * 6)
    assert rewire_times == []
    assert controller.triggered == 0
    assert controller.graph is SETUP.graph


@settings(max_examples=15, deadline=None)
@given(policy=_policies, multipliers=_multipliers)
def test_applied_diffs_account_honestly(policy, multipliers):
    controller = AdaptiveController(SETUP, policy)
    nodes = sorted(SETUP.graph.nodes)
    window = policy.window
    cumulative = {node: 0 for node in nodes}
    total_cost = 0
    applied = 0
    for tick, multiplier in enumerate(multipliers, start=1):
        for rank, node in enumerate(nodes):
            cumulative[node] += multiplier * (1 + rank % 3)
        diff = controller.on_tick(window * tick, dict(cumulative))
        if diff is None:
            continue
        applied += 1
        assert diff.added.isdisjoint(diff.removed)
        assert diff.cost == len(diff.added | diff.removed)
        assert diff.cost > 0
        total_cost += diff.cost
    assert controller.rewires == applied
    if applied == 0:
        assert total_cost == 0


@settings(max_examples=8, deadline=None)
@given(
    window=st.sampled_from([25.0, 40.0]),
    threshold=st.sampled_from([0.5, 0.75]),
    max_rewires=st.sampled_from([1, 2]),
)
def test_full_run_charges_reconfiguration_cost(window, threshold, max_rewires):
    config = BASE.with_(
        adaptive=AdaptivePolicy(
            window=window, threshold=threshold, max_rewires=max_rewires
        )
    )
    result = run_simulation(config.with_(kernel="scalar"))
    counters = result.counters
    assert counters.reconfigurations == result.extras["adaptive_rewires"]
    assert counters.resubscriptions == (
        counters.edges_added + counters.edges_removed
    )
    if counters.reconfigurations:
        assert counters.resubscriptions > 0
    assert run_simulation(config.with_(kernel="vectorized")) == result


def test_adaptive_sweep_serial_equals_parallel():
    configs = [
        BASE.with_(
            adaptive=AdaptivePolicy(
                window=window, threshold=threshold, max_rewires=1
            )
        )
        for window in (25.0, 40.0)
        for threshold in (0.5, 0.75)
    ]
    serial = run_sweep(configs, jobs=1)
    assert run_sweep(configs, jobs=4) == serial
    assert any(r.extras["adaptive_rewires"] > 0 for r in serial)

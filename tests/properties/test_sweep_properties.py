"""Property-based tests of the parallel-sweep determinism guarantee.

For any hypothesis-chosen set of sweep points, the parallel path must be
*bit-identical* to the serial path -- same losses, same counters, same
per-pair extras -- independent of worker count and submission order.
Dataclass equality on :class:`SimulationResult` compares every nested
field with ``==`` on exact floats, so these assertions are bitwise.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.config import SimulationConfig
from repro.engine.sweep import run_sweep

_BASE = dict(
    n_repositories=6,
    n_routers=15,
    n_items=2,
    trace_samples=100,
)

_point = st.builds(
    lambda seed, degree, t, policy: SimulationConfig(
        seed=seed,
        offered_degree=degree,
        t_percent=t,
        policy=policy,
        **_BASE,
    ),
    seed=st.integers(min_value=0, max_value=2**10),
    degree=st.integers(min_value=1, max_value=6),
    t=st.sampled_from([0.0, 50.0, 100.0]),
    policy=st.sampled_from(["distributed", "centralized"]),
)


@given(configs=st.lists(_point, min_size=1, max_size=5), jobs=st.sampled_from([2, 4]))
@settings(max_examples=8, deadline=None)
def test_parallel_sweep_is_bit_identical_to_serial(configs, jobs):
    serial = run_sweep(configs, jobs=1)
    parallel = run_sweep(configs, jobs=jobs)
    assert parallel == serial


@given(
    configs=st.lists(_point, min_size=2, max_size=5, unique=True),
    order=st.randoms(use_true_random=False),
)
@settings(max_examples=8, deadline=None)
def test_sweep_results_independent_of_submission_order(configs, order):
    """Shuffling the points reorders the output list but never changes
    any individual config's result."""
    baseline = dict(zip(configs, run_sweep(configs, jobs=2)))
    shuffled = list(configs)
    order.shuffle(shuffled)
    reshuffled = dict(zip(shuffled, run_sweep(shuffled, jobs=2)))
    assert reshuffled == baseline

"""Property tests: sim policies and the live filters agree everywhere.

The live repository network and the simulation policies share the pure
decision code in :mod:`repro.core.dissemination.filtering`; these
properties pin the contract the ``live_crosscheck`` experiment rests
on -- for *every* (update, edge) pair, a
:class:`~repro.core.dissemination.base.DisseminationPolicy` and the
equivalent per-edge :class:`~repro.core.dissemination.filtering.
EdgeFilter` (plus :class:`~repro.core.dissemination.filtering.
SourceTagger` at the source) make identical decisions over identical
update sequences.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.dissemination import make_policy
from repro.core.dissemination.filtering import (
    FILTERED_POLICIES,
    EdgeFilter,
    SourceTagger,
)

_value = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
_tolerance = st.floats(
    min_value=0.01, max_value=5.0, allow_nan=False, allow_infinity=False
)

#: (c_serve of each edge, parent receive coherency, update values).
_edge_case = st.tuples(
    st.lists(_tolerance, min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.lists(_value, min_size=1, max_size=30),
)


@st.composite
def _scenarios(draw):
    policy = draw(st.sampled_from(FILTERED_POLICIES))
    c_serves, parent_receive_c, values = draw(_edge_case)
    initial = draw(_value)
    return policy, c_serves, parent_receive_c, values, initial


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_policy_and_edge_filters_agree_on_every_decision(scenario):
    policy_name, c_serves, parent_receive_c, values, initial = scenario
    policy = make_policy(policy_name)
    parent, item_id = 0, 0
    filters: list[EdgeFilter] = []
    tagger = SourceTagger() if policy_name == "centralized" else None
    for child, c_serve in enumerate(c_serves, start=1):
        policy.register_edge(parent, child, item_id, c_serve, initial)
        filters.append(EdgeFilter(policy_name, c_serve, initial))
        if tagger is not None:
            tagger.add_tolerance(item_id, c_serve, initial)

    for value in values:
        decision = policy.at_source(item_id, value)
        if tagger is not None:
            live_decision = tagger.examine(item_id, value)
            assert live_decision == decision
        else:
            assert decision.disseminate and decision.tag is None
        if not decision.disseminate:
            continue
        for child, filt in enumerate(filters, start=1):
            sim_forward = policy.decide(
                parent, child, item_id, value, parent_receive_c, decision.tag
            ).forward
            live_forward = filt.decide(value, parent_receive_c, decision.tag)
            assert sim_forward == live_forward


@given(
    st.lists(_value, min_size=1, max_size=40),
    _tolerance,
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    _value,
)
@settings(max_examples=200, deadline=None)
def test_distributed_filter_matches_policy_per_edge_state(
    values, c_serve, parent_receive_c, initial
):
    """The stateful walk matters: last_sent only moves on a forward."""
    policy = make_policy("distributed")
    policy.register_edge(0, 1, 0, c_serve, initial)
    filt = EdgeFilter("distributed", c_serve, initial)
    for value in values:
        assert (
            policy.decide(0, 1, 0, value, parent_receive_c, None).forward
            == filt.decide(value, parent_receive_c)
        )

"""Property tests: sim policies and the live filters agree everywhere.

The live repository network and the simulation policies share the pure
decision code in :mod:`repro.core.dissemination.filtering`; these
properties pin the contract the ``live_crosscheck`` experiment rests
on -- for *every* (update, edge) pair, a
:class:`~repro.core.dissemination.base.DisseminationPolicy` and the
equivalent per-edge :class:`~repro.core.dissemination.filtering.
EdgeFilter` (plus :class:`~repro.core.dissemination.filtering.
SourceTagger` at the source) make identical decisions over identical
update sequences.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.dissemination import make_policy
from repro.core.dissemination.filtering import (
    FILTERED_POLICIES,
    EdgeFilter,
    SourceTagger,
)

_value = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
_tolerance = st.floats(
    min_value=0.01, max_value=5.0, allow_nan=False, allow_infinity=False
)

#: (c_serve of each edge, parent receive coherency, update values).
_edge_case = st.tuples(
    st.lists(_tolerance, min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.lists(_value, min_size=1, max_size=30),
)


@st.composite
def _scenarios(draw):
    policy = draw(st.sampled_from(FILTERED_POLICIES))
    c_serves, parent_receive_c, values = draw(_edge_case)
    initial = draw(_value)
    return policy, c_serves, parent_receive_c, values, initial


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_policy_and_edge_filters_agree_on_every_decision(scenario):
    policy_name, c_serves, parent_receive_c, values, initial = scenario
    policy = make_policy(policy_name)
    parent, item_id = 0, 0
    filters: list[EdgeFilter] = []
    tagger = SourceTagger() if policy_name == "centralized" else None
    for child, c_serve in enumerate(c_serves, start=1):
        policy.register_edge(parent, child, item_id, c_serve, initial)
        filters.append(EdgeFilter(policy_name, c_serve, initial))
        if tagger is not None:
            tagger.add_tolerance(item_id, c_serve, initial)

    for value in values:
        decision = policy.at_source(item_id, value)
        if tagger is not None:
            live_decision = tagger.examine(item_id, value)
            assert live_decision == decision
        else:
            assert decision.disseminate and decision.tag is None
        if not decision.disseminate:
            continue
        for child, filt in enumerate(filters, start=1):
            sim_forward = policy.decide(
                parent, child, item_id, value, parent_receive_c, decision.tag
            ).forward
            live_forward = filt.decide(value, parent_receive_c, decision.tag)
            assert sim_forward == live_forward


@given(
    st.lists(_value, min_size=1, max_size=40),
    _tolerance,
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    _value,
)
@settings(max_examples=200, deadline=None)
def test_distributed_filter_matches_policy_per_edge_state(
    values, c_serve, parent_receive_c, initial
):
    """The stateful walk matters: last_sent only moves on a forward."""
    policy = make_policy("distributed")
    policy.register_edge(0, 1, 0, c_serve, initial)
    filt = EdgeFilter("distributed", c_serve, initial)
    for value in values:
        assert (
            policy.decide(0, 1, 0, value, parent_receive_c, None).forward
            == filt.decide(value, parent_receive_c)
        )


# ---------------------------------------------------------------------------
# Quantisation safety and scalar/vectorized agreement.
# ---------------------------------------------------------------------------

import numpy as np

from repro.core.dissemination.filtering import (
    MIN_TOLERANCE,
    ArraySourceTagger,
    forward_centralized,
    forward_centralized_many,
    forward_distributed,
    forward_distributed_many,
    forward_eq3_only,
    forward_eq3_only_many,
    forward_flooding,
    forward_flooding_many,
    quantise_tolerance,
    validate_tolerance,
)
from repro.errors import ConfigurationError

_valid_tolerance = st.floats(
    min_value=MIN_TOLERANCE,
    max_value=1e12,
    allow_nan=False,
    allow_infinity=False,
)


@given(_valid_tolerance)
@settings(max_examples=500, deadline=None)
def test_quantisation_never_collapses_a_valid_tolerance_to_zero(c):
    """The satellite-1 contract: any tolerance that passes validation
    survives quantisation as a strictly positive value."""
    validate_tolerance(c)
    assert quantise_tolerance(c) > 0.0


@given(
    st.floats(min_value=0.0, allow_nan=False, allow_infinity=False,
              max_value=MIN_TOLERANCE).filter(lambda c: c < MIN_TOLERANCE)
)
@settings(max_examples=200, deadline=None)
def test_sub_quantum_tolerances_are_rejected_not_collapsed(c):
    with pytest.raises(ConfigurationError, match="quantisation quantum"):
        validate_tolerance(c)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_tolerances_are_rejected(bad):
    with pytest.raises(ConfigurationError, match="finite"):
        validate_tolerance(bad)


_batch = st.tuples(
    _value,                                        # fresh update value
    st.lists(_value, min_size=1, max_size=8),      # per-edge last state
    st.lists(_tolerance, min_size=1, max_size=8),  # per-edge tolerances
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)


@given(_batch)
@settings(max_examples=300, deadline=None)
def test_vectorized_forward_tests_match_scalar_elementwise(case):
    value, lasts, cs, prc = case
    n = min(len(lasts), len(cs))
    lasts, cs = lasts[:n], cs[:n]
    last_arr = np.asarray(lasts, dtype=np.float64)
    cs_arr = np.asarray(cs, dtype=np.float64)

    dist = forward_distributed_many(value, last_arr, cs_arr, prc)
    eq3 = forward_eq3_only_many(value, last_arr, cs_arr)
    flood = forward_flooding_many(value, last_arr)
    qcs = np.asarray([quantise_tolerance(c) for c in cs])
    cent = forward_centralized_many(qcs, tag=quantise_tolerance(cs[0]))

    for i in range(n):
        assert dist[i] == forward_distributed(value, lasts[i], cs[i], prc)
        assert eq3[i] == forward_eq3_only(value, lasts[i], cs[i])
        assert flood[i] == forward_flooding(value, lasts[i])
        assert cent[i] == forward_centralized(
            quantise_tolerance(cs[i]), quantise_tolerance(cs[0])
        )


@given(
    st.lists(_tolerance, min_size=1, max_size=6, unique=True),
    st.lists(_value, min_size=1, max_size=40),
    _value,
)
@settings(max_examples=200, deadline=None)
def test_array_source_tagger_matches_scalar_tagger(cs, values, initial):
    scalar = SourceTagger()
    for c in cs:
        scalar.add_tolerance(0, c, initial)
    unique = scalar.unique_tolerances(0)
    array = ArraySourceTagger()
    array.add_item(0, unique, initial)
    for value in values:
        assert array.examine(0, value) == scalar.examine(0, value)

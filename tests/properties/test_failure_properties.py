"""Property-based tests for failure-schedule execution.

One contract above all: **wire conservation**.  Whatever valid
:class:`~repro.engine.failures.FailureSchedule` is injected -- any mix
of crash/recover pairs, open crash windows, link partitions, targets
that are or are not real service edges -- every message the economy
charges is either delivered or counted as a drop, the score stays a
percentage, and the scalar and vectorized kernels agree bit-for-bit.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import FailureEvent, FailureSchedule
from repro.engine.simulation import run_simulation

#: Small grid so each drawn example simulates in tens of milliseconds.
BASE = SCALE_PRESETS["tiny"].with_(
    n_repositories=8, n_routers=24, n_items=2, trace_samples=120
)

_SPAN = float(BASE.trace_samples - 1)

_times = st.floats(
    min_value=0.0, max_value=_SPAN, allow_nan=False, allow_infinity=False
)


@st.composite
def _schedules(draw):
    events: list[FailureEvent] = []
    # Crash windows: per sampled repository, one open or closed window.
    repos = draw(st.lists(
        st.integers(min_value=1, max_value=BASE.n_repositories),
        unique=True, max_size=3,
    ))
    for repo in repos:
        times = sorted(draw(st.lists(_times, min_size=1, max_size=2, unique=True)))
        events.append(FailureEvent.crash(times[0], repo))
        if len(times) == 2:
            events.append(FailureEvent.recover(times[1], repo))
    # Partition windows: directed pairs, not necessarily real edges --
    # the kernels must tolerate partitions of links nobody uses.
    links = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=BASE.n_repositories),
            st.integers(min_value=0, max_value=BASE.n_repositories),
        ).filter(lambda link: link[0] != link[1]),
        unique=True, max_size=2,
    ))
    for link in links:
        times = sorted(draw(st.lists(_times, min_size=1, max_size=2, unique=True)))
        events.append(FailureEvent.link_down(times[0], *link))
        if len(times) == 2:
            events.append(FailureEvent.link_up(times[1], *link))
    return FailureSchedule(tuple(events))


@settings(max_examples=12, deadline=None)
@given(schedule=_schedules(), loss=st.sampled_from([0.0, 0.05]))
def test_conservation_and_kernel_identity_under_any_schedule(schedule, loss):
    config = BASE.with_(
        failures=schedule, message_loss_probability=loss
    )
    scalar = run_simulation(config.with_(kernel="scalar"))
    counters = scalar.counters
    assert counters.deliveries + counters.drops == counters.messages
    assert counters.resync_messages <= counters.resync_checks
    assert 0.0 <= scalar.loss_of_fidelity <= 100.0
    assert run_simulation(config.with_(kernel="vectorized")) == scalar

"""Wire conservation under every reconfiguration source.

The repo now has three distinct ways to change the dissemination tree
mid-run -- planned churn, unplanned failures, and drift-triggered
adaptive rewiring.  Each reaches the kernels through its own front end,
but all three ultimately retarget live edges while updates are in
flight, which is exactly where a charging bug would hide.  This module
pins the shared invariant once, parametrized over the source:

- ``deliveries + drops == messages`` (nothing double-charged, nothing
  silently freed);
- the fidelity score stays a percentage;
- the run really did reconfigure (the parametrization is not vacuous);
- scalar and vectorized kernels agree bit-for-bit wherever both
  support the source (churn remains scalar-only).
"""

from __future__ import annotations

import pytest

from repro.engine.adaptive import AdaptivePolicy
from repro.engine.churn import synthetic_schedule
from repro.engine.config import SCALE_PRESETS
from repro.engine.failures import FailureEvent, FailureSchedule
from repro.engine.simulation import run_simulation
from repro.workloads import FlashCrowdWorkload

BASE = SCALE_PRESETS["tiny"].with_(
    n_repositories=8, n_routers=24, n_items=2, trace_samples=120, seed=3913
)

_SPAN = float(BASE.trace_samples - 1)


def _churn_config():
    schedule = synthetic_schedule(
        repositories=range(1, BASE.n_repositories + 1),
        n_items=BASE.n_items,
        span_s=_SPAN,
        joins=1,
        departs=2,
        updates=1,
        seed=7,
    )
    return BASE.with_(churn=schedule)


def _failures_config():
    schedule = FailureSchedule(
        (
            FailureEvent.crash(30.0, 3),
            FailureEvent.recover(70.0, 3),
            FailureEvent.crash(55.0, 5),
        )
    )
    return BASE.with_(failures=schedule)


def _adaptive_config():
    return BASE.with_(
        workload=FlashCrowdWorkload(),
        adaptive=AdaptivePolicy(window=20.0, threshold=0.5, max_rewires=2),
    )


SOURCES = {
    "churn": (_churn_config, False),
    "failures": (_failures_config, True),
    "adaptive": (_adaptive_config, True),
}


def _assert_reconfigured(source: str, result) -> None:
    assert result.counters.reconfigurations > 0
    if source == "adaptive":
        assert result.extras["adaptive_rewires"] > 0
    elif source == "failures":
        assert result.extras["failure_events"] > 0


@pytest.mark.parametrize("loss", [0.0, 0.05])
@pytest.mark.parametrize("source", sorted(SOURCES))
def test_deliveries_plus_drops_equal_messages(source, loss):
    make_config, vectorizable = SOURCES[source]
    config = make_config().with_(message_loss_probability=loss)
    scalar = run_simulation(config.with_(kernel="scalar"))
    counters = scalar.counters
    assert counters.deliveries + counters.drops == counters.messages
    if loss == 0.0:
        assert counters.drops == 0 or source == "failures"
    assert 0.0 <= scalar.loss_of_fidelity <= 100.0
    _assert_reconfigured(source, scalar)
    if vectorizable:
        assert run_simulation(config.with_(kernel="vectorized")) == scalar

"""Property-based tests for DynamicMembership / ReconfigurationDiff.

The churn subsystem leans on three contracts of the dynamics layer:

- the diff of two identical graphs is empty (no-op churn is free),
- ``diff.cost == len(added) + len(removed)`` (the reconfiguration-cost
  accounting the engine charges into the counters), and
- rebuild-in-join-order is deterministic: the same seed and the same
  operation sequence always produce the same edge set, whatever the
  seed's value.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.dynamics import DynamicMembership, ReconfigurationDiff
from repro.core.dynamics import _edges_of  # the canonical edge view
from repro.core.interests import InterestProfile


def flat_delay(u, v):
    return 0.0 if u == v else 10.0


_tolerance = st.floats(
    min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False
)

_requirements = st.dictionaries(
    keys=st.integers(min_value=0, max_value=4),
    values=_tolerance,
    min_size=1,
    max_size=4,
)

_profiles = st.lists(_requirements, min_size=1, max_size=6).map(
    lambda reqs: [
        InterestProfile(repository=i + 1, requirements=r)
        for i, r in enumerate(reqs)
    ]
)

_seed = st.integers(min_value=0, max_value=2**16)


def _build(profiles, seed, degree=3):
    membership = DynamicMembership(
        source=0, comm_delay_ms=flat_delay, offered_degree=degree, seed=seed
    )
    diffs = [membership.join(p) for p in profiles]
    return membership, diffs


@given(profiles=_profiles, seed=_seed)
@settings(max_examples=30, deadline=None)
def test_noop_update_diff_is_empty(profiles, seed):
    """Reapplying a member's unchanged profile diffs to nothing."""
    membership, _ = _build(profiles, seed)
    for profile in profiles:
        diff = membership.update_requirements(
            InterestProfile(
                repository=profile.repository,
                requirements=dict(profile.requirements),
            )
        )
        assert diff.unchanged_is_cheap
        assert diff.added == frozenset() and diff.removed == frozenset()


@given(profiles=_profiles, seed=_seed, new_c=_tolerance)
@settings(max_examples=30, deadline=None)
def test_cost_is_added_plus_removed(profiles, seed, new_c):
    """Every diff produced by join/leave/update satisfies the cost law."""
    membership, join_diffs = _build(profiles, seed)
    diffs: list[ReconfigurationDiff] = list(join_diffs)
    first = profiles[0].repository
    diffs.append(
        membership.update_requirements(
            InterestProfile(repository=first, requirements={0: new_c})
        )
    )
    if len(profiles) > 1:
        diffs.append(membership.leave(profiles[-1].repository))
    for diff in diffs:
        assert diff.cost == len(diff.added) + len(diff.removed)
        assert not (diff.added & diff.removed)


@given(profiles=_profiles, seed=_seed)
@settings(max_examples=30, deadline=None)
def test_rebuild_in_join_order_is_deterministic_across_seeds(profiles, seed):
    """Same seed + same operations => bit-identical graphs, for any seed.

    Exercised through a leave (the rebuild path): two independent
    memberships replaying the same sequence must agree edge for edge.
    """
    a, _ = _build(profiles, seed)
    b, _ = _build(profiles, seed)
    assert _edges_of(a.graph) == _edges_of(b.graph)
    if len(profiles) > 1:
        victim = profiles[len(profiles) // 2].repository
        diff_a = a.leave(victim)
        diff_b = b.leave(victim)
        assert diff_a == diff_b
        assert _edges_of(a.graph) == _edges_of(b.graph)
        a.graph.validate()


@given(profiles=_profiles, seed=_seed)
@settings(max_examples=20, deadline=None)
def test_leave_then_rebuild_matches_fresh_membership(profiles, seed):
    """After a departure, the rebuilt graph equals a fresh membership of
    the survivors joined in the original join order (the paper's
    "the algorithm is reapplied")."""
    if len(profiles) < 2:
        return
    membership, _ = _build(profiles, seed)
    victim = profiles[0].repository
    membership.leave(victim)

    fresh = DynamicMembership(
        source=0, comm_delay_ms=flat_delay, offered_degree=3, seed=seed
    )
    # The rebuild uses one RNG stream seeded by `seed` over the original
    # join order; replay the same insertions through the internal
    # rebuild path to compare like with like.
    for profile in profiles[1:]:
        fresh._profiles[profile.repository] = profile
        fresh._join_order.append(profile.repository)
    fresh.graph = fresh._rebuild()
    assert _edges_of(membership.graph) == _edges_of(fresh.graph)

"""Property-based tests of the substrate invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.fidelity import violation_time
from repro.sim.events import EventQueue
from repro.sim.queueing import FifoStation


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=200, deadline=None)
def test_event_queue_pops_sorted_and_stable(times):
    q = EventQueue()
    for i, t in enumerate(times):
        q.push(t, lambda: None, i)
    popped = [q.pop() for _ in range(len(times))]
    # Sorted by time...
    assert all(a.time <= b.time for a, b in zip(popped, popped[1:]))
    # ...and stable within equal times.
    for a, b in zip(popped, popped[1:]):
        if a.time == b.time:
            assert a.seq < b.seq


@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=200, deadline=None)
def test_fifo_station_completions_monotone(jobs):
    # Arrivals must be non-decreasing (as the kernel guarantees).
    jobs = sorted(jobs, key=lambda j: j[0])
    station = FifoStation()
    completions = []
    for arrival, service in jobs:
        done = station.submit(arrival, service)
        assert done >= arrival + service  # never finish early
        completions.append(done)
    assert completions == sorted(completions)
    assert station.busy_time <= completions[-1]


@given(
    src=st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    recv=st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    c=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_violation_time_bounded_by_window(src, recv, c):
    window = 100.0
    src_t = np.linspace(0.0, 90.0, len(src))
    recv_t = np.linspace(0.0, 90.0, len(recv))
    violated = violation_time(
        src_t, np.array(src), recv_t, np.array(recv), c, 0.0, window
    )
    assert 0.0 <= violated <= window


@given(
    src=st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    c=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_violation_time_zero_when_receiving_own_source(src, c):
    src_t = np.linspace(0.0, 90.0, len(src))
    src_v = np.array(src)
    assert violation_time(src_t, src_v, src_t, src_v, c, 0.0, 100.0) == 0.0


@given(
    c_small=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    scale=st.floats(min_value=1.1, max_value=10.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_violation_time_monotone_in_tolerance(c_small, scale):
    # A laxer tolerance can only shrink the violated time.
    src_t = np.array([0.0, 10.0, 20.0, 30.0])
    src_v = np.array([0.0, 1.0, -1.0, 2.0])
    recv_t = np.array([0.0])
    recv_v = np.array([0.0])
    tight = violation_time(src_t, src_v, recv_t, recv_v, c_small, 0.0, 40.0)
    lax = violation_time(src_t, src_v, recv_t, recv_v, c_small * scale, 0.0, 40.0)
    assert lax <= tight

"""Client load generation against the live network."""

import pytest

from repro.core.clients import derive_repository_profiles
from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.live.loadgen import generate_clients, run_loadgen

pytestmark = pytest.mark.live

CONFIG = SimulationConfig(
    n_repositories=8, n_routers=24, n_items=3, trace_samples=200
)


def test_generate_clients_is_seeded_and_round_robins():
    population = generate_clients(CONFIG, 16)
    again = generate_clients(CONFIG, 16)
    assert [c.requirements for c in population.clients] == [
        c.requirements for c in again.clients
    ]
    other_seed = generate_clients(CONFIG, 16, seed=999)
    assert [c.requirements for c in population.clients] != [
        c.requirements for c in other_seed.clients
    ]
    # Round-robin attachment: 16 clients over 8 repositories = 2 each.
    per_repo = {
        repo: len(population.at_repository(repo))
        for repo in population.repositories()
    }
    assert set(per_repo.values()) == {2}


def test_generated_clients_fold_into_valid_profiles():
    population = generate_clients(CONFIG, 12)
    profiles = derive_repository_profiles(population)
    for repo, profile in profiles.items():
        for item_id, c in profile.requirements.items():
            candidates = [
                client.requirements[item_id]
                for client in population.at_repository(repo)
                if item_id in client.requirements
            ]
            assert c == min(candidates)


def test_loadgen_reports_every_requirement():
    report = run_loadgen(CONFIG, 10, duration=60.0)
    assert len(report.clients) == 10
    assert report.n_requirements == sum(
        len(c.requirements) for c in report.clients
    )
    assert 0 <= report.n_met <= report.n_requirements
    assert 0.0 <= report.met_fraction <= 1.0
    for client in report.clients:
        # Observed loss measured for every requirement, met or not.
        assert set(client.observed_loss) == set(client.requirements)
        assert set(client.met) == set(client.requirements)
        for item_id, met in client.met.items():
            served = client.served_c.get(item_id)
            assert met == (served is not None and served <= client.requirements[item_id])


def test_loadgen_met_requirements_track_served_coherency():
    report = run_loadgen(CONFIG, 24, duration=60.0)
    # The mix draws tolerances independently of the negotiated service,
    # so a 24-client population at T=80% stringent reliably produces
    # both met and unmet requirements.
    assert 0 < report.n_met < report.n_requirements


def test_loadgen_counts_client_traffic_separately():
    crowded = run_loadgen(CONFIG, 20, duration=60.0)
    # Client traffic is accounted in extras, not in the repository-plane
    # counters, and the wire-level total conserves both planes.
    client_messages = crowded.result.extras["client_messages"]
    assert client_messages > 0
    assert crowded.result.sent == (
        crowded.result.counters.messages + client_messages
    )
    assert crowded.result.conserved


def test_loadgen_runs_through_a_failover():
    """Clients ride out their repository's crash window: the run stays
    conserved and deterministic, every requirement is still scored, and
    the degraded window shows up as real observed loss, not an error."""
    from repro.engine.failures import failures_for_config

    base = CONFIG.with_(message_loss_probability=0.01)
    config = base.with_(
        failures=failures_for_config(base, crashes=2, partitions=1)
    )
    report = run_loadgen(config, 16, duration=120.0)
    assert report.result.conserved
    assert report.result.dropped > 0
    assert report.result.extras["crashes"] == 2
    assert report.result.counters.edges_added > 0  # failover re-homed
    assert len(report.clients) == 16
    for client in report.clients:
        assert set(client.observed_loss) == set(client.requirements)
        for loss in client.observed_loss.values():
            assert 0.0 <= loss <= 100.0
    again = run_loadgen(config, 16, duration=120.0)
    assert [c.observed_loss for c in again.clients] == [
        c.observed_loss for c in report.clients
    ]


def test_loadgen_rejects_empty_population():
    with pytest.raises(ConfigurationError):
        run_loadgen(CONFIG, 0)

"""Framing and codec tests for the live wire protocol."""

import asyncio
import struct

import pytest

from repro.live.protocol import (
    MAX_FRAME_BYTES,
    Bye,
    ProtocolError,
    Update,
    decode_payload,
    encode_message,
    read_message,
)

pytestmark = pytest.mark.live


def test_update_round_trips_exactly():
    message = Update(item_id=3, value=101.37500000000001, tag=0.05, seq=42, src=7)
    frame = encode_message(message)
    assert decode_payload(frame[4:]) == message


def test_bye_round_trips():
    frame = encode_message(Bye(src=0))
    assert decode_payload(frame[4:]) == Bye(src=0)


def test_none_tag_survives_the_wire():
    frame = encode_message(Update(item_id=0, value=1.0, tag=None, seq=1, src=0))
    assert decode_payload(frame[4:]).tag is None


def test_length_prefix_matches_body():
    frame = encode_message(Update(item_id=0, value=1.0, tag=None, seq=1, src=0))
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_payload(b"\xff\x00 not json")
    with pytest.raises(ProtocolError):
        decode_payload(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        decode_payload(b'{"type": "warp"}')
    with pytest.raises(ProtocolError):
        decode_payload(b'{"type": "update", "unexpected": 1}')


def _feed(chunks):
    """A StreamReader pre-loaded with byte chunks and EOF."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


def test_read_message_reassembles_split_frames():
    message = Update(item_id=1, value=2.5, tag=0.1, seq=9, src=3)
    frame = encode_message(message)

    async def scenario():
        # Split mid-prefix and mid-body: the reader must reassemble.
        reader = _feed([frame[:2], frame[2:7], frame[7:]])
        return await read_message(reader)

    assert asyncio.run(scenario()) == message


def test_read_message_clean_eof_returns_none():
    async def scenario():
        return await read_message(_feed([]))

    assert asyncio.run(scenario()) is None


def test_read_message_truncated_frame_raises():
    frame = encode_message(Bye(src=0))

    async def truncated_body():
        await read_message(_feed([frame[:-2]]))

    async def truncated_prefix():
        await read_message(_feed([frame[:3]]))

    with pytest.raises(ProtocolError):
        asyncio.run(truncated_body())
    with pytest.raises(ProtocolError):
        asyncio.run(truncated_prefix())


def test_read_message_rejects_oversized_length():
    async def scenario():
        await read_message(_feed([struct.pack(">I", MAX_FRAME_BYTES + 1)]))

    with pytest.raises(ProtocolError):
        asyncio.run(scenario())

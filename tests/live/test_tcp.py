"""Localhost TCP smoke: real sockets, real frames, conserved messages."""

import socket

import pytest

from repro.engine.config import SimulationConfig
from repro.live.harness import run_live
from repro.live.transport import TcpTransport, make_transport
from repro.errors import ConfigurationError

pytestmark = pytest.mark.live

#: Deliberately small: the TCP smoke checks plumbing, not statistics.
CONFIG = SimulationConfig(
    n_repositories=5, n_routers=15, n_items=2, trace_samples=80
)


@pytest.fixture(scope="module", autouse=True)
def _require_localhost_sockets():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind localhost sockets here: {exc}")


def test_tcp_smoke_runs_and_conserves():
    result = run_live(CONFIG, "tcp", duration=40.0, time_scale=800.0)
    assert result.transport == "tcp"
    assert result.sent > 0
    assert result.conserved
    # A healthy smoke delivers everything inside the quiescence window.
    assert result.dropped == 0
    assert result.delivered == result.sent


def test_tcp_observes_fidelity_from_real_deliveries():
    result = run_live(CONFIG, "tcp", duration=40.0, time_scale=800.0)
    # Every repository scored; observed loss is a valid percentage.
    assert len(result.per_repository_loss) == CONFIG.n_repositories
    assert 0.0 <= result.loss_of_fidelity <= 100.0


def test_tcp_transport_validates_parameters():
    with pytest.raises(ConfigurationError):
        TcpTransport(time_scale=0.0)
    with pytest.raises(ConfigurationError):
        TcpTransport(quiesce_timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        make_transport("udp")

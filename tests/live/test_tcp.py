"""Localhost TCP smoke: real sockets, real frames, conserved messages."""

import asyncio
import socket

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.failures import failures_for_config
from repro.engine.simulation import run_simulation
from repro.live.harness import run_live
from repro.live.transport import TcpTransport, make_transport
from repro.errors import ConfigurationError

pytestmark = pytest.mark.live

#: Deliberately small: the TCP smoke checks plumbing, not statistics.
CONFIG = SimulationConfig(
    n_repositories=5, n_routers=15, n_items=2, trace_samples=80
)


@pytest.fixture(scope="module", autouse=True)
def _require_localhost_sockets():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind localhost sockets here: {exc}")


def test_tcp_smoke_runs_and_conserves():
    result = run_live(CONFIG, "tcp", duration=40.0, time_scale=800.0)
    assert result.transport == "tcp"
    assert result.sent > 0
    assert result.conserved
    # A healthy smoke delivers everything inside the quiescence window.
    assert result.dropped == 0
    assert result.delivered == result.sent


def test_tcp_observes_fidelity_from_real_deliveries():
    result = run_live(CONFIG, "tcp", duration=40.0, time_scale=800.0)
    # Every repository scored; observed loss is a valid percentage.
    assert len(result.per_repository_loss) == CONFIG.n_repositories
    assert 0.0 <= result.loss_of_fidelity <= 100.0


def test_tcp_quiescence_survives_timeout(monkeypatch):
    """A timed-out quiescence wait must end the run, not crash it.

    ``asyncio.wait_for`` raises ``asyncio.TimeoutError`` on 3.10 and the
    builtin ``TimeoutError`` on 3.11+; the transport catches both.  Here
    the quiescence wait is forced to time out with the 3.10-flavoured
    exception and the run must still finish with exact reconciliation
    (whatever was abandoned in flight becomes a counted drop).
    """
    sentinel = 7.5  # far above any sender-loop delay at time_scale=800
    real_wait_for = asyncio.wait_for

    async def impatient_wait_for(awaitable, timeout=None):
        if timeout is not None and timeout >= sentinel:
            if asyncio.iscoroutine(awaitable):
                awaitable.close()
            raise asyncio.TimeoutError()
        return await real_wait_for(awaitable, timeout=timeout)

    monkeypatch.setattr(asyncio, "wait_for", impatient_wait_for)
    result = run_live(
        CONFIG,
        "tcp",
        duration=40.0,
        time_scale=800.0,
        quiesce_timeout_s=sentinel,
    )
    assert result.transport == "tcp"
    assert result.conserved
    assert result.sent == result.delivered + result.dropped
    assert 0.0 <= result.loss_of_fidelity <= 100.0


def test_tcp_slow_time_scale_stretches_budgets_and_conserves():
    """Satellite pin: wall budgets scale by ``1/time_scale`` (capped).

    At a slow pace, in-flight wall times stretch; the fixed 2 s drain
    and 30 s quiescence budgets of the 60x default would truncate a
    healthy run into phantom drops.  The scaled budgets keep a slow run
    loss-free and conserved.
    """
    assert TcpTransport(time_scale=60.0)._wall_factor == 1.0
    assert TcpTransport(time_scale=20.0)._wall_factor == pytest.approx(3.0)
    assert TcpTransport(time_scale=1.0)._wall_factor == 20.0  # capped
    assert TcpTransport(time_scale=800.0)._wall_factor == 1.0

    result = run_live(CONFIG, "tcp", duration=20.0, time_scale=20.0)
    assert result.conserved
    assert result.dropped == 0
    assert result.delivered == result.sent


def test_tcp_failure_smoke_conserves_under_crashes_and_loss():
    """Crashes, a partition and seeded loss over real sockets.

    Conservation stays *exact* (the drop economy is judged at logical
    arrival times) while the message volume only tracks the simulator
    within a tolerance: over TCP the failover rewiring lands at wall
    time, so which edges exist when a frame is generated has wall-clock
    wiggle at an aggressive time scale.  The tight cross-plane bounds
    live in ``live_crosscheck`` at a gentle time scale.
    """
    base = CONFIG.with_(message_loss_probability=0.01)
    config = base.with_(
        failures=failures_for_config(base, crashes=1, partitions=1)
    )
    sim = run_simulation(config)
    result = run_live(
        config, "tcp", time_scale=800.0, heartbeat_interval_s=0.01
    )
    assert result.conserved
    assert result.sent == result.delivered + result.dropped
    assert result.dropped > 0
    assert abs(result.sent - sim.counters.messages) <= max(
        4, sim.counters.messages // 10
    )
    assert result.extras["crashes"] == 1
    assert result.extras["partitions"] == 1
    assert result.extras["heartbeats"] > 0
    assert result.extras["reconnects"] >= 0


def test_tcp_transport_validates_parameters():
    with pytest.raises(ConfigurationError):
        TcpTransport(time_scale=0.0)
    with pytest.raises(ConfigurationError):
        TcpTransport(quiesce_timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        TcpTransport(drain_timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        TcpTransport(wall_stretch_cap=0.5)
    with pytest.raises(ConfigurationError):
        make_transport("udp")


def test_tcp_wall_budgets_are_configurable():
    """Satellite pin: the drain/quiesce wall budgets are knobs now.

    The stretch cap used to be hard-coded at 20; a raised or lowered cap
    must reshape ``_wall_factor``, and the per-connection drain budget
    must thread through ``run_live`` untouched.
    """
    assert TcpTransport(time_scale=1.0, wall_stretch_cap=5.0)._wall_factor == 5.0
    assert TcpTransport(time_scale=1.0, wall_stretch_cap=90.0)._wall_factor == 60.0
    assert TcpTransport(drain_timeout_s=7.5).drain_timeout_s == 7.5

    result = run_live(
        CONFIG,
        "tcp",
        duration=20.0,
        time_scale=800.0,
        drain_timeout_s=1.0,
        wall_stretch_cap=4.0,
    )
    assert result.conserved
    assert result.delivered == result.sent

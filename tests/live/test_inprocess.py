"""The deterministic in-process live network vs the simulator."""

import pytest

from repro.engine.churn import schedule_for_config
from repro.engine.config import SCALE_PRESETS, SimulationConfig
from repro.engine.simulation import run_simulation
from repro.errors import ConfigurationError
from repro.experiments.cache import fingerprint
from repro.live.harness import build_live_network, run_live
from repro.errors import SimulationError

pytestmark = pytest.mark.live

#: Small enough for sub-second runs, large enough to queue and filter.
CONFIG = SimulationConfig(
    n_repositories=12, n_routers=40, n_items=4, trace_samples=300
)


def _result_digest(result):
    """A content digest over everything a run produced."""
    return fingerprint(
        (
            result.loss_of_fidelity,
            tuple(sorted(result.per_repository_loss.items())),
            result.counters,
            result.sent,
            result.delivered,
            result.dropped,
            tuple(sorted(result.extras["per_pair_loss"].items())),
        )
    )


def test_inprocess_run_is_bit_deterministic():
    first = run_live(CONFIG)
    second = run_live(CONFIG)
    assert _result_digest(first) == _result_digest(second)


def test_inprocess_jitter_is_seeded_and_deterministic():
    first = run_live(CONFIG, jitter_ms=5.0)
    second = run_live(CONFIG, jitter_ms=5.0)
    assert _result_digest(first) == _result_digest(second)
    # And jitter genuinely perturbs the run relative to no jitter.
    assert _result_digest(first) != _result_digest(run_live(CONFIG))


@pytest.mark.parametrize(
    "policy", ["distributed", "centralized", "flooding", "eq3_only"]
)
def test_live_matches_simulator_exactly(policy):
    """Same d3g, same filter, same queueing: sim and live agree bit
    for bit on fidelity, per-pair losses and every counter."""
    config = CONFIG.with_(policy=policy)
    sim = run_simulation(config)
    live = run_live(config)
    assert live.loss_of_fidelity == sim.loss_of_fidelity
    assert live.per_repository_loss == sim.per_repository_loss
    assert live.counters.messages == sim.counters.messages
    assert live.counters.source_checks == sim.counters.source_checks
    assert live.counters.repository_checks == sim.counters.repository_checks
    assert live.counters.per_node_messages == sim.counters.per_node_messages
    assert live.extras["per_pair_loss"] == sim.extras["per_pair_loss"]


def test_message_conservation_holds():
    result = run_live(CONFIG)
    assert result.conserved
    assert result.dropped == 0
    assert result.delivered == result.counters.deliveries
    assert result.sent == result.counters.messages


def test_duration_truncates_replay_and_scoring_window():
    full = run_live(CONFIG)
    half = run_live(CONFIG, duration=full.sim_span_s / 2.0)
    assert half.sim_span_s == pytest.approx(full.sim_span_s / 2.0)
    assert 0 < half.sent < full.sent
    assert half.conserved


def test_result_is_simulator_shaped():
    result = run_live(CONFIG)
    sim = run_simulation(CONFIG)
    for field in (
        "loss_of_fidelity",
        "per_repository_loss",
        "counters",
        "tree_stats",
        "effective_degree",
        "avg_comm_delay_ms",
        "sim_span_s",
    ):
        assert type(getattr(result, field)) is type(getattr(sim, field))
    assert result.fidelity == pytest.approx(100.0 - result.loss_of_fidelity)
    assert result.transport == "inprocess"
    assert result.wall_seconds > 0.0


def test_live_rejects_churn_configs():
    config = SCALE_PRESETS["tiny"]
    churned = config.with_(
        churn=schedule_for_config(config, joins=1, departs=1, updates=1)
    )
    with pytest.raises(ConfigurationError):
        build_live_network(churned)


def test_live_loss_injection_matches_simulator_exactly():
    """``message_loss_probability > 0`` is real support, not a rejection:
    both planes consume the shared seeded loss stream in engine order."""
    config = CONFIG.with_(message_loss_probability=0.05)
    sim = run_simulation(config)
    live = run_live(config)
    assert live.dropped > 0
    assert live.conserved
    assert live.loss_of_fidelity == sim.loss_of_fidelity
    assert live.counters.drops == sim.counters.drops
    assert live.counters.messages == sim.counters.messages
    assert live.extras["per_pair_loss"] == sim.extras["per_pair_loss"]


@pytest.mark.parametrize("policy", ["distributed", "centralized"])
def test_live_failures_match_simulator_exactly(policy):
    """Crashes, partitions and loss under one shared schedule: the
    in-process transport shares the simulator's virtual-time kernel, so
    agreement stays bit-exact even mid-failover and mid-resync."""
    from repro.engine.failures import failures_for_config

    base = CONFIG.with_(policy=policy, message_loss_probability=0.02)
    config = base.with_(
        failures=failures_for_config(base, crashes=2, partitions=1)
    )
    sim = run_simulation(config.with_(kernel="scalar"))
    live = run_live(config)
    assert live.conserved
    assert live.dropped > 0
    assert live.loss_of_fidelity == sim.loss_of_fidelity
    assert live.per_repository_loss == sim.per_repository_loss
    assert live.counters == sim.counters
    assert live.extras["per_pair_loss"] == sim.extras["per_pair_loss"]
    assert live.extras["crashes"] == 2 and live.extras["partitions"] == 1
    # The failure economy really ran: failover re-homed orphans and
    # each recovery replayed one anti-entropy resync.
    assert live.counters.edges_added > 0
    assert live.counters.resyncs == 2
    assert live.counters.resync_messages <= live.counters.resync_checks


def test_live_rejects_unknown_transport_and_bad_duration():
    with pytest.raises(ConfigurationError):
        run_live(CONFIG, "carrier-pigeon")
    with pytest.raises(ConfigurationError):
        run_live(CONFIG, duration=-1.0)


def test_inprocess_transport_cannot_leak(monkeypatch):
    """The defensive conservation check in the virtual-time driver."""
    from repro.live import transport as transport_module

    monkeypatch.setattr(
        transport_module.TransportStats,
        "conserved",
        property(lambda self: False),
    )
    with pytest.raises(SimulationError):
        run_live(CONFIG)

"""Partial-frame reassembly and the hardened v2 protocol surface."""

import struct

import pytest

from repro.live.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Forward,
    FrameAssembler,
    Heartbeat,
    Hello,
    ProtocolError,
    ResyncRequest,
    ResyncResponse,
    Update,
    check_version,
    decode_payload,
    encode_message,
)

pytestmark = pytest.mark.live


def test_v2_frames_round_trip_exactly():
    messages = [
        Hello(src=3, generation=7),
        Heartbeat(src=1),
        Forward(
            dst=9, arrival_s=12.5, item_id=2, value=1.25, tag=None, seq=8, src=4
        ),
        ResyncRequest(
            child=2, parent=1, round_no=3, sample=((0, 5), (7, 2))
        ),
        ResyncResponse(
            child=2,
            parent=1,
            round_no=3,
            known=(0,),
            missing=((7, 9, 3.75),),
        ),
    ]
    for message in messages:
        assert decode_payload(encode_message(message)[4:]) == message


def test_forward_wraps_and_unwraps_an_update():
    update = Update(item_id=5, value=2.5, tag=0.1, seq=11, src=6)
    forward = Forward.from_update(42, 99.5, update)
    assert forward.dst == 42
    assert forward.arrival_s == 99.5
    assert forward.to_update() == update


def test_check_version_rejects_a_mismatched_peer():
    check_version(Hello(src=0))  # current version passes
    with pytest.raises(ProtocolError):
        check_version(Hello(src=0, version=PROTOCOL_VERSION + 1))


def test_encode_rejects_oversized_bodies():
    with pytest.raises(ProtocolError):
        encode_message(
            ResyncRequest(child=0, parent=0, round_no=0, digest="x" * MAX_FRAME_BYTES)
        )


def test_assembler_reassembles_byte_at_a_time():
    frames = b"".join(
        encode_message(Update(item_id=i, value=float(i), tag=None, seq=i, src=0))
        for i in range(3)
    )
    assembler = FrameAssembler()
    messages = []
    for i in range(len(frames)):
        messages.extend(assembler.feed(frames[i : i + 1]))
    assert [m.item_id for m in messages] == [0, 1, 2]
    assert assembler.at_boundary()
    assert assembler.pending_bytes == 0


def test_assembler_handles_many_frames_in_one_chunk():
    chunk = encode_message(Heartbeat(src=1)) + encode_message(Heartbeat(src=2))
    messages = FrameAssembler().feed(chunk)
    assert [m.src for m in messages] == [1, 2]


def test_assembler_tracks_partial_frames():
    frame = encode_message(Hello(src=0))
    assembler = FrameAssembler()
    assert assembler.feed(frame[:5]) == []
    assert assembler.pending_bytes == 5
    assert not assembler.at_boundary()
    assert assembler.feed(frame[5:]) == [Hello(src=0)]
    assert assembler.at_boundary()


def test_assembler_poisons_on_oversized_prefix():
    assembler = FrameAssembler()
    with pytest.raises(ProtocolError):
        assembler.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError):
        assembler.feed(b"")  # refuses all input after a framing error


def test_assembler_poisons_on_garbage_body():
    garbage = struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc"
    assembler = FrameAssembler()
    with pytest.raises(ProtocolError):
        assembler.feed(garbage)
    with pytest.raises(ProtocolError):
        assembler.feed(encode_message(Heartbeat(src=0)))


def test_assembler_yields_frames_before_the_bad_one():
    good = encode_message(Heartbeat(src=9))
    bad = struct.pack(">I", 3) + b"{{{"
    assembler = FrameAssembler()
    assert assembler.feed(good) == [Heartbeat(src=9)]
    with pytest.raises(ProtocolError):
        assembler.feed(bad)

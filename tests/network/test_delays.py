"""Unit tests for the Pareto link-delay model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.delays import ConstantDelayModel, ParetoDelayModel


def test_samples_respect_minimum():
    model = ParetoDelayModel(mean_ms=15.0, min_ms=2.0)
    delays = model.sample(np.random.default_rng(0), 10_000)
    assert (delays >= 2.0).all()


def test_samples_respect_cap():
    model = ParetoDelayModel(mean_ms=15.0, min_ms=2.0, cap_ms=100.0)
    delays = model.sample(np.random.default_rng(0), 10_000)
    assert (delays <= 100.0).all()


def test_mean_close_to_configured():
    # The cap trims the heavy tail, so the sample mean lands slightly
    # below the nominal 15 ms; it must sit in a sane band.
    model = ParetoDelayModel(mean_ms=15.0, min_ms=2.0)
    delays = model.sample(np.random.default_rng(1), 200_000)
    assert 7.0 < delays.mean() < 18.0


def test_alpha_formula():
    model = ParetoDelayModel(mean_ms=15.0, min_ms=2.0)
    assert model.alpha == pytest.approx(15.0 / 13.0)


def test_uncapped_model_allows_tail():
    model = ParetoDelayModel(mean_ms=15.0, min_ms=2.0, cap_ms=None)
    delays = model.sample(np.random.default_rng(2), 100_000)
    assert delays.max() > 100.0  # heavy tail reaches far out


def test_invalid_params_rejected():
    with pytest.raises(ConfigurationError):
        ParetoDelayModel(mean_ms=1.0, min_ms=2.0)
    with pytest.raises(ConfigurationError):
        ParetoDelayModel(mean_ms=15.0, min_ms=0.0)
    with pytest.raises(ConfigurationError):
        ParetoDelayModel(mean_ms=15.0, min_ms=2.0, cap_ms=1.0)


def test_negative_size_rejected():
    model = ParetoDelayModel()
    with pytest.raises(ConfigurationError):
        model.sample(np.random.default_rng(0), -1)


def test_scaled_keeps_shape():
    model = ParetoDelayModel(mean_ms=15.0, min_ms=2.0, cap_ms=500.0)
    scaled = model.scaled(30.0)
    assert scaled.mean_ms == 30.0
    assert scaled.min_ms == pytest.approx(4.0)
    assert scaled.cap_ms == pytest.approx(1000.0)
    assert scaled.alpha == pytest.approx(model.alpha)


def test_sampling_is_deterministic_given_rng():
    model = ParetoDelayModel()
    a = model.sample(np.random.default_rng(3), 100)
    b = model.sample(np.random.default_rng(3), 100)
    assert np.array_equal(a, b)


def test_constant_model():
    model = ConstantDelayModel(5.0)
    delays = model.sample(np.random.default_rng(0), 10)
    assert (delays == 5.0).all()


def test_constant_model_rejects_negative():
    with pytest.raises(ConfigurationError):
        ConstantDelayModel(-1.0)

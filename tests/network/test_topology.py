"""Unit tests for random topology generation."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.delays import ConstantDelayModel, ParetoDelayModel
from repro.network.topology import Topology, generate_topology


def make(n_repos=10, n_routers=30, seed=0, avg_degree=3.0):
    return generate_topology(
        n_repositories=n_repos,
        n_routers=n_routers,
        rng=np.random.default_rng(seed),
        delay_model=ParetoDelayModel(),
        avg_degree=avg_degree,
    )


def test_node_counts_and_id_layout():
    topo = make()
    assert topo.n_nodes == 41
    assert topo.source == 0
    assert list(topo.repository_ids) == list(range(1, 11))
    assert list(topo.router_ids) == list(range(11, 41))


def test_generated_topology_is_connected():
    for seed in range(5):
        assert make(seed=seed).is_connected()


def test_average_degree_near_target():
    topo = make(n_repos=20, n_routers=80, avg_degree=4.0)
    avg = 2.0 * topo.n_edges / topo.n_nodes
    assert 3.0 <= avg <= 4.5


def test_edges_and_delays_aligned():
    topo = make()
    assert topo.edges.shape[0] == topo.delays_ms.shape[0]
    assert (topo.delays_ms > 0).all()


def test_no_self_loops_or_duplicate_edges():
    topo = make(n_repos=20, n_routers=60)
    assert (topo.edges[:, 0] != topo.edges[:, 1]).all()
    seen = {tuple(sorted(edge)) for edge in topo.edges.tolist()}
    assert len(seen) == topo.n_edges


def test_reproducible_given_seed():
    a, b = make(seed=42), make(seed=42)
    assert np.array_equal(a.edges, b.edges)
    assert np.array_equal(a.delays_ms, b.delays_ms)


def test_different_seeds_differ():
    a, b = make(seed=1), make(seed=2)
    assert not (
        a.edges.shape == b.edges.shape and np.array_equal(a.edges, b.edges)
    )


def test_invalid_counts_rejected():
    with pytest.raises(TopologyError):
        make(n_repos=0)
    with pytest.raises(TopologyError):
        make(n_routers=-1)


def test_infeasible_degree_rejected():
    with pytest.raises(TopologyError):
        make(avg_degree=0.5)


def test_degree_of_counts_incident_links():
    topo = make()
    total = sum(topo.degree_of(n) for n in range(topo.n_nodes))
    assert total == 2 * topo.n_edges


def test_zero_routers_supported():
    topo = make(n_repos=5, n_routers=0)
    assert topo.is_connected()
    assert topo.n_nodes == 6


def test_constant_delay_model_plumbs_through():
    topo = generate_topology(
        n_repositories=5,
        n_routers=10,
        rng=np.random.default_rng(0),
        delay_model=ConstantDelayModel(7.0),
    )
    assert (topo.delays_ms == 7.0).all()


def test_mismatched_delays_rejected():
    with pytest.raises(TopologyError):
        Topology(
            n_repositories=1,
            n_routers=0,
            edges=np.array([[0, 1]]),
            delays_ms=np.array([1.0, 2.0]),
        )

"""Unit tests for the NetworkModel facade."""

import numpy as np
import pytest

from repro.network.model import build_network


@pytest.fixture(scope="module")
def network():
    return build_network(10, 40, np.random.default_rng(0))


def test_delay_units(network):
    assert network.delay_s(0, 1) == pytest.approx(network.delay_ms(0, 1) / 1000.0)


def test_source_is_node_zero(network):
    assert network.source == 0


def test_mean_repo_delay_positive_and_sane(network):
    mean = network.mean_repo_delay_ms()
    assert 5.0 < mean < 200.0


def test_mean_repo_hops_sane(network):
    assert 1.0 < network.mean_repo_hops() < 20.0


def test_scaled_delays_scales_everything(network):
    target = network.topology.delays_ms.mean() * 2.0
    scaled = network.scaled_delays(target)
    assert scaled.topology.delays_ms.mean() == pytest.approx(target)
    assert scaled.delay_ms(0, 5) == pytest.approx(2.0 * network.delay_ms(0, 5))
    assert scaled.hops(0, 5) == network.hops(0, 5)


def test_scaled_delays_to_zero(network):
    zero = network.scaled_delays(0.0)
    assert zero.delay_ms(0, 5) == 0.0
    assert zero.mean_repo_delay_ms() == 0.0


def test_with_repo_mean_delay_hits_target(network):
    for target in (10.0, 50.0, 125.0):
        retargeted = network.with_repo_mean_delay(target)
        assert retargeted.mean_repo_delay_ms() == pytest.approx(target)


def test_with_repo_mean_delay_zero(network):
    assert network.with_repo_mean_delay(0.0).mean_repo_delay_ms() == 0.0


def test_chained_rescale_is_bit_identical_to_direct(network):
    """Rescaling always starts from the raw network, so a chain of
    rescales lands on exactly the same bits as a single rescale -- the
    property that lets sweep recycling stay bit-identical to fresh
    builds regardless of which configs a worker saw before."""
    direct = network.with_repo_mean_delay(100.0)
    chained = (
        network.with_repo_mean_delay(5.0)
        .with_repo_mean_delay(40.0)
        .with_repo_mean_delay(100.0)
    )
    assert np.array_equal(direct.routing.dist_ms, chained.routing.dist_ms)
    assert np.array_equal(direct.topology.delays_ms, chained.topology.delays_ms)
    assert direct.raw is network
    assert chained.raw is network


def test_rescale_from_zero_scaled_copy_stays_zero(network):
    """Scaling up from a zero-collapsed copy keeps the old semantics:
    a zero network stays zero (the idealised-network case must not be
    silently resurrected by the raw reference)."""
    zero = network.with_repo_mean_delay(0.0)
    assert zero.with_repo_mean_delay(50.0).mean_repo_delay_ms() == 0.0
    assert zero.scaled_delays(50.0).mean_repo_delay_ms() == 0.0


def test_retarget_is_uniform(network):
    retargeted = network.with_repo_mean_delay(50.0)
    factor = 50.0 / network.mean_repo_delay_ms()
    assert retargeted.delay_ms(0, 3) == pytest.approx(factor * network.delay_ms(0, 3))


def test_scaling_does_not_mutate_original(network):
    before = network.delay_ms(0, 1)
    network.with_repo_mean_delay(99.0)
    assert network.delay_ms(0, 1) == before


def test_repository_ids_exposed(network):
    assert list(network.repository_ids) == list(range(1, 11))

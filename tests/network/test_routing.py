"""Unit tests for Floyd-Warshall routing, validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.delays import ParetoDelayModel
from repro.network.routing import build_routing
from repro.network.topology import Topology, generate_topology


def small_topology():
    #   0 --1ms-- 1 --1ms-- 2
    #    \------10ms-------/
    edges = np.array([[0, 1], [1, 2], [0, 2]])
    delays = np.array([1.0, 1.0, 10.0])
    return Topology(n_repositories=2, n_routers=0, edges=edges, delays_ms=delays)


def test_shortest_path_prefers_cheap_two_hop():
    routing = build_routing(small_topology())
    assert routing.dist_ms[0, 2] == 2.0
    assert routing.hops[0, 2] == 2
    assert routing.path(0, 2) == [0, 1, 2]


def test_distance_matrix_symmetric_for_undirected_graph():
    topo = generate_topology(
        10, 30, np.random.default_rng(0), ParetoDelayModel()
    )
    routing = build_routing(topo)
    assert np.allclose(routing.dist_ms, routing.dist_ms.T)


def test_diagonal_is_zero():
    routing = build_routing(small_topology())
    assert (np.diag(routing.dist_ms) == 0).all()
    assert (np.diag(routing.hops) == 0).all()


def test_triangle_inequality_holds():
    topo = generate_topology(
        10, 30, np.random.default_rng(1), ParetoDelayModel()
    )
    d = build_routing(topo).dist_ms
    via = d[:, :, None] + d[None, :, :]  # via[i, k, j] = d[i,k] + d[k,j]
    assert (d <= via.min(axis=1) + 1e-9).all()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_distances_match_networkx_dijkstra(seed):
    topo = generate_topology(
        8, 20, np.random.default_rng(seed), ParetoDelayModel()
    )
    routing = build_routing(topo)
    graph = nx.Graph()
    for (u, v), w in zip(topo.edges, topo.delays_ms):
        graph.add_edge(int(u), int(v), weight=float(w))
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
    for u in range(topo.n_nodes):
        for v in range(topo.n_nodes):
            assert routing.dist_ms[u, v] == pytest.approx(lengths[u][v])


def test_path_reconstruction_matches_distance():
    topo = generate_topology(
        8, 20, np.random.default_rng(3), ParetoDelayModel()
    )
    routing = build_routing(topo)
    weight = {}
    for (u, v), w in zip(topo.edges, topo.delays_ms):
        weight[(int(u), int(v))] = float(w)
        weight[(int(v), int(u))] = float(w)
    for dst in (1, 5, topo.n_nodes - 1):
        path = routing.path(0, dst)
        assert path[0] == 0 and path[-1] == dst
        total = sum(weight[(a, b)] for a, b in zip(path, path[1:]))
        assert total == pytest.approx(routing.dist_ms[0, dst])
        assert len(path) - 1 == routing.hops[0, dst]


def test_path_to_self_is_single_node():
    routing = build_routing(small_topology())
    assert routing.path(1, 1) == [1]


def test_hops_break_delay_ties_minimally():
    # Two equal-delay routes 0->2: direct (1 hop, 2ms) vs via 1 (2 hops, 2ms).
    edges = np.array([[0, 1], [1, 2], [0, 2]])
    delays = np.array([1.0, 1.0, 2.0])
    topo = Topology(n_repositories=2, n_routers=0, edges=edges, delays_ms=delays)
    routing = build_routing(topo)
    assert routing.dist_ms[0, 2] == 2.0
    assert routing.hops[0, 2] == 1


def test_disconnected_graph_rejected():
    edges = np.array([[0, 1]])
    delays = np.array([1.0])
    topo = Topology(n_repositories=2, n_routers=0, edges=edges, delays_ms=delays)
    with pytest.raises(TopologyError):
        build_routing(topo)


def test_diameter_and_mean_hops():
    routing = build_routing(small_topology())
    assert routing.diameter_hops() == 2
    assert routing.mean_hops() > 1.0


def test_multi_edge_keeps_cheapest():
    edges = np.array([[0, 1], [0, 1], [1, 2]])
    delays = np.array([5.0, 1.0, 1.0])
    topo = Topology(n_repositories=2, n_routers=0, edges=edges, delays_ms=delays)
    routing = build_routing(topo)
    assert routing.dist_ms[0, 1] == 1.0

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.builder import build_setup
from repro.engine.config import SCALE_PRESETS


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_root(tmp_path_factory):
    """Point the experiment cache at a session tmp dir.

    Keeps the suite hermetic: replay corpora and any cache writes land
    in pytest's tmp tree instead of ``~/.cache/repro``.
    """
    import os

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for structure-level randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_setup():
    """One prebuilt tiny-scale setup shared by read-only tests."""
    return build_setup(SCALE_PRESETS["tiny"].with_(offered_degree=4))


@pytest.fixture(scope="session")
def tiny_zero_delay_setup():
    """Tiny setup on an idealised zero-delay, zero-computation system."""
    config = SCALE_PRESETS["tiny"].with_(
        offered_degree=4, comm_target_ms=0.0, comp_delay_ms=0.0
    )
    return build_setup(config)

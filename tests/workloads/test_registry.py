"""Unit tests for the workload registry and spec mini-language."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    ReplayWorkload,
    Table1Workload,
    available_workloads,
    make_workload,
    parse_workload_spec,
)


def test_all_four_generators_registered():
    assert available_workloads() == ["diurnal", "flash_crowd", "replay", "table1"]


def test_make_workload_by_name():
    assert make_workload("table1") == Table1Workload()
    assert make_workload("flash_crowd", intensity=1.5) == FlashCrowdWorkload(
        intensity=1.5
    )


def test_make_workload_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown workload"):
        make_workload("tsunami")


def test_make_workload_unknown_parameter():
    with pytest.raises(ConfigurationError, match="no parameter"):
        make_workload("diurnal", wavelength=3)


def test_make_workload_validates():
    with pytest.raises(ConfigurationError, match="amplitude"):
        make_workload("diurnal", amplitude=2.0)


def test_parse_bare_name():
    assert parse_workload_spec("table1") == Table1Workload()
    assert parse_workload_spec("  FLASH_CROWD  ") == FlashCrowdWorkload()


def test_parse_parameters_coerced_to_field_types():
    workload = parse_workload_spec("flash_crowd:n_bursts=5,intensity=1.25,decay_s=10")
    assert workload == FlashCrowdWorkload(n_bursts=5, intensity=1.25, decay_s=10.0)
    assert isinstance(workload.n_bursts, int)
    assert isinstance(workload.decay_s, float)


def test_parse_bool_and_str_parameters():
    workload = parse_workload_spec("replay:path=traces/,cycle=false")
    assert workload == ReplayWorkload(path="traces/", cycle=False)
    assert parse_workload_spec("replay:path=x,cycle=TRUE").cycle is True


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "flash_crowd:intensity",
        "flash_crowd:=3",
        "flash_crowd:burstiness=3",
        "diurnal:cycles=fast",
        "replay:cycle=maybe,path=x",
        "unknown:k=v",
    ],
)
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(ConfigurationError):
        parse_workload_spec(spec)


def test_workloads_are_hashable_and_value_equal():
    a = DiurnalWorkload(cycles=3.0)
    b = DiurnalWorkload(cycles=3.0)
    assert a == b and hash(a) == hash(b)
    assert a != DiurnalWorkload(cycles=4.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(name="flash_crowd", n_bursts=0),
        dict(name="flash_crowd", intensity=0.0),
        dict(name="flash_crowd", decay_s=-1.0),
        dict(name="flash_crowd", alpha=0.0),
        dict(name="flash_crowd", base_probability=0.0),
        dict(name="diurnal", cycles=0.0),
        dict(name="diurnal", base_probability=1.5),
        dict(name="diurnal", phase=float("nan")),
        dict(name="replay"),  # path is mandatory
    ],
)
def test_invalid_parameters_rejected(kwargs):
    name = kwargs.pop("name")
    with pytest.raises(ConfigurationError):
        make_workload(name, **kwargs)

"""Engine integration: workloads inside SimulationConfig, end to end.

The ISSUE-3 acceptance criteria live here:

- the default ``table1`` workload is **bit-identical** to the
  pre-workload-subsystem engine (golden numbers captured on the commit
  before ``repro.workloads`` existed),
- every generator drives a deterministic simulation, and sweeps over
  workloads merge bit-identically serial vs ``--jobs 4``,
- a replay run of CSV-written Table 1 traces reproduces the ``table1``
  golden numbers exactly (the round-trip regression).
"""

import pytest

from repro.engine.config import SCALE_PRESETS
from repro.engine.simulation import run_simulation
from repro.engine.sweep import run_sweep
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.traces.io import write_trace_csv
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    ReplayWorkload,
    Table1Workload,
    make_workload,
)

BASE = SCALE_PRESETS["tiny"].with_(
    seed=3913, n_items=4, trace_samples=400, offered_degree=3
)

#: (loss, messages, source_checks, events) pinned at seed 3913.  The
#: ``table1`` row was captured on the commit *before* the workload
#: subsystem landed: equality proves the refactor is invisible.
GOLDEN = {
    "table1": (1.165812380537029, 3464, 2625, 4339),
    "flash_crowd": (0.4478397221621687, 1432, 1134, 1810),
    "diurnal": (0.6563360234477574, 1959, 1488, 2455),
}

WORKLOADS = {
    "table1": Table1Workload(),
    "flash_crowd": FlashCrowdWorkload(),
    "diurnal": DiurnalWorkload(),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_seed_regression(name):
    result = run_simulation(BASE.with_(workload=WORKLOADS[name]))
    loss, messages, source_checks, events = GOLDEN[name]
    assert result.loss_of_fidelity == pytest.approx(loss, rel=1e-9)
    assert result.messages == messages
    assert result.source_checks == source_checks
    assert result.events_processed == events
    assert result.extras["workload"] == name


def test_default_config_carries_table1():
    assert BASE.workload == Table1Workload()
    explicit = run_simulation(BASE.with_(workload=Table1Workload()))
    implicit = run_simulation(BASE)
    assert explicit.loss_of_fidelity == implicit.loss_of_fidelity
    assert explicit.messages == implicit.messages


def test_replay_golden_seed_regression(tmp_path):
    """Replaying CSV-written table1 traces reproduces table1 bit for bit."""
    streams = RandomStreams(BASE.seed)
    traces = Table1Workload().make_traces(
        BASE.n_items,
        rng_factory=lambda i: streams.spawn("traces", i),
        n_samples=BASE.trace_samples,
    )
    for i, trace in enumerate(traces):
        write_trace_csv(trace, tmp_path / f"item{i:03d}.csv")
    result = run_simulation(BASE.with_(workload=ReplayWorkload(path=str(tmp_path))))
    loss, messages, source_checks, events = GOLDEN["table1"]
    assert result.loss_of_fidelity == pytest.approx(loss, rel=1e-12)
    assert result.messages == messages
    assert result.source_checks == source_checks
    assert result.events_processed == events
    assert result.extras["workload"] == "replay"


def _digest(result):
    return (
        result.loss_of_fidelity,
        result.messages,
        result.counters.deliveries,
        result.counters.drops,
        result.source_checks,
        result.events_processed,
        sorted(result.per_repository_loss.items()),
    )


@pytest.mark.slow
def test_workload_sweep_bit_identical_serial_vs_jobs4(tmp_path):
    """The acceptance criterion: all four generators, serial == --jobs 4."""
    for i, trace in enumerate(
        Table1Workload().make_traces(
            BASE.n_items,
            rng_factory=lambda i: RandomStreams(BASE.seed).spawn("traces", i),
            n_samples=BASE.trace_samples,
        )
    ):
        write_trace_csv(trace, tmp_path / f"item{i:03d}.csv")
    configs = [
        BASE.with_(workload=workload, policy=policy)
        for workload in (
            Table1Workload(),
            FlashCrowdWorkload(),
            DiurnalWorkload(),
            ReplayWorkload(path=str(tmp_path)),
        )
        for policy in ("distributed", "centralized")
    ]
    serial = run_sweep(configs, jobs=1)
    parallel = run_sweep(configs, jobs=4)
    for s, p in zip(serial, parallel):
        assert _digest(s) == _digest(p)


def test_workload_composes_with_churn():
    from repro.engine.churn import schedule_for_config

    config = BASE.with_(workload=DiurnalWorkload())
    config = config.with_(
        churn=schedule_for_config(config, joins=1, departs=1, updates=1)
    )
    first = run_simulation(config)
    second = run_simulation(config)
    assert first.counters.reconfigurations == 3
    assert _digest(first) == _digest(second)
    assert first.extras["workload"] == "diurnal"


def test_config_rejects_non_workload():
    with pytest.raises(ConfigurationError, match="workload must be a Workload"):
        BASE.with_(workload="table1")


def test_config_rejects_invalid_workload_parameters():
    with pytest.raises(ConfigurationError, match="amplitude"):
        BASE.with_(workload=DiurnalWorkload(amplitude=3.0))


def test_builder_recycles_traces_only_for_matching_workloads():
    from repro.engine.builder import build_setup

    base_setup = build_setup(BASE)
    same = build_setup(BASE.with_(offered_degree=5), base=base_setup)
    assert same.traces is base_setup.traces
    other = build_setup(BASE.with_(workload=make_workload("diurnal")), base=base_setup)
    assert other.traces is not base_setup.traces

"""Behavioural tests for the workload generators.

Each generator must be seed-deterministic (the sweep subsystem's
bit-identity rests on it) and must actually produce the update dynamics
its name promises: bursts cluster changes, diurnal modulation
concentrates them in the crest half-cycles, replay is lossless.
"""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.traces.io import write_trace_csv
from repro.traces.library import make_trace_set
from repro.errors import TraceError
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    ReplayWorkload,
    Table1Workload,
)

N_ITEMS = 4
N_SAMPLES = 1_000


def factory(seed=3913):
    streams = RandomStreams(seed)
    return lambda i: streams.spawn("traces", i)


def change_times(trace):
    changed = trace.changes()
    return np.asarray(changed.times[1:])  # index 0 is the priming value


ALL_GENERATED = [Table1Workload(), FlashCrowdWorkload(), DiurnalWorkload()]


@pytest.mark.parametrize("workload", ALL_GENERATED, ids=lambda w: w.name)
def test_generators_are_seed_deterministic(workload):
    first = workload.make_traces(N_ITEMS, factory(), N_SAMPLES)
    second = workload.make_traces(N_ITEMS, factory(), N_SAMPLES)
    for a, b in zip(first, second):
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.values, b.values)
    different_seed = workload.make_traces(N_ITEMS, factory(seed=7), N_SAMPLES)
    assert any(
        not np.array_equal(a.values, b.values)
        for a, b in zip(first, different_seed)
    )


@pytest.mark.parametrize("workload", ALL_GENERATED, ids=lambda w: w.name)
def test_generated_traces_fit_the_observation_window(workload):
    traces = workload.make_traces(N_ITEMS, factory(), N_SAMPLES)
    assert len(traces) == N_ITEMS
    for trace in traces:
        assert len(trace) == N_SAMPLES
        assert trace.times[0] == 0.0
        assert trace.span == pytest.approx(N_SAMPLES - 1)


def test_table1_workload_is_the_seed_trace_set():
    via_workload = Table1Workload().make_traces(N_ITEMS, factory(), N_SAMPLES)
    direct = make_trace_set(N_ITEMS, rng_factory=factory(), n_samples=N_SAMPLES)
    for a, b in zip(via_workload, direct):
        assert a.name == b.name
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.values, b.values)


def test_flash_crowd_concentrates_changes_after_bursts():
    workload = FlashCrowdWorkload(n_bursts=2, intensity=0.9, decay_s=40.0)
    profile = workload.profile(N_SAMPLES, np.random.default_rng(1))
    # The profile spikes somewhere and relaxes back to the quiet base.
    assert profile.max() > 5 * workload.base_probability
    assert profile.min() == pytest.approx(workload.base_probability, rel=1e-6)

    traces = workload.make_traces(N_ITEMS, factory(), N_SAMPLES)
    for trace in traces:
        times = change_times(trace)
        # Change density inside the busiest 10% window must dominate the
        # stationary expectation under the quiet base rate.
        counts, _ = np.histogram(times, bins=10, range=(0.0, N_SAMPLES - 1.0))
        quiet_expectation = workload.base_probability * N_SAMPLES / 10
        assert counts.max() > 2 * quiet_expectation


def test_diurnal_changes_follow_the_modulation():
    workload = DiurnalWorkload(cycles=1.0, amplitude=1.0, base_probability=0.4)
    profile = workload.profile(N_SAMPLES)
    assert profile.max() <= 1.0 and profile.min() >= 0.0
    # cycles=1, phase=0: the first half-window is the crest, the second
    # the trough; change counts must reflect that asymmetry strongly.
    traces = workload.make_traces(N_ITEMS, factory(), N_SAMPLES)
    for trace in traces:
        times = change_times(trace)
        crest = int((times < N_SAMPLES / 2).sum())
        trough = int((times >= N_SAMPLES / 2).sum())
        assert crest > 2 * max(trough, 1)


def test_replay_roundtrip_is_lossless(tmp_path):
    originals = make_trace_set(N_ITEMS, rng_factory=factory(), n_samples=N_SAMPLES)
    for i, trace in enumerate(originals):
        write_trace_csv(trace, tmp_path / f"item{i:03d}.csv")
    replayed = ReplayWorkload(path=str(tmp_path)).make_traces(
        N_ITEMS, factory(), N_SAMPLES
    )
    for original, back in zip(originals, replayed):
        assert np.array_equal(original.times, back.times)
        assert np.array_equal(original.values, back.values)


def test_replay_single_file_and_cycling(tmp_path):
    trace = make_trace_set(1, rng_factory=factory(), n_samples=50)[0]
    path = tmp_path / "only.csv"
    write_trace_csv(trace, path)
    cycled = ReplayWorkload(path=str(path)).make_traces(3, factory(), 50)
    assert len(cycled) == 3
    for back in cycled:
        assert np.array_equal(back.values, trace.values)
    with pytest.raises(TraceError, match="cycle"):
        ReplayWorkload(path=str(path), cycle=False).make_traces(3, factory(), 50)


def test_replay_truncates_to_the_observation_window(tmp_path):
    trace = make_trace_set(1, rng_factory=factory(), n_samples=200)[0]
    write_trace_csv(trace, tmp_path / "long.csv")
    short = ReplayWorkload(path=str(tmp_path)).make_traces(1, factory(), 120)[0]
    assert len(short) == 120
    assert np.array_equal(short.values, trace.values[:120])


def test_replay_missing_paths_rejected(tmp_path):
    with pytest.raises(TraceError, match="does not exist"):
        ReplayWorkload(path=str(tmp_path / "nope")).make_traces(1, factory(), 10)
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(TraceError, match="no \\*\\.csv"):
        ReplayWorkload(path=str(empty)).make_traces(1, factory(), 10)

"""Smoke tests: every shipped example must run and print its story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    script = EXAMPLES / f"{name}.py"
    assert script.exists(), f"missing example {script}"
    saved_argv = sys.argv
    sys.argv = [str(script)]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "loss of fidelity" in out
    assert "U-curve" in out


@pytest.mark.slow
def test_stock_ticker_dissemination(capsys):
    out = run_example("stock_ticker_dissemination", capsys)
    assert "MSFT" in out
    assert "distributed" in out and "flooding" in out


@pytest.mark.slow
def test_adaptive_cooperation(capsys):
    out = run_example("adaptive_cooperation", capsys)
    assert "Eq.2 degree" in out or "Eq. (2)" in out


@pytest.mark.slow
def test_sensor_network(capsys):
    out = run_example("sensor_network", capsys)
    assert "forecast" in out and "dashboard" in out
    assert "loss of fidelity" in out


@pytest.mark.slow
def test_multi_source_feeds(capsys):
    out = run_example("multi_source_feeds", capsys)
    assert "sources" in out
    assert "busiest sender" in out

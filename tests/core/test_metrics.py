"""Unit tests for cost counters."""

from repro.core.metrics import CostCounters


def test_checks_split_by_role():
    counters = CostCounters()
    counters.record_check(0, is_source=True, count=3)
    counters.record_check(5, is_source=False)
    assert counters.source_checks == 3
    assert counters.repository_checks == 1
    assert counters.total_checks == 4
    assert counters.per_node_checks == {0: 3, 5: 1}


def test_messages_split_by_role():
    counters = CostCounters()
    counters.record_message(0, is_source=True)
    counters.record_message(5, is_source=False)
    counters.record_message(5, is_source=False)
    assert counters.messages == 3
    assert counters.source_messages == 1
    assert counters.per_node_messages == {0: 1, 5: 2}


def test_deliveries():
    counters = CostCounters()
    counters.record_delivery()
    counters.record_delivery()
    assert counters.deliveries == 2


def test_drops_accumulate_independently_of_deliveries():
    counters = CostCounters()
    counters.record_message(0, is_source=True)
    counters.record_message(0, is_source=True)
    counters.record_delivery()
    counters.record_drop()
    assert counters.drops == 1
    assert counters.deliveries == 1
    # The lossy-network identity: sent = delivered + dropped.
    assert counters.deliveries + counters.drops == counters.messages


def test_busiest_sender():
    counters = CostCounters()
    assert counters.busiest_sender() is None
    counters.record_message(1, is_source=False)
    counters.record_message(2, is_source=False)
    counters.record_message(2, is_source=False)
    assert counters.busiest_sender() == (2, 2)


def test_fresh_counters_zeroed():
    counters = CostCounters()
    assert counters.messages == 0
    assert counters.total_checks == 0
    assert counters.deliveries == 0

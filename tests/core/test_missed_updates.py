"""The paper's Figure 4 missed-update scenario, reproduced exactly.

Source sequence 1 -> 1.2 -> 1.4 -> 1.5 -> 1.7 -> 2.0 with c_p = 0.3 at
repository P and c_q = 0.5 at its dependent Q:

- under Eq. (3) alone, P receives 1.4 (its own tolerance violated) but
  does not forward it to Q (|1.4 - 1.0| = 0.4 <= 0.5); the next source
  value 1.5 violates Q's tolerance but *not* P's, so neither P nor Q ever
  sees it -- Q is now incoherent with no message in flight;
- the Eq. (7) guard forwards the 1.4 (slack 0.1 < c_p = 0.3), after
  which Q's copy tracks within 0.5 for the whole run.
"""

from repro.core.dissemination.distributed import DistributedPolicy
from repro.core.dissemination.eq3only import Eq3OnlyPolicy

SOURCE_VALUES = [1.0, 1.2, 1.4, 1.5, 1.7, 2.0]
C_P = 0.3
C_Q = 0.5


def drive(policy_class):
    """Drive the source sequence through S -> P -> Q; return receive logs."""
    policy = policy_class()
    policy.register_edge("S", "P", 0, C_P, SOURCE_VALUES[0])
    policy.register_edge("P", "Q", 0, C_Q, SOURCE_VALUES[0])
    p_log, q_log = [], []
    for value in SOURCE_VALUES[1:]:
        if policy.decide("S", "P", 0, value, 0.0, None).forward:
            p_log.append(value)
            if policy.decide("P", "Q", 0, value, C_P, None).forward:
                q_log.append(value)
    return p_log, q_log


def test_eq3_only_reproduces_figure4_miss():
    p_log, q_log = drive(Eq3OnlyPolicy)
    # P sees the values the paper shows at P: 1.4, 1.7, 2.0.
    assert p_log == [1.4, 1.7, 2.0]
    # Q misses 1.4 and therefore is stuck at 1.0 until 1.7 arrives --
    # exactly the paper's "this change has not been sent to Q".
    assert 1.4 not in q_log
    assert q_log[0] == 1.7
    # While the source sat at 1.5, Q held 1.0: |1.5 - 1.0| = 0.5 is the
    # boundary; at 1.7 the violation |1.7 - 1.0| = 0.7 > c_q had already
    # happened before the 1.7 push.


def test_distributed_guard_forwards_the_crucial_update():
    p_log, q_log = drive(DistributedPolicy)
    assert p_log == [1.4, 1.7, 2.0]
    # Eq. (7): slack at Q after 1.4 is 0.5 - 0.4 = 0.1 < c_p = 0.3.
    assert q_log[0] == 1.4
    # With 1.4 at Q, every later source value stays within c_q until the
    # next forward, so Q never silently violates its tolerance.


def test_distributed_q_always_coherent_at_decision_points():
    _, q_log = drive(DistributedPolicy)
    held = SOURCE_VALUES[0]
    log = list(q_log)
    for value in SOURCE_VALUES[1:]:
        if log and log[0] == value:
            held = log.pop(0)
        assert abs(value - held) <= C_Q + 1e-12


def _max_deviation_at_q(policy_class):
    _, q_log = drive(policy_class)
    held = SOURCE_VALUES[0]
    log = list(q_log)
    worst = 0.0
    for value in SOURCE_VALUES[1:]:
        if log and log[0] == value:
            held = log.pop(0)
        worst = max(worst, abs(value - held))
    return worst


def test_eq3_only_drives_q_to_the_tolerance_boundary():
    # While the source sits at 1.5, Q still holds 1.0: the deviation is
    # exactly c_q -- one more cent and Q is incoherent with no message in
    # flight.  The guard keeps Q far inside the band instead.
    assert _max_deviation_at_q(Eq3OnlyPolicy) >= C_Q - 1e-12
    assert _max_deviation_at_q(DistributedPolicy) <= 0.31

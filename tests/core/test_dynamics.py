"""Tests for repository membership dynamics (join / leave / update)."""

import pytest

from repro.core.dynamics import DynamicMembership, ReconfigurationDiff
from repro.core.interests import InterestProfile
from repro.errors import TreeConstructionError


def flat_delay(u, v):
    return 0.0 if u == v else 10.0


def membership(degree=2):
    return DynamicMembership(
        source=0, comm_delay_ms=flat_delay, offered_degree=degree, seed=7
    )


def profile(repo, reqs):
    return InterestProfile(repository=repo, requirements=reqs)


def test_join_adds_edges_only():
    m = membership()
    diff = m.join(profile(1, {0: 0.1}))
    assert diff.added and not diff.removed
    assert m.members == [1]
    assert 1 in m.graph.nodes


def test_joins_grow_the_graph_incrementally():
    m = membership()
    for repo in (1, 2, 3, 4):
        m.join(profile(repo, {0: 0.1 * repo}))
    assert m.members == [1, 2, 3, 4]
    m.graph.validate()
    # Degree 2 at the source: someone had to land at level 2.
    assert m.graph.stats().max_depth >= 2


def test_duplicate_join_rejected():
    m = membership()
    m.join(profile(1, {0: 0.1}))
    with pytest.raises(TreeConstructionError):
        m.join(profile(1, {0: 0.2}))


def test_leave_removes_the_node_and_rehomes_children():
    m = membership()
    for repo in (1, 2, 3, 4, 5):
        m.join(profile(repo, {0: 0.1}))
    diff = m.leave(3)
    assert 3 not in m.graph.nodes
    assert m.members == [1, 2, 4, 5]
    m.graph.validate()
    # Remaining members must all still be served.
    for repo in (1, 2, 4, 5):
        assert 0 in m.graph.nodes[repo].receive_c
    assert isinstance(diff, ReconfigurationDiff)


def test_leave_unknown_rejected():
    m = membership()
    with pytest.raises(TreeConstructionError):
        m.leave(42)


def test_update_requirements_tightens_service():
    m = membership()
    m.join(profile(1, {0: 0.5}))
    m.join(profile(2, {0: 0.5}))
    diff = m.update_requirements(profile(2, {0: 0.05}))
    assert m.graph.nodes[2].receive_c[0] <= 0.05
    assert diff.cost > 0
    m.graph.validate()


def test_update_requirements_can_add_items():
    m = membership()
    m.join(profile(1, {0: 0.1}))
    m.update_requirements(profile(1, {0: 0.1, 1: 0.3}))
    assert 1 in m.graph.nodes[1].receive_c


def test_update_unknown_rejected():
    m = membership()
    with pytest.raises(TreeConstructionError):
        m.update_requirements(profile(9, {0: 0.1}))


def test_noop_update_costs_nothing():
    m = membership()
    m.join(profile(1, {0: 0.1}))
    m.join(profile(2, {0: 0.2}))
    diff = m.update_requirements(profile(2, {0: 0.2}))
    assert diff.unchanged_is_cheap
    assert diff.cost == 0


def test_profile_of_roundtrip():
    m = membership()
    p = profile(1, {0: 0.1})
    m.join(p)
    assert m.profile_of(1).requirements == {0: 0.1}
    with pytest.raises(TreeConstructionError):
        m.profile_of(2)


def test_capacity_respected_across_dynamics():
    m = membership(degree=1)
    for repo in (1, 2, 3):
        m.join(profile(repo, {0: 0.1}))
    m.leave(2)
    for node in m.graph.nodes:
        assert m.graph.n_dependents(node) <= 1

"""Unit tests for data items and the coherency mix."""

import numpy as np
import pytest

from repro.core.items import CoherencyMix, DataItem
from repro.errors import ConfigurationError


def test_data_item_fields():
    item = DataItem(item_id=3, name="MSFT")
    assert item.item_id == 3
    assert item.name == "MSFT"


def test_data_item_negative_id_rejected():
    with pytest.raises(ConfigurationError):
        DataItem(item_id=-1, name="X")


def test_mix_all_stringent():
    mix = CoherencyMix(t_percent=100.0)
    cs = mix.draw(200, np.random.default_rng(0))
    assert (cs >= 0.01).all() and (cs <= 0.099).all()


def test_mix_all_lax():
    mix = CoherencyMix(t_percent=0.0)
    cs = mix.draw(200, np.random.default_rng(0))
    assert (cs >= 0.1).all() and (cs <= 0.999).all()


def test_mix_split_counts_exact():
    mix = CoherencyMix(t_percent=80.0)
    cs = mix.draw(100, np.random.default_rng(1))
    stringent = np.count_nonzero(cs <= 0.099)
    assert stringent == 80


def test_mix_rounding_of_split():
    mix = CoherencyMix(t_percent=50.0)
    cs = mix.draw(5, np.random.default_rng(2))
    stringent = np.count_nonzero(cs <= 0.099)
    assert stringent in (2, 3)  # round(2.5) is banker's-rounded


def test_mix_positions_are_shuffled():
    mix = CoherencyMix(t_percent=50.0)
    cs = mix.draw(100, np.random.default_rng(3))
    # If unshuffled, the first 50 would all be stringent.
    first_half_stringent = np.count_nonzero(cs[:50] <= 0.099)
    assert 5 < first_half_stringent < 45


def test_mix_zero_items():
    mix = CoherencyMix(t_percent=50.0)
    assert mix.draw(0, np.random.default_rng(0)).size == 0


def test_mix_negative_count_rejected():
    mix = CoherencyMix(t_percent=50.0)
    with pytest.raises(ConfigurationError):
        mix.draw(-1, np.random.default_rng(0))


def test_is_stringent_band_membership():
    mix = CoherencyMix(t_percent=50.0)
    assert mix.is_stringent(0.05)
    assert not mix.is_stringent(0.5)


@pytest.mark.parametrize("t", [-1.0, 101.0])
def test_invalid_t_rejected(t):
    with pytest.raises(ConfigurationError):
        CoherencyMix(t_percent=t)


def test_invalid_ranges_rejected():
    with pytest.raises(ConfigurationError):
        CoherencyMix(t_percent=50.0, stringent_range=(0.0, 0.1))
    with pytest.raises(ConfigurationError):
        CoherencyMix(t_percent=50.0, lax_range=(0.5, 0.2))


def test_draw_deterministic_given_rng():
    mix = CoherencyMix(t_percent=30.0)
    a = mix.draw(50, np.random.default_rng(4))
    b = mix.draw(50, np.random.default_rng(4))
    assert np.array_equal(a, b)

"""Unit tests for the LeLA preference factors."""

import pytest

from repro.core.preference import (
    get_preference_function,
    preference_p1,
    preference_p2,
)
from repro.errors import ConfigurationError


def test_p1_prefers_closer_parents():
    assert preference_p1(10.0, 0, 0) < preference_p1(20.0, 0, 0)


def test_p1_prefers_less_loaded_parents():
    assert preference_p1(10.0, 1, 0) < preference_p1(10.0, 5, 0)


def test_p1_prefers_higher_availability():
    assert preference_p1(10.0, 1, 8) < preference_p1(10.0, 1, 2)


def test_p1_handles_zero_availability():
    # No division by zero; a useless parent is simply dispreferred.
    assert preference_p1(10.0, 0, 0) == 10.0


def test_p2_ignores_availability():
    assert preference_p2(10.0, 3, 0) == preference_p2(10.0, 3, 100)


def test_p2_matches_paper_form():
    assert preference_p2(10.0, 3, 0) == 10.0 * 4.0


def test_p1_formula_value():
    assert preference_p1(12.0, 2, 3) == pytest.approx(12.0 * 3.0 / 4.0)


def test_registry_lookup():
    assert get_preference_function("p1") is preference_p1
    assert get_preference_function("P2") is preference_p2


def test_registry_unknown_rejected():
    with pytest.raises(ConfigurationError):
        get_preference_function("p3")


def test_zero_delay_parent_always_wins():
    # A co-located parent (0 ms) beats everyone regardless of load.
    assert preference_p1(0.0, 99, 0) < preference_p1(1.0, 0, 99)

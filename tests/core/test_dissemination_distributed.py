"""Unit tests for the distributed (Eq. 3 + Eq. 7) policy."""

import pytest

from repro.core.dissemination.distributed import (
    DistributedPolicy,
    should_forward_distributed,
)
from repro.errors import DisseminationError


# ----------------------------------------------------------------------
# The pure decision function
# ----------------------------------------------------------------------


def test_eq3_violation_forwards():
    assert should_forward_distributed(1.6, 1.0, c_serve=0.5, parent_receive_c=0.0)


def test_within_tolerance_and_slack_not_forwarded():
    # Deviation 0.1 of tolerance 0.5, parent's own c is 0.3:
    # slack 0.4 >= 0.3, so the child cannot silently drift out of sync.
    assert not should_forward_distributed(1.1, 1.0, c_serve=0.5, parent_receive_c=0.3)


def test_eq7_low_slack_forwards():
    # Deviation 0.4 of tolerance 0.5 leaves slack 0.1 < c_p = 0.3: the
    # next parent-visible update could overshoot without being seen.
    assert should_forward_distributed(1.4, 1.0, c_serve=0.5, parent_receive_c=0.3)


def test_source_semantics_reduce_to_eq3():
    # At the source c_p = 0: Eq. (7) degenerates to Eq. (3).
    assert not should_forward_distributed(1.5, 1.0, c_serve=0.5, parent_receive_c=0.0)
    assert should_forward_distributed(1.51, 1.0, c_serve=0.5, parent_receive_c=0.0)


def test_negative_direction_symmetric():
    assert should_forward_distributed(0.4, 1.0, c_serve=0.5, parent_receive_c=0.0)
    assert should_forward_distributed(0.7, 1.0, c_serve=0.5, parent_receive_c=0.3)


# ----------------------------------------------------------------------
# The stateful policy
# ----------------------------------------------------------------------


def make_policy():
    policy = DistributedPolicy()
    policy.register_edge(parent=0, child=1, item_id=7, c_serve=0.5, initial_value=1.0)
    return policy


def test_at_source_always_disseminates_without_checks():
    policy = make_policy()
    decision = policy.at_source(7, 1.4)
    assert decision.disseminate
    assert decision.tag is None
    assert decision.checks == 0


def test_decide_updates_last_sent_on_forward():
    policy = make_policy()
    first = policy.decide(0, 1, 7, 1.6, parent_receive_c=0.0, tag=None)
    assert first.forward
    # Now 1.6 is the last sent value: 1.7 deviates only 0.1 -> keep.
    second = policy.decide(0, 1, 7, 1.7, parent_receive_c=0.0, tag=None)
    assert not second.forward


def test_decide_keeps_last_sent_on_suppress():
    policy = make_policy()
    assert not policy.decide(0, 1, 7, 1.2, 0.0, None).forward
    assert not policy.decide(0, 1, 7, 1.4, 0.0, None).forward
    # Cumulative drift from the original 1.0 finally crosses 0.5.
    assert policy.decide(0, 1, 7, 1.6, 0.0, None).forward


def test_each_edge_has_independent_state():
    policy = DistributedPolicy()
    policy.register_edge(0, 1, 7, 0.5, 1.0)
    policy.register_edge(0, 2, 7, 0.1, 1.0)
    assert not policy.decide(0, 1, 7, 1.2, 0.0, None).forward
    assert policy.decide(0, 2, 7, 1.2, 0.0, None).forward


def test_unregistered_edge_raises():
    policy = make_policy()
    with pytest.raises(DisseminationError):
        policy.decide(0, 99, 7, 1.0, 0.0, None)


def test_decision_counts_one_check():
    policy = make_policy()
    assert policy.decide(0, 1, 7, 1.1, 0.0, None).checks == 1

"""Unit tests for interest-profile generation."""

import numpy as np
import pytest

from repro.core.interests import InterestProfile, generate_interests
from repro.core.items import CoherencyMix, DataItem
from repro.errors import ConfigurationError


def make_items(n=10):
    return [DataItem(item_id=i, name=f"I{i}") for i in range(n)]


def test_profile_basics():
    profile = InterestProfile(repository=5, requirements={1: 0.05, 3: 0.5})
    assert len(profile) == 2
    assert 1 in profile and 2 not in profile
    assert profile.items == [1, 3]
    assert profile.tolerance(3) == 0.5
    assert profile.most_stringent() == 0.05


def test_empty_profile_most_stringent_none():
    assert InterestProfile(repository=1).most_stringent() is None


def test_profile_rejects_nonpositive_tolerance():
    with pytest.raises(ConfigurationError):
        InterestProfile(repository=1, requirements={0: 0.0})


def test_generate_covers_all_repositories():
    profiles = generate_interests(
        [1, 2, 3], make_items(), CoherencyMix(50.0), np.random.default_rng(0)
    )
    assert sorted(profiles) == [1, 2, 3]
    assert all(p.repository == r for r, p in profiles.items())


def test_generate_subscription_rate_near_half():
    profiles = generate_interests(
        list(range(1, 101)),
        make_items(20),
        CoherencyMix(50.0),
        np.random.default_rng(1),
    )
    total = sum(len(p) for p in profiles.values())
    assert 800 < total < 1200  # ~1000 expected


def test_generate_never_empty_by_default():
    profiles = generate_interests(
        list(range(1, 51)),
        make_items(1),  # single item: ~half the repos would draw nothing
        CoherencyMix(50.0),
        np.random.default_rng(2),
    )
    assert all(len(p) >= 1 for p in profiles.values())


def test_generate_tolerances_respect_mix():
    profiles = generate_interests(
        list(range(1, 21)),
        make_items(),
        CoherencyMix(100.0),
        np.random.default_rng(3),
    )
    for p in profiles.values():
        assert all(c <= 0.099 for c in p.requirements.values())


def test_generate_full_subscription():
    profiles = generate_interests(
        [1, 2],
        make_items(5),
        CoherencyMix(50.0),
        np.random.default_rng(4),
        subscription_probability=1.0,
    )
    assert all(len(p) == 5 for p in profiles.values())


def test_generate_invalid_probability_rejected():
    with pytest.raises(ConfigurationError):
        generate_interests(
            [1], make_items(), CoherencyMix(50.0), np.random.default_rng(0),
            subscription_probability=0.0,
        )


def test_generate_no_items_rejected():
    with pytest.raises(ConfigurationError):
        generate_interests([1], [], CoherencyMix(50.0), np.random.default_rng(0))


def test_generate_deterministic():
    a = generate_interests(
        [1, 2, 3], make_items(), CoherencyMix(50.0), np.random.default_rng(7)
    )
    b = generate_interests(
        [1, 2, 3], make_items(), CoherencyMix(50.0), np.random.default_rng(7)
    )
    assert {r: p.requirements for r, p in a.items()} == {
        r: p.requirements for r, p in b.items()
    }

"""Unit tests for the LeLA construction algorithm."""

import numpy as np
import pytest

from repro.core.interests import InterestProfile
from repro.core.lela import LelaBuilder, build_d3g
from repro.core.preference import preference_p2
from repro.errors import TreeConstructionError


def flat_delay(u, v):
    """Every node pair 10 ms apart -- preference reduces to load."""
    return 0.0 if u == v else 10.0


def profile(repo, reqs):
    return InterestProfile(repository=repo, requirements=reqs)


def test_first_repository_lands_at_level_one():
    graph = build_d3g([profile(1, {0: 0.1})], 0, flat_delay, offered_degree=4)
    assert graph.nodes[1].level == 1
    assert graph.nodes[1].parent_for[0] == 0


def test_source_capacity_forces_second_level():
    profiles = [profile(r, {0: 0.1}) for r in (1, 2, 3)]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=2)
    levels = [graph.nodes[r].level for r in (1, 2, 3)]
    assert levels == [1, 1, 2]
    # The third repository is served by a level-1 repository.
    assert graph.nodes[3].parent_for[0] in (1, 2)


def test_chain_when_degree_is_one():
    profiles = [profile(r, {0: 0.1}) for r in range(1, 6)]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=1)
    assert graph.stats().max_depth == 5
    assert all(graph.n_dependents(n) <= 1 for n in graph.nodes)


def test_star_when_degree_huge():
    profiles = [profile(r, {0: 0.1}) for r in range(1, 11)]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=100)
    assert all(graph.nodes[r].level == 1 for r in range(1, 11))
    assert graph.n_dependents(0) == 10


def test_eq1_holds_on_every_edge():
    rng = np.random.default_rng(0)
    profiles = [
        profile(r, {i: float(rng.uniform(0.01, 0.9)) for i in range(4)})
        for r in range(1, 16)
    ]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=3)
    graph.validate(max_dependents={n: 3 for n in graph.nodes})


def test_every_interest_is_served():
    rng = np.random.default_rng(1)
    profiles = []
    for r in range(1, 21):
        wanted = rng.choice(6, size=3, replace=False)
        profiles.append(
            profile(r, {int(i): float(rng.uniform(0.05, 0.5)) for i in wanted})
        )
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=3)
    for p in profiles:
        for item_id in p.requirements:
            assert item_id in graph.nodes[p.repository].receive_c
            assert graph.item_depth(p.repository, item_id) >= 1


def test_augmentation_creates_path_to_source():
    # Repo 1 only wants item A; repo 2 wants items A and B and must be
    # served by repo 1 (source full), forcing 1 to acquire B.
    profiles = [profile(1, {0: 0.1}), profile(2, {0: 0.2, 1: 0.3})]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=1)
    assert graph.nodes[2].level == 2
    assert graph.nodes[2].parent_for[1] == 1
    # Node 1 now relays item 1 even though its users never asked for it.
    assert 1 in graph.nodes[1].receive_c
    assert 1 not in graph.nodes[1].own_c
    assert graph.nodes[1].receive_c[1] <= 0.3


def test_augmentation_tightens_existing_subscription():
    # Repo 1 holds item 0 laxly; repo 2 needs it tighter through repo 1.
    profiles = [profile(1, {0: 0.5}), profile(2, {0: 0.05})]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=1)
    assert graph.nodes[2].parent_for[0] == 1
    assert graph.nodes[1].receive_c[0] <= 0.05


def test_augmentation_cascades_two_levels():
    profiles = [
        profile(1, {0: 0.1}),
        profile(2, {0: 0.1}),
        profile(3, {0: 0.1, 1: 0.2}),
    ]
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=1)
    # Chain 0 -> 1 -> 2 -> 3; item 1 must now flow through both 1 and 2.
    assert graph.item_depth(3, 1) == 3
    assert 1 in graph.nodes[1].receive_c
    assert 1 in graph.nodes[2].receive_c
    graph.validate()


def test_capacity_never_exceeded():
    rng = np.random.default_rng(2)
    profiles = [
        profile(r, {i: float(rng.uniform(0.05, 0.5)) for i in range(3)})
        for r in range(1, 31)
    ]
    for degree in (1, 2, 5):
        graph = build_d3g(profiles, 0, flat_delay, offered_degree=degree)
        for node in graph.nodes:
            assert graph.n_dependents(node) <= degree


def test_p_percent_widens_parent_set():
    # With distinct delays, P=0 admits only the single best parent while
    # a huge P admits several, splitting the item set.
    def delays(u, v):
        if u == v:
            return 0.0
        return 10.0 + abs(u - v)

    profiles = [
        profile(1, {0: 0.1, 1: 0.1}),
        profile(2, {0: 0.2, 1: 0.2}),
        profile(3, {0: 0.3, 1: 0.3}),
    ]
    narrow = LelaBuilder(0, delays, {n: 10 for n in range(4)}, p_percent=0.0)
    for p in profiles:
        narrow.insert(p)
    wide = LelaBuilder(0, delays, {n: 10 for n in range(4)}, p_percent=200.0)
    for p in profiles:
        wide.insert(p)
    # Both must be valid regardless.
    narrow.graph.validate()
    wide.graph.validate()


def test_alternative_preference_function_builds_valid_graph():
    profiles = [profile(r, {0: 0.1, 1: 0.5}) for r in range(1, 11)]
    graph = build_d3g(
        profiles, 0, flat_delay, offered_degree=3, preference=preference_p2
    )
    graph.validate(max_dependents={n: 3 for n in graph.nodes})


def test_empty_needs_rejected():
    builder = LelaBuilder(0, flat_delay, {0: 4})
    with pytest.raises(TreeConstructionError):
        builder.insert(InterestProfile(repository=1))


def test_negative_p_percent_rejected():
    with pytest.raises(TreeConstructionError):
        LelaBuilder(0, flat_delay, {0: 4}, p_percent=-1.0)


def test_per_node_degree_mapping():
    profiles = [profile(r, {0: 0.1}) for r in range(1, 5)]
    budgets = {0: 1, 1: 1, 2: 1, 3: 1, 4: 1}
    graph = build_d3g(profiles, 0, flat_delay, offered_degree=budgets)
    assert graph.stats().max_depth == 4


def test_deterministic_given_rng():
    rng_profiles = np.random.default_rng(3)
    profiles = [
        profile(r, {i: float(rng_profiles.uniform(0.05, 0.5)) for i in range(3)})
        for r in range(1, 16)
    ]
    a = build_d3g(profiles, 0, flat_delay, 3, rng=np.random.default_rng(9))
    b = build_d3g(profiles, 0, flat_delay, 3, rng=np.random.default_rng(9))
    assert {n: s.parent_for for n, s in a.nodes.items()} == {
        n: s.parent_for for n, s in b.nodes.items()
    }

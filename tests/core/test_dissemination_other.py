"""Unit tests for the flooding and Eq.-3-only policies, and the registry."""

import pytest

from repro.core.dissemination import available_policies, make_policy
from repro.core.dissemination.eq3only import Eq3OnlyPolicy
from repro.core.dissemination.flooding import FloodingPolicy
from repro.errors import ConfigurationError, DisseminationError


def test_flooding_forwards_every_distinct_value():
    policy = FloodingPolicy()
    policy.register_edge(0, 1, 7, 0.5, 1.0)
    assert policy.decide(0, 1, 7, 1.01, 0.0, None).forward
    assert policy.decide(0, 1, 7, 1.02, 0.0, None).forward


def test_flooding_skips_pure_repeats():
    policy = FloodingPolicy()
    policy.register_edge(0, 1, 7, 0.5, 1.0)
    assert not policy.decide(0, 1, 7, 1.0, 0.0, None).forward  # initial repeat
    assert policy.decide(0, 1, 7, 1.5, 0.0, None).forward
    assert not policy.decide(0, 1, 7, 1.5, 0.0, None).forward


def test_flooding_source_passthrough():
    policy = FloodingPolicy()
    decision = policy.at_source(7, 2.0)
    assert decision.disseminate and decision.checks == 0


def test_eq3_only_suppresses_within_tolerance():
    policy = Eq3OnlyPolicy()
    policy.register_edge(0, 1, 7, 0.5, 1.0)
    assert not policy.decide(0, 1, 7, 1.4, 0.3, None).forward
    assert policy.decide(0, 1, 7, 1.6, 0.3, None).forward


def test_eq3_only_ignores_parent_receive_c():
    # This is exactly what makes it unsound: a tiny remaining slack does
    # not trigger a forward.
    policy = Eq3OnlyPolicy()
    policy.register_edge(0, 1, 7, 0.5, 1.0)
    assert not policy.decide(0, 1, 7, 1.49, parent_receive_c=0.3, tag=None).forward


def test_eq3_only_unregistered_edge_raises():
    policy = Eq3OnlyPolicy()
    with pytest.raises(DisseminationError):
        policy.decide(0, 1, 7, 1.0, 0.0, None)


def test_registry_names():
    assert available_policies() == [
        "centralized",
        "distributed",
        "eq3_only",
        "flooding",
    ]


def test_registry_constructs_fresh_instances():
    a = make_policy("distributed")
    b = make_policy("distributed")
    assert a is not b
    assert a.name == "distributed"


def test_registry_case_insensitive():
    assert make_policy("FLOODING").name == "flooding"


def test_registry_unknown_rejected():
    with pytest.raises(ConfigurationError):
        make_policy("gossip")

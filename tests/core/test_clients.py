"""Tests for the client layer and requirement derivation."""

import numpy as np
import pytest

from repro.core.clients import Client, ClientPopulation, derive_repository_profiles
from repro.core.items import CoherencyMix, DataItem
from repro.errors import ConfigurationError


def make_items(n=5):
    return [DataItem(item_id=i, name=f"I{i}") for i in range(n)]


def test_client_rejects_nonpositive_tolerance():
    with pytest.raises(ConfigurationError):
        Client(client_id=0, repository=1, requirements={0: 0.0})


def test_population_indexing():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.1}),
            Client(1, repository=1, requirements={0: 0.5}),
            Client(2, repository=2, requirements={1: 0.2}),
        ]
    )
    assert len(pop) == 3
    assert len(pop.at_repository(1)) == 2
    assert pop.repositories() == [1, 2]


def test_derivation_takes_most_stringent():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.5, 1: 0.2}),
            Client(1, repository=1, requirements={0: 0.05}),
        ]
    )
    profiles = derive_repository_profiles(pop)
    assert profiles[1].requirements == {0: 0.05, 1: 0.2}


def test_derivation_keeps_repositories_separate():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.5}),
            Client(1, repository=2, requirements={0: 0.05}),
        ]
    )
    profiles = derive_repository_profiles(pop)
    assert profiles[1].requirements[0] == 0.5
    assert profiles[2].requirements[0] == 0.05


def test_derivation_empty_population():
    assert derive_repository_profiles(ClientPopulation()) == {}


def test_satisfied_by_threshold():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.1}),
            Client(1, repository=1, requirements={0: 0.5}),
        ]
    )
    # Achieving 0.3 satisfies only the lax client.
    satisfied = pop.satisfied_by(1, 0, achieved_c=0.3)
    assert [c.client_id for c in satisfied] == [1]
    # Achieving the derived minimum satisfies everyone.
    assert len(pop.satisfied_by(1, 0, achieved_c=0.1)) == 2


def test_generate_population_shape():
    pop = ClientPopulation.generate(
        repositories=[1, 2, 3],
        items=make_items(),
        mix=CoherencyMix(50.0),
        rng=np.random.default_rng(0),
        clients_per_repository=4,
    )
    assert len(pop) == 12
    assert pop.repositories() == [1, 2, 3]
    assert all(len(c.requirements) >= 1 for c in pop.clients)


def test_generate_validation():
    with pytest.raises(ConfigurationError):
        ClientPopulation.generate(
            [1], make_items(), CoherencyMix(50.0), np.random.default_rng(0),
            clients_per_repository=0,
        )
    with pytest.raises(ConfigurationError):
        ClientPopulation.generate(
            [1], make_items(), CoherencyMix(50.0), np.random.default_rng(0),
            subscription_probability=0.0,
        )


def test_generated_derivation_feeds_lela():
    from repro.core.lela import build_d3g

    pop = ClientPopulation.generate(
        repositories=[1, 2, 3, 4],
        items=make_items(),
        mix=CoherencyMix(80.0),
        rng=np.random.default_rng(1),
    )
    profiles = derive_repository_profiles(pop)
    graph = build_d3g(
        list(profiles.values()),
        source=0,
        comm_delay_ms=lambda u, v: 0.0 if u == v else 10.0,
        offered_degree=3,
    )
    graph.validate()
    # Every repository receives at a coherency meeting every client.
    for repo, profile in profiles.items():
        for item_id in profile.requirements:
            achieved = graph.nodes[repo].receive_c[item_id]
            unsatisfied = [
                c
                for c in pop.at_repository(repo)
                if item_id in c.requirements
                and achieved > c.requirements[item_id]
            ]
            assert not unsatisfied

"""Tests for the client layer and requirement derivation."""

import numpy as np
import pytest

from repro.core.clients import (
    Client,
    ClientPopulation,
    derive_repository_profiles,
    requirement_report,
)
from repro.core.items import CoherencyMix, DataItem
from repro.errors import ConfigurationError


def make_items(n=5):
    return [DataItem(item_id=i, name=f"I{i}") for i in range(n)]


def test_client_rejects_nonpositive_tolerance():
    with pytest.raises(ConfigurationError):
        Client(client_id=0, repository=1, requirements={0: 0.0})


def test_population_indexing():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.1}),
            Client(1, repository=1, requirements={0: 0.5}),
            Client(2, repository=2, requirements={1: 0.2}),
        ]
    )
    assert len(pop) == 3
    assert len(pop.at_repository(1)) == 2
    assert pop.repositories() == [1, 2]


def test_derivation_takes_most_stringent():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.5, 1: 0.2}),
            Client(1, repository=1, requirements={0: 0.05}),
        ]
    )
    profiles = derive_repository_profiles(pop)
    assert profiles[1].requirements == {0: 0.05, 1: 0.2}


def test_derivation_keeps_repositories_separate():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.5}),
            Client(1, repository=2, requirements={0: 0.05}),
        ]
    )
    profiles = derive_repository_profiles(pop)
    assert profiles[1].requirements[0] == 0.5
    assert profiles[2].requirements[0] == 0.05


def test_derivation_empty_population():
    assert derive_repository_profiles(ClientPopulation()) == {}


def test_satisfied_by_threshold():
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.1}),
            Client(1, repository=1, requirements={0: 0.5}),
        ]
    )
    # Achieving 0.3 satisfies only the lax client.
    satisfied = pop.satisfied_by(1, 0, achieved_c=0.3)
    assert [c.client_id for c in satisfied] == [1]
    # Achieving the derived minimum satisfies everyone.
    assert len(pop.satisfied_by(1, 0, achieved_c=0.1)) == 2


def test_generate_population_shape():
    pop = ClientPopulation.generate(
        repositories=[1, 2, 3],
        items=make_items(),
        mix=CoherencyMix(50.0),
        rng=np.random.default_rng(0),
        clients_per_repository=4,
    )
    assert len(pop) == 12
    assert pop.repositories() == [1, 2, 3]
    assert all(len(c.requirements) >= 1 for c in pop.clients)


def test_generate_validation():
    with pytest.raises(ConfigurationError):
        ClientPopulation.generate(
            [1], make_items(), CoherencyMix(50.0), np.random.default_rng(0),
            clients_per_repository=0,
        )
    with pytest.raises(ConfigurationError):
        ClientPopulation.generate(
            [1], make_items(), CoherencyMix(50.0), np.random.default_rng(0),
            subscription_probability=0.0,
        )


def test_derivation_most_stringent_tie_and_order_independence():
    """Aggregation edge cases: exact ties and client-order invariance."""
    tied = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.2}),
            Client(1, repository=1, requirements={0: 0.2}),
        ]
    )
    assert derive_repository_profiles(tied)[1].requirements == {0: 0.2}

    forward = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.5, 1: 0.3}),
            Client(1, repository=1, requirements={0: 0.05}),
            Client(2, repository=2, requirements={1: 0.7}),
        ]
    )
    backward = ClientPopulation(clients=list(reversed(forward.clients)))
    assert {
        r: p.requirements for r, p in derive_repository_profiles(forward).items()
    } == {
        r: p.requirements for r, p in derive_repository_profiles(backward).items()
    }


def test_derivation_single_client_is_identity():
    pop = ClientPopulation(
        clients=[Client(0, repository=3, requirements={0: 0.4, 2: 0.1})]
    )
    profiles = derive_repository_profiles(pop)
    assert list(profiles) == [3]
    assert profiles[3].requirements == {0: 0.4, 2: 0.1}
    # The derived profile is a copy of no one client's dict identity-wise
    # but equals the single client's requirements value-wise.
    assert profiles[3].requirements == pop.clients[0].requirements


def test_round_trip_clients_profiles_achieved_report():
    """Satellite round trip: clients -> derived profiles -> achieved
    tolerances -> per-client requirement-met report."""
    pop = ClientPopulation(
        clients=[
            Client(0, repository=1, requirements={0: 0.1, 1: 0.5}),
            Client(1, repository=1, requirements={0: 0.4}),
            Client(2, repository=2, requirements={1: 0.2}),
            Client(3, repository=2, requirements={2: 0.3}),
        ]
    )
    profiles = derive_repository_profiles(pop)
    # Most-stringent aggregation per (repository, item).
    assert profiles[1].requirements == {0: 0.1, 1: 0.5}
    assert profiles[2].requirements == {1: 0.2, 2: 0.3}

    # A deployment that achieves exactly the derived requirements meets
    # every client (the derived value is the minimum over clients).
    achieved = {
        (repo, item_id): c
        for repo, profile in profiles.items()
        for item_id, c in profile.requirements.items()
    }
    report = requirement_report(pop, achieved)
    assert report == {
        0: {0: True, 1: True},
        1: {0: True},
        2: {1: True},
        3: {2: True},
    }

    # Degrade repository 1's item 0 to 0.25: the stringent client (0.1)
    # loses service, the lax one (0.4) keeps it.
    achieved[(1, 0)] = 0.25
    degraded = requirement_report(pop, achieved)
    assert degraded[0] == {0: False, 1: True}
    assert degraded[1] == {0: True}

    # An item the repository achieves nothing for is unmet.
    del achieved[(2, 2)]
    assert requirement_report(pop, achieved)[3] == {2: False}


def test_requirement_report_boundary_is_inclusive():
    """Achieving exactly the client's tolerance meets it (c <= need)."""
    pop = ClientPopulation(
        clients=[Client(0, repository=1, requirements={0: 0.3})]
    )
    assert requirement_report(pop, {(1, 0): 0.3})[0] == {0: True}
    assert requirement_report(pop, {(1, 0): 0.3 + 1e-6})[0] == {0: False}


def test_requirement_report_agrees_with_satisfied_by():
    rng = np.random.default_rng(7)
    pop = ClientPopulation.generate(
        repositories=[1, 2, 3],
        items=make_items(),
        mix=CoherencyMix(80.0),
        rng=rng,
    )
    achieved = {
        (repo, item_id): float(rng.uniform(0.01, 1.0))
        for repo in pop.repositories()
        for item_id in range(5)
    }
    report = requirement_report(pop, achieved)
    for (repo, item_id), c in achieved.items():
        satisfied = {cl.client_id for cl in pop.satisfied_by(repo, item_id, c)}
        for client in pop.at_repository(repo):
            if item_id in client.requirements:
                assert report[client.client_id][item_id] == (
                    client.client_id in satisfied
                )


def test_generated_derivation_feeds_lela():
    from repro.core.lela import build_d3g

    pop = ClientPopulation.generate(
        repositories=[1, 2, 3, 4],
        items=make_items(),
        mix=CoherencyMix(80.0),
        rng=np.random.default_rng(1),
    )
    profiles = derive_repository_profiles(pop)
    graph = build_d3g(
        list(profiles.values()),
        source=0,
        comm_delay_ms=lambda u, v: 0.0 if u == v else 10.0,
        offered_degree=3,
    )
    graph.validate()
    # Every repository receives at a coherency meeting every client.
    for repo, profile in profiles.items():
        for item_id in profile.requirements:
            achieved = graph.nodes[repo].receive_c[item_id]
            unsatisfied = [
                c
                for c in pop.at_repository(repo)
                if item_id in c.requirements
                and achieved > c.requirements[item_id]
            ]
            assert not unsatisfied

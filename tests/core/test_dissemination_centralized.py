"""Unit tests for the centralised (source-based, tagging) policy."""

import pytest

from repro.core.dissemination.centralized import CentralizedPolicy, tag_for_update
from repro.errors import DisseminationError


def make_policy():
    """Three repositories at tolerances 0.1 / 0.3 / 0.5, initial value 1.0."""
    policy = CentralizedPolicy()
    policy.register_edge(0, 1, 7, 0.1, 1.0)
    policy.register_edge(0, 2, 7, 0.3, 1.0)
    policy.register_edge(2, 3, 7, 0.5, 1.0)
    return policy


def test_unique_tolerances_sorted_and_deduped():
    policy = make_policy()
    policy.register_edge(1, 4, 7, 0.3, 1.0)  # duplicate 0.3
    assert policy.unique_tolerances(7) == [0.1, 0.3, 0.5]


def test_tag_for_update_picks_max_violated():
    last = {0.1: 1.0, 0.3: 1.0, 0.5: 1.0}
    assert tag_for_update(1.35, [0.1, 0.3, 0.5], last) == 0.3
    assert tag_for_update(1.05, [0.1, 0.3, 0.5], last) is None
    assert tag_for_update(2.0, [0.1, 0.3, 0.5], last) == 0.5


def test_at_source_counts_one_check_per_unique_tolerance():
    policy = make_policy()
    decision = policy.at_source(7, 1.2)
    assert decision.checks == 3


def test_at_source_tags_and_records_last_sent():
    policy = make_policy()
    decision = policy.at_source(7, 1.35)
    assert decision.disseminate
    assert decision.tag == pytest.approx(0.3)
    # Tolerances <= tag saw the new value; 0.5 still anchors at 1.0.
    follow_up = policy.at_source(7, 1.46)
    # 1.46: vs 1.35 -> 0.11 > 0.1 violated; vs 1.0 -> 0.46 < 0.5 not.
    assert follow_up.tag == pytest.approx(0.1)


def test_at_source_drops_uninteresting_update():
    policy = make_policy()
    decision = policy.at_source(7, 1.05)
    assert not decision.disseminate
    assert decision.tag is None
    assert decision.checks == 3


def test_at_source_unknown_item_drops():
    policy = make_policy()
    decision = policy.at_source(99, 1.0)
    assert not decision.disseminate
    assert decision.checks == 0


def test_decide_forwards_by_tag_threshold():
    policy = make_policy()
    decision = policy.at_source(7, 1.35)  # tag 0.3
    assert policy.decide(0, 1, 7, 1.35, 0.0, decision.tag).forward  # c=0.1
    assert policy.decide(0, 2, 7, 1.35, 0.0, decision.tag).forward  # c=0.3
    assert not policy.decide(2, 3, 7, 1.35, 0.3, decision.tag).forward  # c=0.5


def test_decide_requires_tag():
    policy = make_policy()
    with pytest.raises(DisseminationError):
        policy.decide(0, 1, 7, 1.35, 0.0, None)


def test_decide_unregistered_edge_raises():
    policy = make_policy()
    decision = policy.at_source(7, 2.0)
    with pytest.raises(DisseminationError):
        policy.decide(0, 99, 7, 2.0, 0.0, decision.tag)


def test_cumulative_small_moves_eventually_tagged():
    policy = make_policy()
    values = [1.02, 1.04, 1.06, 1.08, 1.11]
    tags = [policy.at_source(7, v).tag for v in values]
    assert tags[:4] == [None, None, None, None]
    assert tags[4] == pytest.approx(0.1)


def test_float_noise_in_tolerances_collapses():
    policy = CentralizedPolicy()
    policy.register_edge(0, 1, 7, 0.1, 1.0)
    policy.register_edge(0, 2, 7, 0.1 + 1e-12, 1.0)
    assert len(policy.unique_tolerances(7)) == 1

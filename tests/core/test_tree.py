"""Unit tests for the dissemination graph structure."""

import pytest

from repro.core.tree import DisseminationGraph
from repro.errors import TreeConstructionError


def simple_graph():
    """source(0) -> A(1) -> B(2), item 7 at c=0.1 / 0.5."""
    graph = DisseminationGraph(source=0)
    graph.add_node(1, level=1, own_c={7: 0.1})
    graph.connect(0, 1, 7, 0.1)
    graph.add_node(2, level=2, own_c={7: 0.5})
    graph.connect(1, 2, 7, 0.5)
    return graph


def test_source_always_receives_at_zero():
    graph = simple_graph()
    assert graph.receive_c(0, 7) == 0.0
    assert graph.receive_c(0, 999) == 0.0


def test_connect_sets_parent_and_children():
    graph = simple_graph()
    assert graph.nodes[2].parent_for[7] == 1
    assert graph.children_for_item(1, 7) == [(2, 0.5)]
    assert graph.children_for_item(0, 7) == [(1, 0.1)]


def test_n_dependents_counts_push_connections_not_items():
    graph = DisseminationGraph(source=0)
    graph.add_node(1, level=1, own_c={1: 0.1, 2: 0.2})
    graph.connect(0, 1, 1, 0.1)
    graph.connect(0, 1, 2, 0.2)
    assert graph.n_dependents(0) == 1  # one child, two items


def test_duplicate_node_rejected():
    graph = simple_graph()
    with pytest.raises(TreeConstructionError):
        graph.add_node(1, level=1, own_c={})


def test_level_skipping_rejected():
    graph = DisseminationGraph(source=0)
    with pytest.raises(TreeConstructionError):
        graph.add_node(1, level=2, own_c={})


def test_repository_at_level_zero_rejected():
    graph = DisseminationGraph(source=0)
    with pytest.raises(TreeConstructionError):
        graph.add_node(1, level=0, own_c={})


def test_second_parent_for_same_item_rejected():
    graph = simple_graph()
    graph.add_node(3, level=1, own_c={7: 0.05})
    graph.connect(0, 3, 7, 0.05)
    with pytest.raises(TreeConstructionError):
        graph.connect(3, 2, 7, 0.5)  # node 2 already served by 1


def test_parent_without_item_rejected():
    graph = DisseminationGraph(source=0)
    graph.add_node(1, level=1, own_c={1: 0.1})
    graph.connect(0, 1, 1, 0.1)
    graph.add_node(2, level=2, own_c={2: 0.1})
    with pytest.raises(TreeConstructionError):
        graph.connect(1, 2, 2, 0.1)  # node 1 does not receive item 2


def test_laxer_parent_rejected_eq1():
    graph = DisseminationGraph(source=0)
    graph.add_node(1, level=1, own_c={7: 0.5})
    graph.connect(0, 1, 7, 0.5)
    graph.add_node(2, level=2, own_c={7: 0.1})
    with pytest.raises(TreeConstructionError):
        graph.connect(1, 2, 7, 0.1)  # parent receives at 0.5 > 0.1


def test_tighten_lowers_receive_c():
    graph = simple_graph()
    graph.tighten(1, 7, 0.05)
    assert graph.receive_c(1, 7) == 0.05


def test_tighten_never_loosens():
    graph = simple_graph()
    graph.tighten(1, 7, 0.9)
    assert graph.receive_c(1, 7) == 0.1


def test_tighten_unknown_item_rejected():
    graph = simple_graph()
    with pytest.raises(TreeConstructionError):
        graph.tighten(1, 99, 0.05)


def test_item_tree_and_depth():
    graph = simple_graph()
    assert graph.item_tree(7) == {1: 0, 2: 1}
    assert graph.item_depth(1, 7) == 1
    assert graph.item_depth(2, 7) == 2


def test_interested_repositories():
    graph = simple_graph()
    assert sorted(graph.interested_repositories(7)) == [1, 2]
    assert graph.interested_repositories(99) == []


def test_stats_shape():
    graph = simple_graph()
    stats = graph.stats()
    assert stats.n_nodes == 3
    assert stats.n_levels == 3
    assert stats.max_depth == 2
    assert stats.diameter_hops == 2
    assert stats.max_dependents == 1


def test_validate_accepts_wellformed():
    simple_graph().validate()


def test_validate_catches_capacity_violation():
    graph = simple_graph()
    with pytest.raises(TreeConstructionError):
        graph.validate(max_dependents={0: 0})


def test_validate_catches_receive_laxer_than_own():
    graph = simple_graph()
    # Corrupt: node receives more laxly than its own users need.
    graph.nodes[2].receive_c[7] = 0.9
    with pytest.raises(TreeConstructionError):
        graph.validate()


def test_validate_catches_eq1_violation():
    graph = simple_graph()
    graph.nodes[1].receive_c[7] = 0.7  # now laxer than child's 0.5
    graph.nodes[1].own_c[7] = 0.7
    with pytest.raises(TreeConstructionError):
        graph.validate()


def test_repositories_listing():
    graph = simple_graph()
    assert graph.repositories == [1, 2]

"""Unit tests for the Eq. (2) degree-of-cooperation heuristic."""

import pytest

from repro.core.cooperation import coop_degree
from repro.errors import ConfigurationError


def test_base_case_matches_footnote_f50():
    # Paper footnote: base-case delays (comm ~25 ms, comp 12.5 ms) with
    # f=50 give a degree around 10.
    assert coop_degree(25.0, 12.5, f=50.0) == 10


def test_base_case_matches_footnote_f100():
    # ... and f=100 gives a degree around 5.
    assert coop_degree(25.0, 12.5, f=100.0) == 5


def test_degree_in_paper_optimum_band():
    # The paper's base-case optimum lies between 3 and 20 dependents.
    assert 3 <= coop_degree(25.0, 12.5) <= 20


def test_proportional_to_comm_delay():
    degrees = [coop_degree(c, 12.5) for c in (10.0, 25.0, 50.0, 100.0)]
    assert degrees == sorted(degrees)
    assert degrees[-1] > degrees[0]


def test_inversely_proportional_to_comp_delay():
    degrees = [coop_degree(25.0, c) for c in (2.0, 5.0, 12.5, 25.0)]
    assert degrees == sorted(degrees, reverse=True)
    assert degrees[0] > degrees[-1]


def test_clamped_to_c_resources():
    assert coop_degree(1000.0, 1.0, c_resources=30) == 30


def test_clamped_below_at_one():
    assert coop_degree(0.1, 100.0) == 1


def test_zero_comp_delay_maxes_out():
    assert coop_degree(25.0, 0.0, c_resources=64) == 64


def test_zero_comm_delay_gives_one():
    assert coop_degree(0.0, 12.5) == 1


def test_insensitive_to_large_f():
    # Doubling f beyond 50 halves the degree but keeps it >= 1; the
    # formula itself must stay monotone in f.
    d50 = coop_degree(25.0, 12.5, f=50.0)
    d100 = coop_degree(25.0, 12.5, f=100.0)
    d200 = coop_degree(25.0, 12.5, f=200.0)
    assert d50 >= d100 >= d200 >= 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"f": 0.0},
        {"f": -5.0},
        {"c_resources": 0},
        {"avg_comm_delay_ms": -1.0},
        {"avg_comp_delay_ms": -1.0},
    ],
)
def test_invalid_inputs_rejected(kwargs):
    args = {"avg_comm_delay_ms": 25.0, "avg_comp_delay_ms": 12.5}
    args.update(kwargs)
    with pytest.raises(ConfigurationError):
        coop_degree(**args)


def test_returns_int():
    assert isinstance(coop_degree(25.0, 12.5), int)

"""Unit tests for the shared coherency-filter helpers."""

import pytest

from repro.core.dissemination.filtering import (
    EdgeFilter,
    SourceTagger,
    forward_centralized,
    forward_distributed,
    forward_eq3_only,
    forward_flooding,
    quantise_tolerance,
    tag_for_update,
)
from repro.errors import ConfigurationError, DisseminationError


def test_forward_distributed_eq3_and_eq7():
    # Eq. (3): plain violation.
    assert forward_distributed(1.6, 1.0, c_serve=0.5, parent_receive_c=0.0)
    assert not forward_distributed(1.4, 1.0, c_serve=0.5, parent_receive_c=0.0)
    # Eq. (7): slack shrunk below the parent's receive coherency.
    assert forward_distributed(1.4, 1.0, c_serve=0.5, parent_receive_c=0.3)
    assert not forward_distributed(1.1, 1.0, c_serve=0.5, parent_receive_c=0.3)


def test_forward_eq3_only_ignores_parent_coherency():
    assert not forward_eq3_only(1.4, 1.0, c_serve=0.5)
    assert forward_eq3_only(1.6, 1.0, c_serve=0.5)


def test_forward_flooding_skips_repeats_only():
    assert forward_flooding(1.0, 2.0)
    assert not forward_flooding(2.0, 2.0)


def test_forward_centralized_prunes_by_tag():
    assert forward_centralized(0.3, tag=0.3)
    assert forward_centralized(0.1, tag=0.3)
    assert not forward_centralized(0.5, tag=0.3)


def test_tag_for_update_picks_max_violated():
    last = {0.1: 1.0, 0.3: 1.0, 0.5: 1.0}
    assert tag_for_update(1.35, [0.1, 0.3, 0.5], last) == 0.3
    assert tag_for_update(1.05, [0.1, 0.3, 0.5], last) is None
    assert tag_for_update(2.0, [0.1, 0.3, 0.5], last) == 0.5


def test_quantise_collapses_float_dust():
    assert quantise_tolerance(0.1 + 0.2) == quantise_tolerance(0.3)


def test_edge_filter_rejects_unknown_policy():
    with pytest.raises(ConfigurationError):
        EdgeFilter("gossip", 0.5, 1.0)


def test_edge_filter_updates_state_only_on_forward():
    filt = EdgeFilter("distributed", 0.5, 1.0)
    assert not filt.decide(1.3)
    assert filt.last_sent == 1.0  # suppressed: state untouched
    assert filt.decide(1.6)
    assert filt.last_sent == 1.6  # forwarded: state moved


def test_edge_filter_centralized_requires_tag():
    filt = EdgeFilter("centralized", 0.5, 1.0)
    with pytest.raises(DisseminationError):
        filt.decide(2.0)
    assert filt.decide(2.0, tag=0.5)


def test_source_tagger_tracks_unique_tolerances():
    tagger = SourceTagger()
    tagger.add_tolerance(0, 0.3, 1.0)
    tagger.add_tolerance(0, 0.1, 1.0)
    tagger.add_tolerance(0, 0.3, 1.0)  # duplicate: idempotent
    assert tagger.unique_tolerances(0) == [0.1, 0.3]
    tagger.remove_tolerance(0, 0.1)
    assert tagger.unique_tolerances(0) == [0.3]
    tagger.remove_tolerance(0, 0.1)  # idempotent


def test_source_tagger_examination_marks_covered_tolerances():
    tagger = SourceTagger()
    for c in (0.1, 0.3, 0.5):
        tagger.add_tolerance(0, c, 1.0)
    decision = tagger.examine(0, 1.35)
    assert decision.disseminate and decision.tag == 0.3
    assert decision.checks == 3
    # 1.35 was recorded for 0.1 and 0.3 but not 0.5: a follow-up 1.3
    # violates nothing.
    follow_up = tagger.examine(0, 1.3)
    assert not follow_up.disseminate and follow_up.checks == 3


def test_source_tagger_without_tolerances_drops_updates():
    decision = SourceTagger().examine(7, 123.0)
    assert not decision.disseminate and decision.checks == 0


# ---------------------------------------------------------------------------
# Float edge cases: NaN would make the policies silently diverge.
# ---------------------------------------------------------------------------


def test_nan_updates_would_split_the_policies():
    """The divergence that motivates ingestion-time rejection: flooding's
    ``!=`` test forwards a NaN on *every* update (NaN != anything),
    while Eq. (3)/Eq. (7) comparisons never fire on NaN -- so the same
    NaN-bearing trace would flood one policy and starve the others."""
    nan = float("nan")
    assert forward_flooding(nan, 1.0)
    assert forward_flooding(nan, nan)  # even vs itself: floods forever
    assert not forward_eq3_only(nan, 1.0, c_serve=0.5)
    assert not forward_distributed(nan, 1.0, c_serve=0.5, parent_receive_c=0.3)


def test_all_filtered_policies_see_only_finite_values():
    """Cross-policy regression: both trace-ingestion boundaries reject
    non-finite entries, so every policy's decision functions only ever
    observe finite floats."""
    from repro.errors import TraceError
    from repro.traces.io import read_trace_csv
    from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

    import math
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.core.dissemination.filtering import FILTERED_POLICIES

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "poisoned.csv"
        path.write_text("time_s,value\n0.0,1.0\n1.0,nan\n")
        with pytest.raises(TraceError, match="non-finite"):
            read_trace_csv(path)
    with pytest.raises(ConfigurationError, match="finite"):
        generate_trace(
            "poisoned",
            SyntheticTraceConfig(volatility=float("nan")),
            np.random.default_rng(1),
        )

    # A legitimately generated trace is finite end-to-end, so each
    # policy's scalar decision path only ever sees finite operands.
    trace = generate_trace(
        "clean", SyntheticTraceConfig(n_samples=500), np.random.default_rng(7)
    )
    assert all(math.isfinite(v) for v in trace.values.tolist())
    assert all(math.isfinite(t) for t in trace.times.tolist())
    for policy in FILTERED_POLICIES:
        filt = EdgeFilter(policy, 0.05, trace.initial_value)
        for _time, value in zip(trace.times.tolist(), trace.values.tolist()):
            filt.decide(value, 0.01, tag=0.05 if policy == "centralized" else None)
            assert math.isfinite(filt.last_sent)

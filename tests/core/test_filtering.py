"""Unit tests for the shared coherency-filter helpers."""

import pytest

from repro.core.dissemination.filtering import (
    EdgeFilter,
    SourceTagger,
    forward_centralized,
    forward_distributed,
    forward_eq3_only,
    forward_flooding,
    quantise_tolerance,
    tag_for_update,
)
from repro.errors import ConfigurationError, DisseminationError


def test_forward_distributed_eq3_and_eq7():
    # Eq. (3): plain violation.
    assert forward_distributed(1.6, 1.0, c_serve=0.5, parent_receive_c=0.0)
    assert not forward_distributed(1.4, 1.0, c_serve=0.5, parent_receive_c=0.0)
    # Eq. (7): slack shrunk below the parent's receive coherency.
    assert forward_distributed(1.4, 1.0, c_serve=0.5, parent_receive_c=0.3)
    assert not forward_distributed(1.1, 1.0, c_serve=0.5, parent_receive_c=0.3)


def test_forward_eq3_only_ignores_parent_coherency():
    assert not forward_eq3_only(1.4, 1.0, c_serve=0.5)
    assert forward_eq3_only(1.6, 1.0, c_serve=0.5)


def test_forward_flooding_skips_repeats_only():
    assert forward_flooding(1.0, 2.0)
    assert not forward_flooding(2.0, 2.0)


def test_forward_centralized_prunes_by_tag():
    assert forward_centralized(0.3, tag=0.3)
    assert forward_centralized(0.1, tag=0.3)
    assert not forward_centralized(0.5, tag=0.3)


def test_tag_for_update_picks_max_violated():
    last = {0.1: 1.0, 0.3: 1.0, 0.5: 1.0}
    assert tag_for_update(1.35, [0.1, 0.3, 0.5], last) == 0.3
    assert tag_for_update(1.05, [0.1, 0.3, 0.5], last) is None
    assert tag_for_update(2.0, [0.1, 0.3, 0.5], last) == 0.5


def test_quantise_collapses_float_dust():
    assert quantise_tolerance(0.1 + 0.2) == quantise_tolerance(0.3)


def test_edge_filter_rejects_unknown_policy():
    with pytest.raises(ConfigurationError):
        EdgeFilter("gossip", 0.5, 1.0)


def test_edge_filter_updates_state_only_on_forward():
    filt = EdgeFilter("distributed", 0.5, 1.0)
    assert not filt.decide(1.3)
    assert filt.last_sent == 1.0  # suppressed: state untouched
    assert filt.decide(1.6)
    assert filt.last_sent == 1.6  # forwarded: state moved


def test_edge_filter_centralized_requires_tag():
    filt = EdgeFilter("centralized", 0.5, 1.0)
    with pytest.raises(DisseminationError):
        filt.decide(2.0)
    assert filt.decide(2.0, tag=0.5)


def test_source_tagger_tracks_unique_tolerances():
    tagger = SourceTagger()
    tagger.add_tolerance(0, 0.3, 1.0)
    tagger.add_tolerance(0, 0.1, 1.0)
    tagger.add_tolerance(0, 0.3, 1.0)  # duplicate: idempotent
    assert tagger.unique_tolerances(0) == [0.1, 0.3]
    tagger.remove_tolerance(0, 0.1)
    assert tagger.unique_tolerances(0) == [0.3]
    tagger.remove_tolerance(0, 0.1)  # idempotent


def test_source_tagger_examination_marks_covered_tolerances():
    tagger = SourceTagger()
    for c in (0.1, 0.3, 0.5):
        tagger.add_tolerance(0, c, 1.0)
    decision = tagger.examine(0, 1.35)
    assert decision.disseminate and decision.tag == 0.3
    assert decision.checks == 3
    # 1.35 was recorded for 0.1 and 0.3 but not 0.5: a follow-up 1.3
    # violates nothing.
    follow_up = tagger.examine(0, 1.3)
    assert not follow_up.disseminate and follow_up.checks == 3


def test_source_tagger_without_tolerances_drops_updates():
    decision = SourceTagger().examine(7, 123.0)
    assert not decision.disseminate and decision.checks == 0

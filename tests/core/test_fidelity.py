"""Unit tests for the fidelity metric."""

import numpy as np
import pytest

from repro.core.fidelity import FidelityAccumulator, loss_of_fidelity, violation_time
from repro.errors import ConfigurationError


def test_identical_series_have_zero_violation():
    times = np.array([0.0, 1.0, 2.0])
    values = np.array([1.0, 2.0, 3.0])
    assert violation_time(times, values, times, values, 0.1, 0.0, 2.0) == 0.0


def test_constant_offset_above_tolerance_violates_everywhere():
    src_t = np.array([0.0])
    src_v = np.array([1.0])
    recv_t = np.array([0.0])
    recv_v = np.array([2.0])
    assert violation_time(src_t, src_v, recv_t, recv_v, 0.5, 0.0, 10.0) == 10.0
    assert loss_of_fidelity(src_t, src_v, recv_t, recv_v, 0.5, 0.0, 10.0) == 100.0


def test_offset_within_tolerance_never_violates():
    src = (np.array([0.0]), np.array([1.0]))
    recv = (np.array([0.0]), np.array([1.4]))
    assert violation_time(*src, *recv, 0.5, 0.0, 10.0) == 0.0


def test_late_delivery_violates_until_catchup():
    # Source jumps 1.0 -> 2.0 at t=1; the repo hears at t=3.
    src_t = np.array([0.0, 1.0])
    src_v = np.array([1.0, 2.0])
    recv_t = np.array([0.0, 3.0])
    recv_v = np.array([1.0, 2.0])
    assert violation_time(src_t, src_v, recv_t, recv_v, 0.5, 0.0, 10.0) == 2.0
    assert loss_of_fidelity(src_t, src_v, recv_t, recv_v, 0.5, 0.0, 10.0) == 20.0


def test_violation_interval_clipped_by_window():
    src_t = np.array([0.0, 1.0])
    src_v = np.array([1.0, 2.0])
    recv_t = np.array([0.0, 3.0])
    recv_v = np.array([1.0, 2.0])
    # Window [0, 2]: only one second of the stale period falls inside.
    assert violation_time(src_t, src_v, recv_t, recv_v, 0.5, 0.0, 2.0) == 1.0


def test_boundary_deviation_is_not_violation():
    src = (np.array([0.0]), np.array([1.0]))
    recv = (np.array([0.0]), np.array([1.5]))
    assert violation_time(*src, *recv, 0.5, 0.0, 4.0) == 0.0


def test_multiple_stale_periods_sum():
    src_t = np.array([0.0, 1.0, 5.0])
    src_v = np.array([1.0, 2.0, 3.0])
    recv_t = np.array([0.0, 2.0, 7.0])
    recv_v = np.array([1.0, 2.0, 3.0])
    # Stale 1..2 and 5..7 -> 3 seconds total.
    assert violation_time(src_t, src_v, recv_t, recv_v, 0.5, 0.0, 10.0) == 3.0


def test_zero_width_window():
    src = (np.array([0.0]), np.array([1.0]))
    recv = (np.array([0.0]), np.array([9.0]))
    assert violation_time(*src, *recv, 0.5, 0.0, 0.0) == 0.0


def test_invalid_inputs_rejected():
    src = (np.array([0.0]), np.array([1.0]))
    recv = (np.array([0.0]), np.array([1.0]))
    with pytest.raises(ConfigurationError):
        violation_time(*src, *recv, 0.0, 0.0, 1.0)  # non-positive c
    with pytest.raises(ConfigurationError):
        violation_time(*src, *recv, 0.5, 1.0, 0.0)  # inverted window
    with pytest.raises(ConfigurationError):
        violation_time(np.array([]), np.array([]), *recv, 0.5, 0.0, 1.0)


def test_series_must_cover_window_start():
    src = (np.array([5.0]), np.array([1.0]))
    recv = (np.array([0.0]), np.array([1.0]))
    with pytest.raises(ConfigurationError):
        violation_time(*src, *recv, 0.5, 0.0, 10.0)


def test_loss_between_zero_and_hundred():
    rng = np.random.default_rng(0)
    for _ in range(20):
        n = int(rng.integers(1, 30))
        src_t = np.sort(rng.uniform(0, 10, n))
        src_t[0] = 0.0
        src_v = rng.normal(0, 1, n)
        m = int(rng.integers(1, 30))
        recv_t = np.sort(rng.uniform(0, 10, m))
        recv_t[0] = 0.0
        recv_v = rng.normal(0, 1, m)
        loss = loss_of_fidelity(src_t, src_v, recv_t, recv_v, 0.3, 0.0, 10.0)
        assert 0.0 <= loss <= 100.0


# ----------------------------------------------------------------------
# Accumulator
# ----------------------------------------------------------------------


def test_accumulator_repository_mean():
    acc = FidelityAccumulator()
    acc.add(1, 0, 10.0)
    acc.add(1, 1, 30.0)
    assert acc.repository_loss(1) == 20.0


def test_accumulator_system_mean_over_repositories():
    acc = FidelityAccumulator()
    acc.add(1, 0, 10.0)
    acc.add(1, 1, 30.0)  # repo 1 mean 20
    acc.add(2, 0, 40.0)  # repo 2 mean 40
    assert acc.system_loss() == 30.0
    assert acc.system_fidelity() == 70.0


def test_accumulator_empty():
    acc = FidelityAccumulator()
    assert acc.system_loss() == 0.0
    assert acc.repository_loss(99) == 0.0
    assert acc.worst_repository() is None


def test_accumulator_worst_repository():
    acc = FidelityAccumulator()
    acc.add(1, 0, 5.0)
    acc.add(2, 0, 50.0)
    assert acc.worst_repository() == (2, 50.0)


def test_accumulator_rejects_non_percentage():
    acc = FidelityAccumulator()
    with pytest.raises(ConfigurationError):
        acc.add(1, 0, -1.0)
    with pytest.raises(ConfigurationError):
        acc.add(1, 0, 101.0)


def test_per_repository_mapping():
    acc = FidelityAccumulator()
    acc.add(1, 0, 10.0)
    acc.add(2, 0, 20.0)
    assert acc.per_repository() == {1: 10.0, 2: 20.0}

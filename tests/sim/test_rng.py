"""Unit tests for named random streams."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(7).stream("topology").random(10)
    b = RandomStreams(7).stream("topology").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = streams.stream("alpha").random(10)
    b = streams.stream("beta").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random(10)
    b = RandomStreams(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_spawn_indexed_streams_independent():
    streams = RandomStreams(7)
    a = streams.spawn("traces", 0).random(10)
    b = streams.spawn("traces", 1).random(10)
    assert not np.array_equal(a, b)


def test_spawn_reproducible():
    a = RandomStreams(7).spawn("traces", 3).random(10)
    b = RandomStreams(7).spawn("traces", 3).random(10)
    assert np.array_equal(a, b)


def test_spawn_differs_from_plain_stream():
    streams = RandomStreams(7)
    a = streams.spawn("traces", 0).random(10)
    b = streams.stream("traces").random(10)
    assert not np.array_equal(a, b)


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RandomStreams("seed")  # type: ignore[arg-type]

"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, "late")
    q.push(1.0, fired.append, "early")
    q.push(2.0, fired.append, "middle")
    order = [q.pop().args[0] for _ in range(3)]
    assert order == ["early", "middle", "late"]


def test_same_time_events_pop_in_schedule_order():
    q = EventQueue()
    for i in range(10):
        q.push(5.0, lambda: None, i)
    order = [q.pop().args[0] for _ in range(10)]
    assert order == list(range(10))


def test_len_counts_live_events():
    q = EventQueue()
    assert len(q) == 0
    assert not q
    events = [q.push(float(i), lambda: None) for i in range(4)]
    assert len(q) == 4
    q.cancel(events[0])
    assert len(q) == 3
    assert q


def test_cancelled_events_are_skipped_on_pop():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None, "a")
    q.push(2.0, lambda: None, "b")
    q.cancel(e1)
    assert q.pop().args[0] == "b"


def test_cancel_is_idempotent():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(e)
    q.cancel(e)
    assert len(q) == 1


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.pop()


def test_pop_all_cancelled_raises():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.cancel(e)
    with pytest.raises(SimulationError):
        q.pop()


def test_peek_time_returns_earliest_live():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(e)
    assert q.peek_time() == 2.0


def test_peek_empty_raises():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.peek_time()


def test_push_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_push_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(-0.5, lambda: None)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0


def test_event_ordering_dunder():
    a = Event(time=1.0, seq=0, callback=lambda: None)
    b = Event(time=1.0, seq=1, callback=lambda: None)
    c = Event(time=2.0, seq=0, callback=lambda: None)
    assert a < b < c


def test_event_cancel_flag():
    e = Event(time=1.0, seq=0, callback=lambda: None)
    assert not e.cancelled
    e.cancel()
    assert e.cancelled

"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_processed == 0
    assert sim.pending == 0


def test_run_executes_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, 3)
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    executed = sim.run()
    assert executed == 3
    assert fired == [1, 2, 3]
    assert sim.now == 3.0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_max_events_budget():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert sim.pending == 6


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def recurse():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, recurse)
    sim.run()
    assert len(errors) == 1


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_events_processed_accumulates_across_runs():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 2


def test_reset_rewinds_everything():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(5.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_tie_break_is_fifo_across_schedule_and_schedule_at():
    """Identical timestamps fire in submission order regardless of how
    they were submitted -- the determinism the sweep-merge layer relies
    on (a config's event order, hence its result, never depends on
    incidental heap layout)."""
    sim = Simulator()
    fired = []
    sim.schedule_at(2.0, fired.append, "at-first")
    sim.schedule(2.0, fired.append, "delay-second")
    sim.schedule_at(2.0, fired.append, "at-third")
    sim.schedule_at(1.0, fired.append, "earlier")
    sim.run()
    assert fired == ["earlier", "at-first", "delay-second", "at-third"]


def test_tie_break_is_fifo_for_events_scheduled_mid_callback():
    """An event scheduled *during* a callback for the current instant
    fires after every same-instant event submitted before it."""
    sim = Simulator()
    fired = []

    def cascade(label):
        fired.append(label)
        if label == "a":
            # Same timestamp as the already-queued "b" and "c".
            sim.schedule(0.0, fired.append, "a-child")

    sim.schedule_at(1.0, cascade, "a")
    sim.schedule_at(1.0, cascade, "b")
    sim.schedule_at(1.0, cascade, "c")
    sim.run()
    assert fired == ["a", "b", "c", "a-child"]


def test_tie_break_survives_interleaved_cancellation():
    """Cancelling one of several same-time events leaves the remaining
    submission order intact (lazy deletion must not reorder the heap)."""
    sim = Simulator()
    fired = []
    events = [sim.schedule(1.0, fired.append, i) for i in range(6)]
    sim.cancel(events[1])
    sim.cancel(events[4])
    sim.run()
    assert fired == [0, 2, 3, 5]

"""Unit tests for the single-server FIFO station."""

import pytest

from repro.errors import SimulationError
from repro.sim.queueing import FifoStation


def test_idle_station_serves_immediately():
    station = FifoStation()
    assert station.submit(10.0, 0.5) == 10.5


def test_busy_station_queues_work():
    station = FifoStation()
    station.submit(0.0, 1.0)  # busy until 1.0
    assert station.submit(0.2, 1.0) == 2.0  # waits 0.8, then serves 1.0
    assert station.submit(0.3, 1.0) == 3.0


def test_station_goes_idle_between_bursts():
    station = FifoStation()
    station.submit(0.0, 1.0)
    # Arrives long after the backlog drained: no waiting.
    assert station.submit(10.0, 1.0) == 11.0


def test_zero_service_time_passes_through():
    station = FifoStation()
    assert station.submit(5.0, 0.0) == 5.0
    assert station.busy_until == 5.0


def test_negative_arrival_rejected():
    station = FifoStation()
    with pytest.raises(SimulationError):
        station.submit(-1.0, 1.0)


def test_negative_service_rejected():
    station = FifoStation()
    with pytest.raises(SimulationError):
        station.submit(1.0, -0.1)


def test_queue_delay_reports_backlog():
    station = FifoStation()
    station.submit(0.0, 2.0)
    assert station.queue_delay(0.5) == 1.5
    assert station.queue_delay(5.0) == 0.0


def test_jobs_and_busy_time_accounting():
    station = FifoStation()
    station.submit(0.0, 1.0)
    station.submit(0.0, 2.0)
    assert station.jobs_served == 2
    assert station.busy_time == 3.0


def test_utilisation():
    station = FifoStation()
    station.submit(0.0, 2.0)
    assert station.utilisation(4.0) == 0.5
    assert station.utilisation(1.0) == 1.0  # clamped
    assert station.utilisation(0.0) == 0.0


def test_reset_clears_state():
    station = FifoStation()
    station.submit(0.0, 5.0)
    station.reset()
    assert station.busy_until == 0.0
    assert station.jobs_served == 0
    assert station.busy_time == 0.0


def test_saturation_grows_backlog_linearly():
    # Work arrives faster than it can be served: the completion times of
    # successive jobs must grow without bound -- this is the queueing
    # behaviour behind the paper's source-overload results.
    station = FifoStation()
    completions = [station.submit(float(t), 2.0) for t in range(10)]
    waits = [c - t - 2.0 for c, t in zip(completions, range(10))]
    assert waits == [float(i) for i in range(10)]

"""Unit tests for the declarative experiment registry and runner."""

import dataclasses

import pytest

from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.experiments import api, figure3, figure7, figure8
from repro.experiments.runner import ExperimentResult

TINY = dict(n_items=6, trace_samples=300)


def test_registry_knows_every_experiment_in_paper_order():
    assert api.available_experiments() == [
        "table1",
        "figure3",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "figure11",
        "scalability",
        "sensitivity",
        "pull_baseline",
        "hybrid_tradeoff",
        "churn_resilience",
        "failure_resilience",
        "workload_sensitivity",
        "adaptive_tradeoff",
        "live_crosscheck",
    ]


def test_every_spec_declares_description_and_callables():
    for name in api.available_experiments():
        spec = api.get_experiment(name)
        assert spec.name == name
        assert spec.description
        assert callable(spec.plan) and callable(spec.collect)
        assert callable(spec.render)


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError):
        api.get_experiment("figure99")


def test_duplicate_registration_rejected():
    spec = api.get_experiment("figure3")
    clone = dataclasses.replace(spec)
    with pytest.raises(ConfigurationError):
        api.register(clone)


def test_resolve_params_fills_defaults_and_normalises():
    spec = api.get_experiment("figure3")
    params = spec.resolve_params({"degrees": [1, 4]})
    assert params["degrees"] == (1, 4)  # list normalised to tuple
    assert params["policy"] == "centralized"  # schema default
    assert params["t_values"] == figure3.DEFAULT_T_VALUES


def test_resolve_params_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        api.get_experiment("figure3").resolve_params({"degreez": (1,)})


def test_param_spec_coerces_cli_text():
    spec = api.get_experiment("figure3")
    assert spec.param("t_values").coerce("100,50,0") == (100.0, 50.0, 0.0)
    assert spec.param("degrees").coerce("1,4,20") == (1, 4, 20)
    assert spec.param("policy").coerce("distributed") == "distributed"
    with pytest.raises(ConfigurationError):
        spec.param("t_values").coerce("hot")
    with pytest.raises(ConfigurationError):
        spec.param("missing")


def test_param_spec_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        api.ParamSpec("x", "complex")


def test_bool_params_parse_false_strings():
    spec = api.get_experiment("figure11")
    assert spec.resolve_params(
        {"controlled_cooperation": "false"}
    )["controlled_cooperation"] is False
    assert spec.resolve_params(
        {"controlled_cooperation": True}
    )["controlled_cooperation"] is True
    with pytest.raises(ConfigurationError):
        spec.resolve_params({"controlled_cooperation": "maybe"})
    with pytest.raises(ConfigurationError):
        spec.resolve_params({"controlled_cooperation": 3.5})


def test_plans_are_frozen_config_grids():
    for name in api.available_experiments():
        spec = api.get_experiment(name)
        ctx = api.ExperimentContext(
            preset="tiny", params=spec.resolve_params(), overrides=TINY
        )
        plan = spec.plan(ctx)
        assert isinstance(plan, tuple)
        for config in plan:
            assert isinstance(config, SimulationConfig)
        # Frozen configs are hashable: the dedup/cache plane keys on them.
        assert len(set(plan)) <= len(plan)


def test_run_experiment_matches_module_run():
    kwargs = dict(t_values=(100.0, 0.0), degrees=[1, 4], **TINY)
    via_module = figure3.run(preset="tiny", **kwargs)
    via_api = api.run_experiment(
        "figure3",
        preset="tiny",
        params=dict(t_values=(100.0, 0.0), degrees=[1, 4]),
        overrides=TINY,
    )
    assert via_module == via_api


def test_figure7_panels_match_full_run():
    kwargs = dict(t_values=(100.0,), **TINY)
    panels = figure7.run(preset="tiny", degrees=[1, 4], comm_delays_ms=(0.0,),
                         comp_delays_ms=(0.0,), **kwargs)
    panel_a = figure7.run_base_case(preset="tiny", degrees=[1, 4], **kwargs)
    assert isinstance(panels, list) and len(panels) == 3
    assert panels[0] == panel_a


def test_execute_plan_deduplicates_within_a_plan():
    config = SimulationConfig(
        n_repositories=20, n_routers=60, **TINY
    )
    stats = api.ExecutionStats()
    results = api.execute_plan([config, config], stats=stats)
    assert stats.planned == 2
    assert stats.distinct == 1
    assert results[0] is results[1]


def test_run_experiments_shares_points_across_experiments(tmp_path):
    """figure3 at T=0 with the distributed policy plans the exact configs
    of figure8's filtered arm: the union must simulate them once."""
    degrees = (1, 4)
    report = api.run_experiments(
        ["figure3", "figure8"],
        preset="tiny",
        params_by_name={
            "figure3": dict(t_values=(0.0,), degrees=degrees,
                            policy="distributed"),
            "figure8": dict(degrees=degrees),
        },
        overrides=TINY,
        artifacts_dir=tmp_path,
    )
    assert report.stats.planned == len(degrees) * 3  # fig3 row + 2 fig8 rows
    assert report.stats.deduplicated == len(degrees)
    # The shared points produce identical curves on both sides.
    fig3 = report.payloads["figure3"]
    fig8 = report.payloads["figure8"]
    assert fig3.series_by_label("T=0").ys == fig8.series_by_label("Filtered").ys
    # Schema-versioned artifacts are persisted per experiment.
    for name in ("figure3", "figure8"):
        artifact = report.artifacts[name]
        assert artifact.exists()
        content = artifact.read_text()
        assert '"schema": "repro.experiment-artifact"' in content
        assert '"schema_version"' in content


def test_to_jsonable_handles_payload_shapes():
    result = ExperimentResult(
        name="X", xlabel="x", ylabel="y", xs=[1.0],
        notes={1: (2, 3), "nested": {"b": True}},
    )
    encoded = api.to_jsonable(result)
    assert encoded["__dataclass__"] == "ExperimentResult"
    assert encoded["notes"] == {"1": [2, 3], "nested": {"b": True}}


def test_render_matches_main_output(capsys):
    text = figure8.main(preset="tiny", degrees=[1, 4], **TINY)
    out = capsys.readouterr().out
    assert text in out
    assert "Figure 8" in text

"""Shape and invariant tests for the adaptive_tradeoff experiment."""

import pytest

from repro.errors import SimulationError
from repro.experiments import adaptive_tradeoff, api

#: One policy, both workloads: small enough for unit-test budgets and
#: it pins the headline claim -- this exact grid point dominates the
#: static baseline on flash_crowd at the tiny scale.
PARAMS = dict(windows=(30.0,), thresholds=(0.75,), max_rewires=(1,))
DOMINATING_KEY = "w=30,th=0.75,subtree,mr=1"


@pytest.fixture(scope="module")
def payload():
    return api.run_experiment(
        "adaptive_tradeoff", preset="tiny", jobs=1, params=PARAMS
    )


def test_payload_covers_every_workload_and_policy(payload):
    assert sorted(payload["workloads"]) == ["diurnal", "flash_crowd"]
    for block in payload["workloads"].values():
        assert list(block["policies"]) == [DOMINATING_KEY]
        assert set(block["static"]) == {"loss", "messages", "total_cost"}


def test_adaptation_dominates_static_on_flash_crowd(payload):
    flash = payload["workloads"]["flash_crowd"]
    assert flash["dominating"] == [DOMINATING_KEY]
    row = flash["policies"][DOMINATING_KEY]
    assert row["dominates"] is True
    assert row["rewires"] > 0
    assert row["loss"] < flash["static"]["loss"]
    assert row["total_cost"] <= flash["static"]["total_cost"]


def test_total_cost_charges_resubscriptions(payload):
    for block in payload["workloads"].values():
        assert block["static"]["total_cost"] == block["static"]["messages"]
        for row in block["policies"].values():
            assert row["total_cost"] == (
                row["messages"] + row["resubscriptions"]
            )
            if row["rewires"] > 0:
                assert row["resubscriptions"] > 0


def test_collect_raises_when_nothing_dominates():
    # A window longer than the trace span never ticks, so the adaptive
    # run reproduces the static one exactly -- never *strictly* better.
    with pytest.raises(SimulationError, match="no adaptive policy dominates"):
        api.run_experiment(
            "adaptive_tradeoff",
            preset="tiny",
            jobs=1,
            params=dict(
                workloads="flash_crowd",
                windows=(10_000.0,),
                thresholds=(0.75,),
                max_rewires=(1,),
            ),
        )


def test_parallel_is_bit_identical_to_serial(payload):
    parallel = api.run_experiment(
        "adaptive_tradeoff", preset="tiny", jobs=4, params=PARAMS
    )
    assert parallel == payload


def test_render_reports_the_domination_verdict(payload):
    text = adaptive_tradeoff.SPEC.render(payload)
    assert "dominating: " + DOMINATING_KEY in text
    assert "cost = messages + resubscriptions" in text

"""Cache-correctness suite: the content-addressed result cache.

The acceptance bar: warm reruns are bit-identical to cold runs, cache
keys are stable across processes, and disabling the cache forces
recomputation.
"""

import os
import subprocess
import sys

import pytest

from repro.engine.config import SCALE_PRESETS
from repro.experiments import api, figure11
from repro.experiments.cache import ResultCache, fingerprint

TINY = dict(n_items=6, trace_samples=300)

#: A light but representative slice of run_all: a plain sweep figure, a
#: non-sweep payload (table1), and both auxiliary planes (pull, hybrid).
SUBSET = ["table1", "figure11", "pull_baseline", "hybrid_tradeoff"]


def _run_subset(cache):
    return api.run_experiments(
        SUBSET, preset="tiny", cache=cache, overrides=TINY
    )


# ---------------------------------------------------------------- keys


def test_fingerprint_is_deterministic_and_content_addressed():
    a = SCALE_PRESETS["tiny"].with_(t_percent=50.0)
    b = SCALE_PRESETS["tiny"].with_(t_percent=50.0)
    c = SCALE_PRESETS["tiny"].with_(t_percent=51.0)
    assert fingerprint(a) == fingerprint(b)
    assert fingerprint(a) != fingerprint(c)


def test_fingerprint_ignores_dict_ordering():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})


def test_fingerprint_distinguishes_types_and_shapes():
    assert fingerprint((1, 2)) != fingerprint((1.0, 2.0))
    assert fingerprint(((1, 2),)) != fingerprint((1, 2))
    assert fingerprint("1") != fingerprint(1)


def test_fingerprint_rejects_unhashable_vocabulary():
    with pytest.raises(TypeError):
        fingerprint(object())


def test_fingerprint_is_stable_across_processes():
    """String hashing is randomised per process; the cache key must not be."""
    config = SCALE_PRESETS["tiny"].with_(t_percent=80.0, policy="distributed")
    here = fingerprint(("sim", config))
    script = (
        "from repro.engine.config import SCALE_PRESETS\n"
        "from repro.experiments.cache import fingerprint\n"
        "config = SCALE_PRESETS['tiny'].with_(t_percent=80.0, "
        "policy='distributed')\n"
        "print(fingerprint(('sim', config)))\n"
    )
    env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="99")
    there = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True, env=env,
    ).stdout.strip()
    assert here == there


# --------------------------------------------------------------- store


def test_result_cache_roundtrip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    key = ("sim", SCALE_PRESETS["tiny"])
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    cache.put(key, {"loss": 1.25})
    assert cache.get(key) == {"loss": 1.25}
    assert cache.stats.hits == 1
    assert cache.stats.writes == 1


def test_result_cache_treats_corruption_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("key", "value")
    [entry] = list((tmp_path).rglob("*.pkl"))
    entry.write_bytes(b"not a pickle")
    assert cache.get("key", default="fallback") == "fallback"


def test_get_or_compute_computes_once(tmp_path):
    cache = ResultCache(tmp_path)
    calls = []
    for _ in range(2):
        value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
    assert value == 42
    assert calls == [1]


# ---------------------------------------------------- warm == cold


def test_warm_rerun_is_bit_identical_to_cold_run(tmp_path):
    cache = ResultCache(tmp_path)
    kwargs = dict(preset="tiny", t_percent=80.0, **TINY)
    cold = figure11.run(cache=cache, **kwargs)
    warm = figure11.run(cache=cache, **kwargs)
    assert warm == cold  # dataclass equality: exact float ==
    no_cache = figure11.run(**kwargs)
    assert no_cache == cold


def test_warm_run_performs_zero_new_simulations(tmp_path):
    cache = ResultCache(tmp_path)
    cold = _run_subset(cache)
    assert cold.stats.total_simulated > 0
    warm = _run_subset(cache)
    assert warm.stats.total_simulated == 0
    assert warm.stats.cache_hits == warm.stats.distinct
    assert warm.payloads == cold.payloads
    assert warm.texts == cold.texts


def test_warm_run_hits_from_another_process(tmp_path):
    """End to end: a cache populated here is fully warm for a fresh
    interpreter (keys survive process boundaries)."""
    cache = ResultCache(tmp_path)
    _run_subset(cache)
    script = (
        "from repro.experiments import api\n"
        "from repro.experiments.cache import ResultCache\n"
        f"cache = ResultCache({str(tmp_path)!r})\n"
        f"report = api.run_experiments({SUBSET!r}, preset='tiny', "
        f"cache=cache, overrides={TINY!r})\n"
        "print('simulated:', report.stats.total_simulated)\n"
    )
    env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="7")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True, env=env,
    ).stdout
    assert "simulated: 0" in out


def test_no_cache_forces_recomputation():
    first = _run_subset(cache=None)
    second = _run_subset(cache=None)
    assert second.stats.simulated == second.stats.distinct > 0
    assert second.stats.cache_hits == 0
    # Auxiliary planes are counted cache or no cache: 4 pull variants,
    # 5 hybrid thresholds, 1 table1 statistics point.
    assert second.stats.aux_computed == 10
    assert second.stats.aux_hits == 0
    assert first.payloads == second.payloads


def test_cache_does_not_leak_across_different_configs(tmp_path):
    cache = ResultCache(tmp_path)
    a = figure11.run(preset="tiny", t_percent=80.0, cache=cache, **TINY)
    b = figure11.run(preset="tiny", t_percent=0.0, cache=cache, **TINY)
    assert a != b  # different configs must not collide in the store


def test_parallel_and_serial_share_the_cache(tmp_path):
    """jobs=N and jobs=1 produce (and reuse) identical entries."""
    cache = ResultCache(tmp_path)
    kwargs = dict(preset="tiny", t_percent=80.0, **TINY)
    parallel = figure11.run(jobs=2, cache=cache, **kwargs)
    before = cache.stats.snapshot()
    serial = figure11.run(jobs=1, cache=cache, **kwargs)
    assert serial == parallel
    assert cache.stats.hits - before.hits == 2  # both points answered warm

"""Unit tests for the shared experiment machinery."""

import pytest

from repro.engine.config import SCALE_PRESETS
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    format_result,
    preset_config,
    sweep,
)


def test_preset_config_resolves_and_overrides():
    config = preset_config("tiny", t_percent=33.0)
    assert config.n_repositories == SCALE_PRESETS["tiny"].n_repositories
    assert config.t_percent == 33.0


def test_preset_config_unknown_rejected():
    with pytest.raises(ConfigurationError):
        preset_config("huge")


def test_sweep_returns_aligned_outputs():
    base = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=200)
    configs = [base.with_(offered_degree=d) for d in (1, 4)]
    losses, results = sweep(configs)
    assert len(losses) == len(results) == 2
    assert all(0.0 <= loss <= 100.0 for loss in losses)
    assert [r.effective_degree for r in results] == [1, 4]


def test_sweep_custom_metric():
    base = SCALE_PRESETS["tiny"].with_(n_items=3, trace_samples=200)
    values, results = sweep([base], metric=lambda r: float(r.messages))
    assert values[0] == float(results[0].messages)


def test_series_lookup():
    result = ExperimentResult(
        name="X", xlabel="x", ylabel="y", xs=[1.0],
        series=[Series(label="A", ys=[0.5])],
    )
    assert result.series_by_label("A").ys == [0.5]
    with pytest.raises(KeyError):
        result.series_by_label("B")


def test_format_result_renders_all_series():
    result = ExperimentResult(
        name="Demo", xlabel="x", ylabel="loss", xs=[1.0, 2.0],
        series=[Series(label="T=0", ys=[0.1, 0.2]), Series(label="T=100", ys=[1.0, 2.0])],
        notes={"k": "v"},
    )
    text = format_result(result)
    assert "Demo" in text
    assert "T=0" in text and "T=100" in text
    assert "note: k = v" in text
    assert len(text.splitlines()) == 7

"""Tests for the terminal chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import render
from repro.experiments.runner import ExperimentResult, Series


def u_curve():
    return ExperimentResult(
        name="U",
        xlabel="degree",
        ylabel="loss %",
        xs=[1.0, 2.0, 4.0, 8.0, 20.0],
        series=[
            Series(label="T=100", ys=[9.0, 4.0, 4.5, 6.0, 8.0]),
            Series(label="T=0", ys=[0.3, 0.1, 0.1, 0.1, 0.1]),
        ],
    )


def test_render_contains_glyphs_and_legend():
    text = render(u_curve())
    assert "o=T=100" in text
    assert "x=T=0" in text
    assert "o" in text.splitlines()[1:][0] or any(
        "o" in line for line in text.splitlines()
    )


def test_render_dimensions():
    text = render(u_curve(), width=40, height=10)
    chart_rows = [line for line in text.splitlines() if "|" in line]
    assert len(chart_rows) == 10
    for row in chart_rows:
        assert len(row.split("|", 1)[1]) == 40


def test_extreme_values_hit_extreme_rows():
    text = render(u_curve(), width=40, height=10)
    rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
    assert "o" in rows[0]       # max loss at the top row
    assert "x" in rows[-1]      # min loss at the bottom row


def test_axis_labels_present():
    text = render(u_curve())
    assert "loss %" in text
    assert "degree" in text
    assert "9" in text  # y-max label
    assert "20" in text  # x-max label


def test_flat_series_renders():
    flat = ExperimentResult(
        name="flat", xlabel="x", ylabel="y", xs=[0.0, 1.0],
        series=[Series(label="s", ys=[5.0, 5.0])],
    )
    text = render(flat)
    assert "o=s" in text


def test_single_point_renders():
    single = ExperimentResult(
        name="pt", xlabel="x", ylabel="y", xs=[3.0],
        series=[Series(label="s", ys=[1.0])],
    )
    assert "o" in render(single)


def test_empty_rejected():
    empty = ExperimentResult(name="e", xlabel="x", ylabel="y", xs=[])
    with pytest.raises(ConfigurationError):
        render(empty)


def test_tiny_canvas_rejected():
    with pytest.raises(ConfigurationError):
        render(u_curve(), width=4, height=2)


def test_too_many_series_rejected():
    result = ExperimentResult(
        name="many", xlabel="x", ylabel="y", xs=[0.0],
        series=[Series(label=f"s{i}", ys=[float(i)]) for i in range(9)],
    )
    with pytest.raises(ConfigurationError):
        render(result)

"""Shape tests for the workload_sensitivity experiment."""

import pytest

from repro.experiments import workload_sensitivity

OVERRIDES = dict(n_items=6, trace_samples=400, seed=3913)


@pytest.fixture(scope="module")
def grid():
    return workload_sensitivity.run(preset="tiny", **OVERRIDES)


def test_covers_all_policies_and_workloads(grid):
    assert [s.label for s in grid.series] == list(workload_sensitivity.POLICIES)
    assert len(grid.xs) == 4
    for series in grid.series:
        assert len(series.ys) == 4


def test_replay_column_matches_table1(grid):
    assert grid.notes["replay == table1 (lossless round-trip)"] is True
    for series in grid.series:
        assert series.ys[3] == series.ys[0]


def test_flooding_sends_the_most_messages_under_every_workload(grid):
    """Flooding forwards every change on every edge; filtering policies
    must undercut it whatever the update dynamics look like."""
    for workload, per_policy in grid.notes["messages"].items():
        for policy, messages in per_policy.items():
            if policy != "flooding":
                assert per_policy["flooding"] > messages, (workload, policy)


def test_bursty_workloads_change_the_cost_picture(grid):
    """Flash crowds thin out total changes (quiet base rate), so every
    policy's message bill drops well below the stationary baseline."""
    messages = grid.notes["messages"]
    for policy in workload_sensitivity.POLICIES:
        assert messages["flash_crowd"][policy] < messages["table1"][policy]


def test_parallel_is_bit_identical_to_serial():
    serial = workload_sensitivity.run(preset="tiny", jobs=1, **OVERRIDES)
    parallel = workload_sensitivity.run(preset="tiny", jobs=4, **OVERRIDES)
    for s, p in zip(serial.series, parallel.series):
        assert s.label == p.label
        assert s.ys == p.ys

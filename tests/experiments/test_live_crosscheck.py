"""The live_crosscheck experiment: registry wiring and agreement."""

import json
import socket

import pytest

from repro.errors import SimulationError
from repro.experiments import api

pytestmark = pytest.mark.live

#: Shrunk grid so the cross-check runs in about a second.
TINY = dict(n_repositories=10, n_routers=30, n_items=3, trace_samples=250)

#: The TCP failure leg is exercised by one dedicated test below; the
#: wiring tests skip it to stay fast.
NO_TCP = {"tcp": "off"}


def _ctx(**extra_params):
    spec = api.get_experiment("live_crosscheck")
    return spec, api.ExperimentContext(
        preset="tiny",
        params=spec.resolve_params(extra_params),
        overrides=TINY,
    )


def _require_localhost_sockets():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        pytest.skip(f"cannot bind localhost sockets here: {exc}")


def test_registered_with_policy_parameters():
    spec = api.get_experiment("live_crosscheck")
    assert spec.description
    names = [p.name for p in spec.params]
    assert names == [
        "policies", "fidelity_tol", "message_tol",
        "failure_crashes", "failure_partitions", "failure_loss",
        "failure_seed", "tcp", "tcp_time_scale",
        "adaptive_window", "adaptive_threshold", "adaptive_max_rewires",
    ]


def test_plan_is_plain_failure_and_adaptive_configs_per_policy():
    spec, ctx = _ctx()
    plan = spec.plan(ctx)
    assert [c.policy for c in plan] == [
        "distributed", "centralized"
    ] * 3
    plain, failure, adaptive = plan[:2], plan[2:4], plan[4:]
    assert all(c.n_repositories == TINY["n_repositories"] for c in plain)
    assert all(c.failures is None for c in plain)
    assert all(c.failures is not None for c in failure)
    assert all(c.message_loss_probability > 0.0 for c in failure)
    assert all(c.adaptive is not None for c in adaptive)
    assert all(c.failures is None for c in adaptive)


def test_crosscheck_agrees_and_reports(tmp_path):
    payload = api.run_experiment(
        "live_crosscheck", preset="tiny", overrides=TINY, params=NO_TCP
    )
    assert payload["agreement"] is True
    for policy in ("distributed", "centralized"):
        for section in ("policies", "failure_policies"):
            row = payload[section][policy]
            assert row["conserved"] is True
            assert (
                row["live_sent"]
                == row["live_delivered"] + row["live_dropped"]
            )
            assert row["delta_loss_pp"] <= payload["fidelity_tol_pp"]
            assert row["message_delta_pct"] <= payload["message_tol_pct"]
            # The two planes share one code path: agreement is exact
            # today -- even under crashes, partitions and seeded loss.
            assert row["delta_loss_pp"] == 0.0
            assert row["sim_messages"] == row["live_messages"]
    assert payload["failures"]["crashes"] == 1
    assert payload["failures"]["partitions"] == 1
    failure_row = payload["failure_policies"]["distributed"]
    assert failure_row["live_dropped"] > 0
    assert failure_row["sim_drops"] == failure_row["live_drops"]
    for policy in ("distributed", "centralized"):
        adaptive_row = payload["adaptive_policies"][policy]
        # The adaptive leg is pinned bit-exact: zero deltas, real rewires.
        assert adaptive_row["delta_loss_pp"] == 0.0
        assert adaptive_row["sim_messages"] == adaptive_row["live_messages"]
        assert adaptive_row["rewires"] > 0
        assert adaptive_row["resubscriptions"] > 0
    assert payload["tcp"] == {"ran": False, "reason": "disabled (tcp=off)"}
    # The payload is artifact-serialisable.
    path = api.write_artifact(tmp_path, "live_crosscheck", "tiny", {}, payload)
    document = json.loads(path.read_text())
    assert document["payload"]["agreement"] is True


def test_crosscheck_tcp_failure_leg():
    """Sim and live TCP agree under crashes + partitions + loss."""
    _require_localhost_sockets()
    payload = api.run_experiment(
        "live_crosscheck",
        preset="tiny",
        overrides=TINY,
        params={"policies": "distributed", "tcp": "on"},
    )
    tcp = payload["tcp"]
    assert tcp["ran"] is True
    assert tcp["policy"] == "distributed"
    assert tcp["conserved"] is True
    assert tcp["live_sent"] == tcp["live_delivered"] + tcp["live_dropped"]
    assert tcp["live_dropped"] > 0  # loss + failures really dropped frames
    assert tcp["delta_loss_pp"] <= payload["fidelity_tol_pp"]


def test_crosscheck_single_policy_param():
    payload = api.run_experiment(
        "live_crosscheck",
        preset="tiny",
        overrides=TINY,
        params={"policies": "flooding", **NO_TCP},
    )
    assert list(payload["policies"]) == ["flooding"]
    assert list(payload["failure_policies"]) == ["flooding"]
    assert list(payload["adaptive_policies"]) == ["flooding"]


def test_crosscheck_raises_on_disagreement():
    spec, ctx = _ctx(fidelity_tol=-1.0, tcp="off")  # impossible tolerance
    results = api.execute_plan(spec.plan(ctx))
    with pytest.raises(SimulationError):
        spec.collect(ctx, tuple(results))


def test_render_mentions_every_policy():
    payload = api.run_experiment(
        "live_crosscheck", preset="tiny", overrides=TINY, params=NO_TCP
    )
    text = api.get_experiment("live_crosscheck").render(payload)
    assert "distributed" in text and "centralized" in text
    assert "failure leg" in text
    assert "tcp: skipped" in text
    assert "agreement" in text

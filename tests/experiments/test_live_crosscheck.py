"""The live_crosscheck experiment: registry wiring and agreement."""

import json

import pytest

from repro.errors import SimulationError
from repro.experiments import api

pytestmark = pytest.mark.live

#: Shrunk grid so the cross-check runs in about a second.
TINY = dict(n_repositories=10, n_routers=30, n_items=3, trace_samples=250)


def _ctx(**extra_params):
    spec = api.get_experiment("live_crosscheck")
    return spec, api.ExperimentContext(
        preset="tiny",
        params=spec.resolve_params(extra_params),
        overrides=TINY,
    )


def test_registered_with_policy_parameters():
    spec = api.get_experiment("live_crosscheck")
    assert spec.description
    names = [p.name for p in spec.params]
    assert names == ["policies", "fidelity_tol", "message_tol"]


def test_plan_is_one_config_per_policy():
    spec, ctx = _ctx()
    plan = spec.plan(ctx)
    assert [c.policy for c in plan] == ["distributed", "centralized"]
    assert all(c.n_repositories == TINY["n_repositories"] for c in plan)


def test_crosscheck_agrees_and_reports(tmp_path):
    payload = api.run_experiment(
        "live_crosscheck", preset="tiny", overrides=TINY
    )
    assert payload["agreement"] is True
    for policy in ("distributed", "centralized"):
        row = payload["policies"][policy]
        assert row["conserved"] is True
        assert row["live_sent"] == row["live_delivered"] + row["live_dropped"]
        assert row["delta_loss_pp"] <= payload["fidelity_tol_pp"]
        assert row["message_delta_pct"] <= payload["message_tol_pct"]
        # The two planes share one code path: agreement is exact today.
        assert row["delta_loss_pp"] == 0.0
        assert row["sim_messages"] == row["live_messages"]
    # The payload is artifact-serialisable.
    path = api.write_artifact(tmp_path, "live_crosscheck", "tiny", {}, payload)
    document = json.loads(path.read_text())
    assert document["payload"]["agreement"] is True


def test_crosscheck_single_policy_param():
    payload = api.run_experiment(
        "live_crosscheck",
        preset="tiny",
        overrides=TINY,
        params={"policies": "flooding"},
    )
    assert list(payload["policies"]) == ["flooding"]


def test_crosscheck_raises_on_disagreement():
    spec, ctx = _ctx(fidelity_tol=-1.0)  # impossible tolerance
    results = api.execute_plan(spec.plan(ctx))
    with pytest.raises(SimulationError):
        spec.collect(ctx, tuple(results))


def test_render_mentions_every_policy():
    payload = api.run_experiment(
        "live_crosscheck", preset="tiny", overrides=TINY
    )
    text = api.get_experiment("live_crosscheck").render(payload)
    assert "distributed" in text and "centralized" in text
    assert "agreement" in text

"""Qualitative reproduction tests: each figure's *shape* must hold.

These run reduced tiny-scale sweeps (fewer T values and grid points than
the recorded experiments) and assert the paper's claims: U-curves,
L-curves, saturation behaviour, filtering benefits, check/message ratios
and scalability.  A slightly larger computational delay (25 ms, inside
the paper's own Figure 6 sweep range) is used where the claim needs the
source to be loaded enough to matter at this small scale.
"""

import pytest

from repro.experiments import (
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    scalability,
    sensitivity,
    table1,
)

# Shared small-but-loaded workload (see module docstring).
OVERRIDES = dict(n_items=12, comp_delay_ms=25.0, trace_samples=500)
DEGREES = [1, 2, 4, 8, 20]


@pytest.fixture(scope="module")
def fig3():
    return figure3.run(
        preset="tiny", t_values=(100.0, 50.0, 0.0), degrees=DEGREES, **OVERRIDES
    )


def test_figure3_u_shape_for_stringent_mix(fig3):
    ys = fig3.series_by_label("T=100").ys
    best = min(ys)
    assert ys[0] > 1.5 * best  # chain arm clearly above the optimum
    assert ys[-1] > 1.3 * best  # full fan-out arm rises again


def test_figure3_optimum_at_moderate_degree(fig3):
    ys = fig3.series_by_label("T=100").ys
    best_degree = fig3.xs[ys.index(min(ys))]
    assert 2 <= best_degree <= 8  # the paper reports 3..20


def test_figure3_loss_ordered_by_stringency(fig3):
    t100 = fig3.series_by_label("T=100").ys
    t50 = fig3.series_by_label("T=50").ys
    t0 = fig3.series_by_label("T=0").ys
    for a, b, c in zip(t100, t50, t0):
        assert a >= b >= c


def test_figure3_lax_mix_is_flat_and_low(fig3):
    ys = fig3.series_by_label("T=0").ys
    assert max(ys) < 1.0


def test_figure5_loss_is_computation_dominated():
    result = figure5.run(
        preset="tiny",
        t_values=(100.0, 0.0),
        comm_delays_ms=(0.0, 125.0),
        **OVERRIDES,
    )
    t100 = result.series_by_label("T=100").ys
    # Substantial loss already at ZERO communication delay: the source's
    # serialised computation is the bottleneck (the paper's point).
    assert t100[0] > 3.0
    # And faster networks do not rescue the no-cooperation system.
    assert t100[-1] >= t100[0]
    assert max(result.series_by_label("T=0").ys) < 1.0


def test_figure6_loss_grows_with_computational_delay():
    result = figure6.run(
        preset="tiny",
        t_values=(100.0, 0.0),
        comp_delays_ms=(0.0, 12.5, 25.0),
        n_items=12,
        trace_samples=500,
    )
    t100 = result.series_by_label("T=100").ys
    assert t100[0] < 1.0  # free computation: no source bottleneck
    assert t100[1] > t100[0]
    assert t100[2] > t100[1]
    assert t100[2] > 3.0


@pytest.fixture(scope="module")
def fig7a():
    return figure7.run_base_case(
        preset="tiny", t_values=(100.0,), degrees=DEGREES, **OVERRIDES
    )


def test_figure7a_l_shape_flat_beyond_coop_degree(fig7a):
    clamp = fig7a.notes["coopDegree (Eq. 2 clamp at max offered)"]
    ys = fig7a.series_by_label("T=100").ys
    beyond = [y for x, y in zip(fig7a.xs, ys) if x >= clamp]
    assert len(beyond) >= 2
    # Identical effective degree => identical runs => flat tail.
    assert max(beyond) - min(beyond) < 1e-9


def test_figure7a_clamp_avoids_the_rising_arm(fig7a):
    uncontrolled = figure3.run(
        preset="tiny", t_values=(100.0,), degrees=[20], **OVERRIDES
    )
    controlled_tail = fig7a.series_by_label("T=100").ys[-1]
    assert controlled_tail < uncontrolled.series_by_label("T=100").ys[0]


def test_figure7b_controlled_cooperation_tames_comm_delays():
    result = figure7.run_comm_sweep(
        preset="tiny",
        t_values=(100.0,),
        comm_delays_ms=(25.0, 125.0),
        n_items=12,
        trace_samples=500,
    )
    degrees = result.notes["Eq. (2) degrees along the sweep"]
    assert degrees[-1] > degrees[0]  # higher delay -> more fan-out
    # Adapting the degree beats refusing to adapt: a low-fan-out tree at
    # the same 125 ms is far worse, and the controlled loss stays moderate.
    chain = figure3.run(
        preset="tiny",
        t_values=(100.0,),
        degrees=[1],
        comm_target_ms=125.0,
        n_items=12,
        trace_samples=500,
    )
    controlled = result.series_by_label("T=100").ys
    assert controlled[-1] < chain.series_by_label("T=100").ys[0]
    assert max(controlled) < 8.0


def test_figure7c_controlled_cooperation_tames_comp_delays():
    result = figure7.run_comp_sweep(
        preset="tiny",
        t_values=(100.0,),
        comp_delays_ms=(5.0, 25.0),
        n_items=12,
        trace_samples=500,
    )
    degrees = result.notes["Eq. (2) degrees along the sweep"]
    assert degrees[-1] < degrees[0]  # pricier computation -> less fan-out
    no_coop = figure6.run(
        preset="tiny",
        t_values=(100.0,),
        comp_delays_ms=(25.0,),
        n_items=12,
        trace_samples=500,
    )
    assert (
        result.series_by_label("T=100").ys[-1]
        < no_coop.series_by_label("T=100").ys[0]
    )


@pytest.fixture(scope="module")
def fig8():
    return figure8.run(preset="tiny", degrees=DEGREES, **OVERRIDES)


def test_figure8_flooding_loses_at_scale(fig8):
    flood = fig8.series_by_label("All updates").ys
    filtered = fig8.series_by_label("Filtered").ys
    # At the saturating end, flooding is catastrophically worse.
    assert flood[-1] > 10 * max(filtered[-1], 0.01)


def test_figure8_filtered_is_flat_and_low(fig8):
    assert max(fig8.series_by_label("Filtered").ys) < 1.0


def test_figure8_flooding_sends_far_more_messages(fig8):
    assert (
        fig8.notes["messages (all updates, max degree)"]
        > 2 * fig8.notes["messages (filtered, max degree)"]
    )


def test_figure9_p_percent_secondary_once_controlled():
    result = figure9.run(
        preset="tiny",
        p_values=(1.0, 25.0),
        degrees=[4, 20],
        t_percent=100.0,
        **OVERRIDES,
    )
    controlled = [s for s in result.series if s.label.endswith("W")]
    assert len(controlled) == 2
    spreads = [
        abs(a - b) for a, b in zip(controlled[0].ys, controlled[1].ys)
    ]
    assert max(spreads) < 3.0


def test_figure10_preference_function_secondary_once_controlled():
    result = figure10.run(
        preset="tiny", degrees=[4, 20], t_percent=100.0, **OVERRIDES
    )
    p1w = result.series_by_label("P1W").ys
    p2w = result.series_by_label("P2W").ys
    for a, b in zip(p1w, p2w):
        assert abs(a - b) < 3.0


@pytest.fixture(scope="module")
def fig11():
    return figure11.run(preset="tiny", t_percent=80.0, **OVERRIDES)


def test_figure11a_centralized_checks_more(fig11):
    assert fig11.check_ratio > 1.2


def test_figure11b_message_counts_match(fig11):
    assert 0.8 < fig11.message_ratio < 1.2


def test_figure11_both_policies_comparable_fidelity(fig11):
    assert abs(fig11.centralized_loss - fig11.distributed_loss) < 3.0


def test_scalability_controlled_loss_grows_slowly():
    result = scalability.run(
        preset="tiny",
        repo_counts=(20, 40, 60),
        t_percent=80.0,
        n_items=8,
        trace_samples=500,
    )
    assert result.notes["loss increase base->max (paper: <5%)"] < 5.0


def test_sensitivity_f_insensitive_above_fifty():
    result = sensitivity.run_f_sensitivity(
        preset="tiny",
        f_values=(50.0, 100.0),
        t_percent=80.0,
        n_items=8,
        trace_samples=500,
    )
    assert result.notes["max variation for f>=50 (paper: ~1%)"] < 2.5


def test_sensitivity_eq7_guard_helps():
    result = sensitivity.run_eq7_ablation(
        preset="tiny", t_percent=80.0, n_items=8, trace_samples=500
    )
    distributed_loss, eq3_loss = result.series[0].ys
    assert eq3_loss >= distributed_loss


def test_figure3_parallel_is_bit_identical_to_serial():
    """Acceptance check: the same figure regenerated at jobs=4 equals the
    serial regeneration bit for bit (dataclass equality compares every
    loss with exact float ==)."""
    kwargs = dict(
        preset="tiny",
        t_values=(100.0, 0.0),
        degrees=[1, 4, 20],
        n_items=6,
        trace_samples=300,
    )
    assert figure3.run(jobs=4, **kwargs) == figure3.run(jobs=1, **kwargs)


def test_figure6_parallel_is_bit_identical_to_serial():
    kwargs = dict(
        preset="tiny",
        t_values=(100.0, 0.0),
        comp_delays_ms=(0.0, 12.5, 25.0),
        n_items=6,
        trace_samples=300,
    )
    assert figure6.run(jobs=4, **kwargs) == figure6.run(jobs=1, **kwargs)


def test_figure11_parallel_is_bit_identical_to_serial():
    kwargs = dict(preset="tiny", t_percent=80.0, n_items=6, trace_samples=300)
    assert figure11.run(jobs=2, **kwargs) == figure11.run(jobs=1, **kwargs)


def test_table1_reports_six_calibrated_tickers():
    stats = table1.run(n_samples=2_000)
    assert len(stats) == 6
    assert [s.name for s in stats] == ["MSFT", "SUNW", "DELL", "QCOM", "INTC", "ORCL"]
    for s in stats:
        assert s.n_samples == 2_000
        assert s.n_changes > 100  # lively enough to exercise dissemination
        assert s.min_value < s.max_value

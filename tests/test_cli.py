"""Tests for the ``python -m repro`` CLI and the run_all driver."""

import pytest

from repro.__main__ import build_parser, main as cli_main
from repro.experiments.run_all import EXPERIMENTS, main as run_all_main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.preset == "tiny"
    assert args.policy == "distributed"
    assert args.t == 80.0
    assert not args.controlled
    assert args.jobs == 1
    assert args.degrees is None
    assert args.workload is None


def test_parser_rejects_unknown_preset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--preset", "galactic"])


def test_parser_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--policy", "gossip"])


def test_cli_runs_end_to_end(capsys):
    cli_main(["--preset", "tiny", "--t", "50", "--degree", "3", "--seed", "5"])
    out = capsys.readouterr().out
    assert "loss of fidelity" in out
    assert "degree of cooperation : 3" in out


def test_cli_controlled_mode(capsys):
    cli_main(["--preset", "tiny", "--controlled", "--degree", "20"])
    out = capsys.readouterr().out
    assert "Eq. 2 controlled" in out


def test_cli_delay_overrides(capsys):
    cli_main(["--preset", "tiny", "--comm-delay", "40", "--comp-delay", "5"])
    out = capsys.readouterr().out
    assert "mean comm delay       : 40.0 ms" in out


def test_parser_rejects_malformed_workload_spec():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--workload", "tsunami"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--workload", "flash_crowd:intensity=hot"])


def test_cli_workload_run(capsys):
    cli_main(
        ["--preset", "tiny", "--workload", "flash_crowd:intensity=1.2", "--seed", "5"]
    )
    out = capsys.readouterr().out
    assert "workload=flash_crowd" in out
    assert "loss of fidelity" in out


def test_cli_workload_sweep_serial_and_parallel_agree(capsys):
    argv = ["--preset", "tiny", "--degrees", "2,4", "--workload", "diurnal",
            "--seed", "5"]
    cli_main(argv + ["--jobs", "1"])
    serial = capsys.readouterr().out
    cli_main(argv + ["--jobs", "2"])
    parallel = capsys.readouterr().out
    assert "workload=diurnal" in serial
    assert serial.splitlines()[1:] == parallel.splitlines()[1:]


def test_parser_rejects_malformed_churn_spec():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--churn", "1,2"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--churn", "1,-2,3"])


def test_cli_churn_run(capsys):
    cli_main(["--preset", "tiny", "--churn", "1,1,1", "--seed", "5"])
    out = capsys.readouterr().out
    assert "churn events          : 3" in out
    assert "reconfiguration cost" in out


def test_cli_churn_degree_sweep_serial_and_parallel_agree(capsys):
    argv = ["--preset", "tiny", "--degrees", "2,4", "--churn", "1,1,1", "--seed", "5"]
    cli_main(argv + ["--jobs", "1"])
    serial = capsys.readouterr().out
    cli_main(argv + ["--jobs", "2"])
    parallel = capsys.readouterr().out
    assert "reconf=3" in serial
    assert serial.splitlines()[1:] == parallel.splitlines()[1:]


def test_cli_degree_sweep_serial_and_parallel_agree(capsys):
    argv = ["--preset", "tiny", "--degrees", "1,3", "--seed", "5"]
    cli_main(argv + ["--jobs", "1"])
    serial = capsys.readouterr().out
    cli_main(argv + ["--jobs", "2"])
    parallel = capsys.readouterr().out
    assert "degree=1" in serial and "degree=3" in serial
    # Identical per-degree summaries: the merge is deterministic.
    assert serial.splitlines()[1:] == parallel.splitlines()[1:]


def test_cli_experiments_list(capsys):
    cli_main(["experiments", "list"])
    out = capsys.readouterr().out
    for name in ("table1", "figure3", "workload_sensitivity"):
        assert name in out


def test_cli_experiments_show_prints_schema_and_plan(capsys):
    cli_main(["experiments", "show", "figure3", "--preset", "tiny"])
    out = capsys.readouterr().out
    assert "t_values" in out and "floats" in out
    assert "plan (tiny preset):" in out
    assert "plan fingerprint:" in out


def test_cli_experiments_show_unknown_rejected(capsys):
    with pytest.raises(SystemExit):
        cli_main(["experiments", "show", "figure99"])


def test_cli_experiments_options_do_not_clobber_top_level():
    """The subcommand's --preset/--jobs live on their own dests, so an
    explicit top-level value is never overwritten by subparser defaults."""
    args = build_parser().parse_args(
        ["--preset", "paper", "experiments", "run", "figure3"]
    )
    assert args.preset == "paper"
    assert args.exp_preset == "small"
    args = build_parser().parse_args(
        ["experiments", "run", "figure3", "--preset", "tiny", "--jobs", "4"]
    )
    assert args.exp_preset == "tiny" and args.exp_jobs == 4


def test_cli_experiments_run_with_params(capsys, tmp_path):
    cli_main([
        "experiments", "run", "figure11",
        "--preset", "tiny",
        "--cache-dir", str(tmp_path),
        "--param", "figure11.t_percent=50",
    ])
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "execution plane:" in out
    assert (tmp_path / "artifacts" / "tiny" / "figure11.json").exists()


def test_cli_experiments_run_warm_rerun_hits_cache(capsys, tmp_path):
    argv = ["experiments", "run", "figure11", "--preset", "tiny",
            "--cache-dir", str(tmp_path)]
    cli_main(argv)
    cold = capsys.readouterr().out
    cli_main(argv)
    warm = capsys.readouterr().out
    assert "0 cached, 2 simulated" in cold
    assert "2 cached, 0 simulated" in warm


def test_cli_experiments_run_no_cache(capsys, tmp_path):
    cli_main(["experiments", "run", "figure11", "--preset", "tiny",
              "--no-cache"])
    out = capsys.readouterr().out
    assert "0 cached, 2 simulated" in out
    assert "[artifacts:" not in out


def test_cli_experiments_run_rejects_bad_param(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["experiments", "run", "figure11", "--preset", "tiny",
                  "--no-cache", "--param", "figure11.bogus=1"])
    with pytest.raises(SystemExit):
        cli_main(["experiments", "run", "figure11", "--preset", "tiny",
                  "--no-cache", "--param", "not-a-pair"])


def test_run_all_knows_every_experiment():
    assert set(EXPERIMENTS) == {
        "table1",
        "figure3",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "figure11",
        "scalability",
        "sensitivity",
        "pull_baseline",
        "hybrid_tradeoff",
        "churn_resilience",
        "failure_resilience",
        "workload_sensitivity",
        "adaptive_tradeoff",
        "live_crosscheck",
    }


def test_run_all_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        run_all_main(["--only", "figure99"])


def test_run_all_single_experiment(capsys):
    run_all_main(["--preset", "tiny", "--only", "table1"])
    out = capsys.readouterr().out
    assert "MSFT" in out
    assert "table1 done" in out


def test_run_all_accepts_jobs(capsys):
    run_all_main(["--preset", "tiny", "--jobs", "2", "--only", "figure11"])
    out = capsys.readouterr().out
    assert "figure11 done" in out


def test_run_all_warm_rerun_skips_simulation(capsys, tmp_path):
    """Acceptance: a warm run_all performs zero new simulations and its
    output is identical to the cold run's (modulo timing lines)."""
    argv = ["--preset", "tiny", "--only", "table1", "figure11",
            "pull_baseline", "--cache-dir", str(tmp_path)]
    run_all_main(argv)
    cold = capsys.readouterr().out
    run_all_main(argv)
    warm = capsys.readouterr().out
    assert "0 cached, 7 simulated]" in cold  # 2 sweep + 4 pull + 1 table1
    assert "7 cached, 0 simulated]" in warm

    def stable(text: str) -> list[str]:
        return [line for line in text.splitlines()
                if "done in" not in line and "execution plane" not in line]

    assert stable(cold) == stable(warm)


def test_run_all_no_cache_recomputes(capsys):
    argv = ["--preset", "tiny", "--only", "figure11", "--no-cache"]
    run_all_main(argv)
    out = capsys.readouterr().out
    assert "0 cached, 2 simulated]" in out
    assert "[artifacts:" not in out


# ----------------------------------------------------------------------
# Seed threading through the registry runner (experiments run / run_all)
# ----------------------------------------------------------------------


def test_cli_experiments_seed_threads_into_every_planned_config():
    from repro.experiments import api

    spec = api.get_experiment("figure11")
    ctx = api.ExperimentContext(
        preset="tiny", params=spec.resolve_params(), overrides={"seed": 4242}
    )
    assert all(config.seed == 4242 for config in spec.plan(ctx))


def test_cli_experiments_run_seed_override_changes_results(capsys):
    argv = ["experiments", "run", "figure11", "--preset", "tiny", "--no-cache"]
    cli_main(argv)
    default_seed = capsys.readouterr().out
    cli_main(argv + ["--seed", "4242"])
    overridden = capsys.readouterr().out
    assert "Figure 11" in overridden
    # A different master seed regenerates topology/traces/interests, so
    # the reported numbers move; identical output would mean the seed
    # never reached the configs.
    assert default_seed != overridden


def test_run_all_seed_override(capsys):
    run_all_main(["--preset", "tiny", "--only", "figure11", "--no-cache"])
    default_seed = capsys.readouterr().out
    run_all_main(["--preset", "tiny", "--only", "figure11", "--no-cache",
                  "--seed", "4242"])
    overridden = capsys.readouterr().out
    assert "figure11 done" in overridden
    assert default_seed.splitlines()[:-1] != overridden.splitlines()[:-1]


# ----------------------------------------------------------------------
# The live subcommand
# ----------------------------------------------------------------------


def test_cli_live_run_inprocess(capsys):
    cli_main(["live", "run", "--preset", "tiny", "--duration", "60"])
    out = capsys.readouterr().out
    assert "transport=inprocess" in out
    assert "observed loss of fidelity" in out
    assert "conserved=True" in out


def test_cli_live_run_is_deterministic(capsys):
    argv = ["live", "run", "--preset", "tiny", "--duration", "60",
            "--seed", "7"]
    cli_main(argv)
    first = capsys.readouterr().out
    cli_main(argv)
    second = capsys.readouterr().out

    def stable(text: str) -> list[str]:
        return [line for line in text.splitlines() if "wall time" not in line]

    assert stable(first) == stable(second)


def test_cli_live_loadgen(capsys):
    cli_main(["live", "loadgen", "--preset", "tiny", "--duration", "60",
              "--jobs", "5"])
    out = capsys.readouterr().out
    assert "clients=5" in out
    assert "client requirements met" in out


def test_cli_live_options_do_not_clobber_top_level():
    args = build_parser().parse_args(
        ["--preset", "paper", "live", "run", "--preset", "tiny"]
    )
    assert args.preset == "paper"
    assert args.live_preset == "tiny"


def test_cli_live_rejects_bad_transport_and_jobs():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["live", "run", "--transport", "udp"])
    with pytest.raises(SystemExit):
        cli_main(["live", "loadgen", "--preset", "tiny", "--jobs", "0"])

"""repro -- a reproduction of *Maintaining Coherency of Dynamic Data in
Cooperating Repositories* (Shah, Ramamritham, Shenoy; VLDB 2002).

The package implements the paper's full stack from scratch:

- :mod:`repro.sim` -- discrete-event simulation kernel,
- :mod:`repro.network` -- random physical topologies, Pareto link
  delays, Floyd-Warshall routing,
- :mod:`repro.traces` -- synthetic stock-price traces calibrated to the
  paper's Table 1,
- :mod:`repro.workloads` -- pluggable update-stream workloads (Table 1
  default, flash crowds, diurnal cycles, CSV trace replay),
- :mod:`repro.core` -- the contribution: LeLA tree construction, the
  Eq. (2) degree-of-cooperation heuristic, the distributed/centralised
  dissemination algorithms, and the fidelity metric,
- :mod:`repro.engine` -- the end-to-end simulation,
- :mod:`repro.experiments` -- one module per table/figure in the paper.

Quickstart::

    from repro.engine import SCALE_PRESETS, run_simulation

    config = SCALE_PRESETS["tiny"].with_(t_percent=80.0, offered_degree=4)
    result = run_simulation(config)
    print(result.summary())
"""

from repro.engine import SCALE_PRESETS, SimulationConfig, run_simulation
from repro.errors import (
    ConfigurationError,
    DisseminationError,
    ReproError,
    SimulationError,
    TopologyError,
    TraceError,
    TreeConstructionError,
)

__version__ = "1.0.0"

__all__ = [
    "SCALE_PRESETS",
    "SimulationConfig",
    "run_simulation",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "TopologyError",
    "TraceError",
    "TreeConstructionError",
    "DisseminationError",
    "__version__",
]

"""Named, seeded random streams.

Each subsystem (topology, delays, traces, interests, ...) draws from its
own :class:`numpy.random.Generator`, derived deterministically from a
single experiment seed and the stream name.  Changing how many numbers one
subsystem consumes therefore never perturbs another subsystem -- runs stay
reproducible and comparable across configurations, which matters when we
sweep a parameter and want everything else held fixed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, deterministic random generators."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identically seeded
        generator, and distinct names yield independent generators.
        """
        if name not in self._cache:
            tag = zlib.crc32(name.encode("utf-8"))
            self._cache[name] = np.random.default_rng(
                np.random.SeedSequence([self.seed, tag])
            )
        return self._cache[name]

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed generator, e.g. one stream per trace.

        Distinct (name, index) pairs are independent of each other and of
        plain :meth:`stream` streams.
        """
        tag = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=[self.seed, tag], spawn_key=(index,))
        return np.random.default_rng(seq)

"""The discrete-event simulator.

A :class:`Simulator` owns a clock and an :class:`~repro.sim.events.EventQueue`
and runs callbacks in simulated-time order.  It is deliberately minimal:
the dissemination engine in :mod:`repro.engine.simulation` schedules plain
callbacks rather than using coroutine processes, which keeps the hot loop
fast enough for the paper-scale experiments.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Runs events in non-decreasing simulated-time order.

    The clock only moves when events fire; it never runs backwards.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative or NaN.
        """
        if delay != delay or delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}: clock is already at {self._now!r}"
            )
        return self._queue.push(time, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(event)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` passes, or a budget.

        Args:
            until: Stop (with the clock advanced to ``until``) once the next
                event would fire strictly after this time.
            max_events: Optional hard cap on events executed by this call;
                a guard against runaway schedules in tests.

        Returns:
            The number of events executed by this call.

        Raises:
            SimulationError: on re-entrant ``run`` calls.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue.pop()
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._events_processed += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return executed

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0

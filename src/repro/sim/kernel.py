"""The discrete-event simulators.

A :class:`Simulator` owns a clock and an :class:`~repro.sim.events.EventQueue`
and runs callbacks in simulated-time order.  It is deliberately minimal:
the dissemination engine in :mod:`repro.engine.simulation` schedules plain
callbacks rather than using coroutine processes, which keeps the hot loop
fast enough for the paper-scale experiments.

:class:`BatchKernel` is the array-era sibling used by the vectorized
engine (:mod:`repro.engine.vectorized`): instead of allocating one
:class:`~repro.sim.events.Event` object and one callback dispatch per
message, it merges a *pre-sorted static schedule* (every source update
of the run, known up front as numpy arrays) with a plain tuple heap of
in-flight deliveries.  Same-timestamp cohorts drain in FIFO scheduling
order -- all static events at time ``t`` fire before any delivery at
``t`` (they were scheduled first), and deliveries fire in push order --
which reproduces the scalar kernel's ``(time, seq)`` tie-breaking
exactly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator", "BatchKernel"]


class Simulator:
    """Runs events in non-decreasing simulated-time order.

    The clock only moves when events fire; it never runs backwards.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative or NaN.
        """
        if delay != delay or delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}: clock is already at {self._now!r}"
            )
        return self._queue.push(time, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(event)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` passes, or a budget.

        Args:
            until: Stop (with the clock advanced to ``until``) once the next
                event would fire strictly after this time.
            max_events: Optional hard cap on events executed by this call;
                a guard against runaway schedules in tests.

        Returns:
            The number of events executed by this call.

        Raises:
            SimulationError: on re-entrant ``run`` calls.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue.pop()
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._events_processed += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return executed

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0


class BatchKernel:
    """Object-free event loop for the vectorized engine.

    Two event sources, merged in simulated-time order:

    - a **static schedule**: the run's full source-update timeline as a
      non-decreasing float array, fixed at construction (the builder
      precomputes it from the traces); and
    - a **dynamic heap** of plain tuples ``(time, seq, *payload)`` for
      in-flight deliveries, pushed while the loop runs.

    :meth:`drain` yields one unit of work at a time: an ``int`` (the
    next static-schedule index) or the pushed ``tuple`` itself.  Ties
    go to the static schedule -- in the scalar kernel every source
    update is scheduled before the first delivery exists, so at equal
    timestamps its lower sequence number wins; deliveries at equal
    timestamps fire in push (FIFO) order via the monotone ``seq``.
    Work pushed *at* the current timestamp while a cohort drains is
    picked up within the same cohort, exactly like the scalar queue.
    """

    __slots__ = ("_static_times", "_n_static", "_next_static", "_heap",
                 "_seq", "_now", "_events_processed")

    def __init__(self, static_times: "np.ndarray") -> None:
        times = np.ascontiguousarray(static_times, dtype=np.float64)
        if times.size and np.any(np.diff(times) < 0):
            raise SimulationError("static schedule must be time-sorted")
        self._static_times = times
        self._n_static = int(times.size)
        self._next_static = 0
        self._heap: list[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of work units drained so far (static + dynamic)."""
        return self._events_processed

    def push(self, time: float, *payload: Any) -> None:
        """Enqueue one dynamic event at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is NaN or in the simulated past.
        """
        if time != time or time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}: clock is already at {self._now!r}"
            )
        heapq.heappush(self._heap, (time, self._seq) + payload)
        self._seq += 1

    def drain(self) -> Iterator[Any]:
        """Yield work units in ``(time, FIFO)`` order until both sources dry.

        Static units come out as their schedule index (``int``); dynamic
        units come out as the exact tuple given to :meth:`push`
        (``(time, seq, *payload)``).  The clock advances to each unit's
        timestamp before it is yielded.
        """
        static_times = self._static_times
        heap = self._heap
        while True:
            has_static = self._next_static < self._n_static
            if heap:
                if has_static and static_times[self._next_static] <= heap[0][0]:
                    index = self._next_static
                    self._next_static = index + 1
                    self._now = float(static_times[index])
                    self._events_processed += 1
                    yield index
                else:
                    event = heapq.heappop(heap)
                    self._now = event[0]
                    self._events_processed += 1
                    yield event
            elif has_static:
                index = self._next_static
                self._next_static = index + 1
                self._now = float(static_times[index])
                self._events_processed += 1
                yield index
            else:
                return

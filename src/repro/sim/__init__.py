"""Discrete-event simulation kernel.

This subpackage is the substrate every experiment in the reproduction
runs on.  It provides:

- :mod:`repro.sim.events` -- a stable, heap-backed event queue.
- :mod:`repro.sim.kernel` -- the :class:`~repro.sim.kernel.Simulator`
  driving callbacks in simulated-time order, and the object-free
  :class:`~repro.sim.kernel.BatchKernel` behind the vectorized engine.
- :mod:`repro.sim.queueing` -- single-server FIFO stations used to model
  the serialised per-dependent computational delay at repositories.
- :mod:`repro.sim.rng` -- seeded, named random streams so every
  experiment is reproducible.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import BatchKernel, Simulator
from repro.sim.queueing import FifoStation
from repro.sim.rng import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "BatchKernel",
    "FifoStation",
    "RandomStreams",
]

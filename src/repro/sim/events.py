"""Event primitives for the discrete-event kernel.

Events carry a fire time, a stable sequence number (ties are broken in
scheduling order, which makes runs deterministic), a callback and its
arguments.  :class:`EventQueue` is a thin, fully tested wrapper around
:mod:`heapq` that also supports cancellation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        seq: Monotonically increasing tie-breaker assigned by the queue.
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to ``callback``.
        cancelled: When true the kernel silently drops the event.
    """

    time: float
    seq: int
    callback: Callable[..., Any]
    args: tuple = field(default_factory=tuple)
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class EventQueue:
    """A min-heap of :class:`Event` objects ordered by (time, seq).

    The queue assigns sequence numbers itself so that two events scheduled
    for the same instant fire in the order they were scheduled.  Cancelled
    events stay in the heap but are skipped on ``pop`` (lazy deletion).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at ``time`` and return the event.

        Raises:
            SimulationError: if ``time`` is NaN or negative.
        """
        if time != time:  # NaN check without importing math
            raise SimulationError("cannot schedule an event at NaN time")
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time!r}")
        event = Event(time=time, seq=self._next_seq, callback=callback, args=args)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from an empty event queue")

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> float:
        """Return the fire time of the earliest live event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

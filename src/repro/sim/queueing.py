"""Single-server FIFO stations.

The paper charges a fixed *computational delay* (12.5 ms by default) for
every (update, dependent) pair a node handles: the coherency check plus
preparing the message for transmission (Section 6.1).  Because this work
is serialised at a node, a repository with many dependents -- or the
source serving everyone directly -- becomes a bottleneck.  That queueing
is exactly what produces the rising arm of the paper's U-shaped
fidelity-vs-cooperation curve (Figure 3) and the source saturation of
Figures 5 and 6.

:class:`FifoStation` models this with O(1) state: a ``busy_until``
watermark.  Work submitted at time ``t`` starts at ``max(t, busy_until)``
and completes ``service_time`` later.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["FifoStation"]


class FifoStation:
    """A single-server queue with deterministic service times.

    The station does not hold callbacks; it is a pure time calculator.
    Callers submit work and receive the completion time, then schedule
    their own follow-up events on the kernel.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._busy_until = 0.0
        self._jobs_served = 0
        self._busy_time = 0.0

    @property
    def busy_until(self) -> float:
        """Earliest time at which newly submitted work could start."""
        return self._busy_until

    @property
    def jobs_served(self) -> int:
        """Total jobs submitted to this station."""
        return self._jobs_served

    @property
    def busy_time(self) -> float:
        """Total server time consumed (sum of service times)."""
        return self._busy_time

    def submit(self, arrival: float, service_time: float) -> float:
        """Enqueue one job and return its completion time.

        Args:
            arrival: Simulated time the job arrives at the station.
            service_time: Server time the job consumes (seconds, >= 0).

        Returns:
            The simulated time at which the job finishes service.

        Raises:
            SimulationError: on negative arrival or service times.
        """
        if arrival < 0:
            raise SimulationError(f"arrival must be non-negative, got {arrival!r}")
        if service_time < 0:
            raise SimulationError(
                f"service_time must be non-negative, got {service_time!r}"
            )
        start = arrival if arrival > self._busy_until else self._busy_until
        completion = start + service_time
        self._busy_until = completion
        self._jobs_served += 1
        self._busy_time += service_time
        return completion

    def queue_delay(self, arrival: float) -> float:
        """Waiting time a job arriving now would spend before service."""
        backlog = self._busy_until - arrival
        return backlog if backlog > 0 else 0.0

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the server spent busy."""
        if horizon <= 0:
            return 0.0
        ratio = self._busy_time / horizon
        return ratio if ratio < 1.0 else 1.0

    def reset(self) -> None:
        """Forget all queueing state."""
        self._busy_until = 0.0
        self._jobs_served = 0
        self._busy_time = 0.0

"""Command-line entry point: run one dissemination simulation or sweep.

Examples::

    python -m repro                              # tiny preset, defaults
    python -m repro --preset small --t 100 --degree 8 --policy centralized
    python -m repro --controlled --offered 100   # Eq. (2) picks the degree
    python -m repro --degrees 1,2,4,8 --jobs 4   # parallel degree sweep
    python -m repro --churn 2,1,2                # mid-run membership churn
    python -m repro --adaptive window=30,threshold=0.75  # online rewiring
    python -m repro --workload flash_crowd:intensity=1.2
    python -m repro --workload replay:path=my_traces/

The declarative experiment registry hangs off the ``experiments``
subcommand::

    python -m repro experiments list
    python -m repro experiments show figure3
    python -m repro experiments run figure3 figure8 --preset tiny --jobs 4

The live repository network (real servers running the same algorithms)
hangs off the ``live`` subcommand::

    python -m repro live run --preset tiny
    python -m repro live run --transport tcp --time-scale 600 --duration 60
    python -m repro live loadgen --jobs 16 --preset tiny

The multi-process fleet (the live network sharded across worker
processes, with sample-based anti-entropy resync on reconnect) hangs
off the ``fleet`` subcommand::

    python -m repro fleet run --workers 4 --preset tiny --time-scale 600
    python -m repro fleet run --workers 2 --crosscheck --duration 60
    python -m repro fleet loadgen --workers 4 --jobs 1000 --preset tiny

The observability layer (per-update trace spans, the metrics registry
and the fidelity-violation explainer) hangs off the ``obs``
subcommand::

    python -m repro obs trace --preset tiny --update 12
    python -m repro obs metrics --failures 2,1 --json metrics.json
    python -m repro obs explain --failures 2,1
"""

from __future__ import annotations

import argparse

from repro.core.dissemination import available_policies
from repro.engine import (
    KERNELS,
    SCALE_PRESETS,
    run_simulation,
    run_sweep,
    schedule_for_config,
)
from repro.engine.adaptive import parse_adaptive_spec
from repro.engine.churn import parse_churn_spec
from repro.engine.failures import failures_for_config, parse_failure_spec
from repro.errors import ConfigurationError
from repro.experiments.runner import preset_config
from repro.obs.logsetup import LOG_LEVELS, get_logger, setup_cli_logging
from repro.workloads import available_workloads, parse_workload_spec

__all__ = ["main"]


def _degree_list(text: str) -> list[int]:
    try:
        return [int(d) for d in text.split(",") if d.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _churn_counts(text: str) -> tuple[int, int, int]:
    try:
        return parse_churn_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _failure_counts(text: str) -> tuple[int, int]:
    try:
        return parse_failure_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _adaptive_spec(text: str):
    try:
        return parse_adaptive_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _workload_spec(text: str):
    try:
        return parse_workload_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _job_count(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one worker per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run one cooperative-dissemination simulation "
            "(Shah et al., VLDB 2002 reproduction)."
        ),
    )
    parser.add_argument(
        "--preset", default="tiny", choices=sorted(SCALE_PRESETS),
        help="scale preset (default: tiny)",
    )
    parser.add_argument(
        "--policy", default="distributed", choices=available_policies(),
        help="dissemination policy (default: distributed)",
    )
    parser.add_argument(
        "--t", type=float, default=80.0, metavar="PERCENT",
        help="share of stringent coherency tolerances (default: 80)",
    )
    parser.add_argument(
        "--degree", type=int, default=None, metavar="N",
        help="offered degree of cooperation (default: preset value)",
    )
    parser.add_argument(
        "--degrees", type=_degree_list, default=None, metavar="N,N,...",
        help="comma-separated degree sweep; one summary line per degree "
        "(runs through the parallel sweep subsystem)",
    )
    parser.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for --degrees sweeps (1 = serial, "
        "0 = one per CPU); results are bit-identical for every value",
    )
    parser.add_argument(
        "--churn", type=_churn_counts, default=None, metavar="J,D,U",
        help="synthetic mid-run churn: J late joins, D departures, U "
        "coherency changes, placed by a schedule derived from the seed "
        "(see repro.engine.churn)",
    )
    parser.add_argument(
        "--failures", type=_failure_counts, default=None, metavar="C,P",
        help="synthetic unplanned failures: C repository crash/recover "
        "pairs and P link down/up windows, placed by a schedule derived "
        "from the seed (see repro.engine.failures)",
    )
    parser.add_argument(
        "--adaptive", type=_adaptive_spec, default=None, metavar="K=V,...",
        help="online drift-triggered re-optimization, e.g. "
        "window=30,threshold=0.75,cooldown=0,scope=subtree,max_rewires=8 "
        "(empty value = defaults; see repro.engine.adaptive)",
    )
    parser.add_argument(
        "--workload", type=_workload_spec, default=None, metavar="NAME[:K=V,...]",
        help="update-stream workload, e.g. flash_crowd:intensity=1.2 or "
        f"replay:path=traces/ (names: {', '.join(available_workloads())}; "
        "default: table1, the paper's synthetic traces)",
    )
    parser.add_argument(
        "--controlled", action="store_true",
        help="clamp the degree with Eq. (2)",
    )
    parser.add_argument(
        "--comp-delay", type=float, default=None, metavar="MS",
        help="per-dependent computational delay (default: 12.5 ms)",
    )
    parser.add_argument(
        "--comm-delay", type=float, default=None, metavar="MS",
        help="target mean repo-to-repo delay (default: topology's own)",
    )
    parser.add_argument(
        "--kernel", default=None, choices=sorted(KERNELS),
        help="engine kernel: auto (vectorized where supported, default), "
        "scalar (the oracle), or vectorized (error if unsupported); "
        "results are bit-identical either way",
    )
    parser.add_argument(
        "--clients", type=int, default=None, metavar="N",
        help="modeled end-clients per repository (default: preset value; "
        "the scalability preset attaches 1000)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default=None,
        help="verbosity of the repro.* loggers (default: info, which "
        "keeps the output identical to earlier print-based releases)",
    )

    subcommands = parser.add_subparsers(
        dest="command", metavar="COMMAND",
        description="optional subcommands (default: run one simulation)",
    )
    experiments = subcommands.add_parser(
        "experiments",
        help="declarative experiment registry: list | show | run",
        description=(
            "Discover and run the registered experiments (the paper's "
            "tables/figures and the system extensions) through the shared "
            "cached execution plane."
        ),
    )
    actions = experiments.add_subparsers(
        dest="experiments_command", metavar="ACTION", required=True
    )

    actions.add_parser(
        "list", help="names and descriptions of every registered experiment"
    )

    # The subcommand options reuse the top-level spelling (--preset,
    # --jobs) but need their own dests: argparse parses the subcommand
    # *after* the main options, so a shared dest would silently clobber
    # an explicit top-level value with the subparser's default.
    show = actions.add_parser(
        "show", help="one experiment's description, parameter schema and plan"
    )
    show.add_argument("name", help="registered experiment name")
    show.add_argument(
        "--preset", dest="exp_preset", default="tiny",
        help="preset used to size the plan preview",
    )

    run = actions.add_parser(
        "run", help="run experiments through the shared cached sweep plane"
    )
    run.add_argument("names", nargs="+", help="registered experiment names")
    run.add_argument(
        "--preset", dest="exp_preset", default="small",
        help="tiny | small | paper",
    )
    run.add_argument(
        "--jobs", dest="exp_jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for the shared sweep (1 = serial, 0 = one "
        "per CPU); results are bit-identical for every value",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point, ignoring the content-addressed cache",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    run.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="directory for per-experiment JSON artifacts (default: "
        "<cache-dir>/artifacts/<preset> when caching is on)",
    )
    run.add_argument(
        "--param", action="append", default=[], metavar="EXP.KEY=VALUE",
        help="typed experiment parameter, e.g. figure3.policy=distributed "
        "or figure3.t_values=100,50,0 (repeatable)",
    )
    run.add_argument(
        "--seed", dest="exp_seed", type=int, default=None, metavar="N",
        help="override the master seed of every planned config (pins the "
        "whole run, e.g. for the live cross-check)",
    )

    live = subcommands.add_parser(
        "live",
        help="the live repository network: run | loadgen",
        description=(
            "Run the cooperative repository network for real: actual "
            "servers replaying the config's workload through the same "
            "LeLA d3g and coherency filter the simulator uses."
        ),
    )
    live_actions = live.add_subparsers(
        dest="live_command", metavar="ACTION", required=True
    )

    def _live_common(sub: argparse.ArgumentParser) -> None:
        # Same dest-isolation rule as the experiments subcommand: the
        # subparser parses after the main options, so shared dests would
        # clobber explicit top-level values.
        sub.add_argument(
            "--preset", dest="live_preset", default="tiny",
            choices=sorted(SCALE_PRESETS), help="scale preset (default: tiny)",
        )
        sub.add_argument(
            "--policy", dest="live_policy", default="distributed",
            choices=available_policies(),
            help="dissemination policy (default: distributed)",
        )
        sub.add_argument(
            "--t", dest="live_t", type=float, default=80.0, metavar="PERCENT",
            help="share of stringent coherency tolerances (default: 80)",
        )
        sub.add_argument(
            "--seed", dest="live_seed", type=int, default=None,
            help="master seed (default: preset seed)",
        )
        sub.add_argument(
            "--transport", default="inprocess", choices=("inprocess", "tcp"),
            help="inprocess = deterministic virtual time (bit-reproducible); "
            "tcp = real localhost sockets (default: inprocess)",
        )
        sub.add_argument(
            "--time-scale", type=float, default=60.0, metavar="X",
            help="simulated seconds per wall second for the tcp transport "
            "(default: 60; ignored by inprocess, which runs virtual time)",
        )
        sub.add_argument(
            "--duration", type=float, default=None, metavar="S",
            help="truncate the replay to the first S simulated seconds "
            "(default: the full trace span)",
        )
        sub.add_argument(
            "--failures", dest="live_failures", type=_failure_counts,
            default=None, metavar="C,P",
            help="inject C repository crash/recover pairs and P link "
            "down/up windows (same seeded schedule the simulator runs)",
        )
        sub.add_argument(
            "--loss", dest="live_loss", type=float, default=None,
            metavar="P",
            help="seeded Bernoulli message-loss probability in [0, 1) "
            "(default: the config's, normally 0)",
        )
        sub.add_argument(
            "--adaptive", dest="live_adaptive", type=_adaptive_spec,
            default=None, metavar="K=V,...",
            help="arm drift-triggered online re-optimization "
            "(window/threshold/cooldown/scope/max_rewires; empty value = "
            "defaults; inprocess transport only)",
        )
        sub.add_argument(
            "--heartbeat-interval", type=float, default=0.5, metavar="S",
            help="tcp liveness-probe period in wall seconds; 0 disables "
            "(default: 0.5; ignored by inprocess)",
        )
        sub.add_argument(
            "--reconnect-backoff", type=float, default=0.05, metavar="S",
            help="initial tcp reconnect backoff, doubled per attempt "
            "(default: 0.05; ignored by inprocess)",
        )
        sub.add_argument(
            "--reconnect-attempts", type=int, default=5, metavar="N",
            help="tcp connection attempts before a frame is counted as "
            "dropped (default: 5; ignored by inprocess)",
        )
        sub.add_argument(
            "--quiesce-timeout", type=float, default=30.0, metavar="S",
            help="wall seconds to wait for in-flight tcp messages after "
            "the replay before counting them as drops (default: 30; "
            "ignored by inprocess)",
        )
        sub.add_argument(
            "--drain-timeout", type=float, default=2.0, metavar="S",
            help="wall seconds granted to tcp connection handlers to "
            "flush buffered frames at teardown (default: 2; ignored by "
            "inprocess)",
        )
        sub.add_argument(
            "--wall-stretch-cap", type=float, default=20.0, metavar="X",
            help="cap on the internal budget stretch applied when "
            "--time-scale runs slower than 60x; raise on slow CI "
            "machines (default: 20; ignored by inprocess)",
        )

    live_run = live_actions.add_parser(
        "run", help="replay the workload through a live network"
    )
    _live_common(live_run)

    loadgen = live_actions.add_parser(
        "loadgen",
        help="attach synthetic clients and report observed fidelity",
    )
    _live_common(loadgen)
    loadgen.add_argument(
        "--jobs", dest="live_jobs", type=_job_count, default=8, metavar="N",
        help="number of concurrent synthetic clients (default: 8)",
    )

    fleet = subcommands.add_parser(
        "fleet",
        help="the multi-process live fleet: run | loadgen",
        description=(
            "Run the live repository network sharded across worker "
            "processes: each worker hosts a shard of the d3g, workers "
            "speak the hardened wire protocol over localhost TCP, and "
            "repositories anti-entropy-resync against their parents on "
            "reconnect."
        ),
    )
    fleet_actions = fleet.add_subparsers(
        dest="fleet_command", metavar="ACTION", required=True
    )

    def _fleet_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers", type=int, default=2, metavar="N",
            help="worker processes the shards spread over (default: 2)",
        )
        sub.add_argument(
            "--preset", dest="fleet_preset", default="tiny",
            choices=sorted(SCALE_PRESETS), help="scale preset (default: tiny)",
        )
        sub.add_argument(
            "--policy", dest="fleet_policy", default="distributed",
            choices=available_policies(),
            help="dissemination policy (default: distributed)",
        )
        sub.add_argument(
            "--t", dest="fleet_t", type=float, default=80.0, metavar="PERCENT",
            help="share of stringent coherency tolerances (default: 80)",
        )
        sub.add_argument(
            "--seed", dest="fleet_seed", type=int, default=None,
            help="master seed (default: preset seed)",
        )
        sub.add_argument(
            "--time-scale", type=float, default=60.0, metavar="X",
            help="simulated seconds per wall second (default: 60)",
        )
        sub.add_argument(
            "--duration", type=float, default=None, metavar="S",
            help="truncate the replay to the first S simulated seconds "
            "(default: the full trace span)",
        )
        sub.add_argument(
            "--quiesce-timeout", type=float, default=30.0, metavar="S",
            help="wall budget for fleet-wide quiescence after the replay "
            "(default: 30)",
        )
        sub.add_argument(
            "--heartbeat-interval", type=float, default=0.5, metavar="S",
            help="per-link liveness-probe period in wall seconds; 0 "
            "disables (default: 0.5)",
        )
        sub.add_argument(
            "--reconnect-backoff", type=float, default=0.05, metavar="S",
            help="initial link reconnect backoff, doubled per attempt "
            "(default: 0.05)",
        )
        sub.add_argument(
            "--reconnect-attempts", type=int, default=5, metavar="N",
            help="connection attempts before a frame is counted as "
            "dropped (default: 5)",
        )
        sub.add_argument(
            "--wall-stretch-cap", type=float, default=20.0, metavar="X",
            help="cap on the slow---time-scale budget stretch "
            "(default: 20)",
        )
        sub.add_argument(
            "--queue-high", type=int, default=256, metavar="N",
            help="send-queue depth at which producers block (default: 256)",
        )
        sub.add_argument(
            "--queue-low", type=int, default=64, metavar="N",
            help="send-queue depth at which blocked producers resume "
            "(default: 64)",
        )
        sub.add_argument(
            "--resync-sample", type=int, default=8, metavar="N",
            help="first anti-entropy sample-round size; rounds double "
            "from here (default: 8)",
        )
        sub.add_argument(
            "--sever-at", type=float, default=None, metavar="S",
            help="fault injection: sever worker 0's outbound links at "
            "this simulated time, exercising reconnect + anti-entropy "
            "resync (default: off)",
        )

    fleet_run = fleet_actions.add_parser(
        "run", help="replay the workload through a sharded fleet"
    )
    _fleet_common(fleet_run)
    fleet_run.add_argument(
        "--crosscheck", action="store_true",
        help="also run the single-process inprocess transport on the "
        "same config and verify the fleet agrees on fidelity within "
        "0.5pp (exits nonzero on disagreement)",
    )

    fleet_loadgen = fleet_actions.add_parser(
        "loadgen",
        help="shard synthetic clients across the fleet and report",
    )
    _fleet_common(fleet_loadgen)
    fleet_loadgen.add_argument(
        "--jobs", dest="fleet_jobs", type=_job_count, default=64, metavar="N",
        help="number of synthetic clients, sharded across the workers "
        "(default: 64)",
    )

    obs = subcommands.add_parser(
        "obs",
        help="observability: trace | metrics | explain",
        description=(
            "Run one traced simulation and inspect it: per-update trace "
            "spans, the metrics-registry snapshot, or the causal "
            "explanation of every fidelity-loss segment.  Tracing is "
            "attached out-of-band, so the traced run is bit-identical "
            "to the untraced one."
        ),
    )
    obs_actions = obs.add_subparsers(
        dest="obs_command", metavar="ACTION", required=True
    )

    def _obs_common(sub: argparse.ArgumentParser) -> None:
        # Same dest-isolation rule as the other subcommands.
        sub.add_argument(
            "--preset", dest="obs_preset", default="tiny",
            choices=sorted(SCALE_PRESETS), help="scale preset (default: tiny)",
        )
        sub.add_argument(
            "--policy", dest="obs_policy", default="distributed",
            choices=available_policies(),
            help="dissemination policy (default: distributed)",
        )
        sub.add_argument(
            "--t", dest="obs_t", type=float, default=80.0, metavar="PERCENT",
            help="share of stringent coherency tolerances (default: 80)",
        )
        sub.add_argument(
            "--seed", dest="obs_seed", type=int, default=None,
            help="master seed (default: preset seed)",
        )
        sub.add_argument(
            "--kernel", dest="obs_kernel", default=None,
            choices=sorted(KERNELS),
            help="engine kernel; traced spans are identical either way "
            "(default: auto)",
        )
        sub.add_argument(
            "--failures", dest="obs_failures", type=_failure_counts,
            default=None, metavar="C,P",
            help="inject C repository crash/recover pairs and P link "
            "down/up windows (the seeded schedule; drops show up as "
            "crash/partition spans)",
        )
        sub.add_argument(
            "--loss", dest="obs_loss", type=float, default=None, metavar="P",
            help="seeded Bernoulli message-loss probability in [0, 1) "
            "(default: the config's, normally 0)",
        )
        sub.add_argument(
            "--json", dest="obs_json", default=None, metavar="PATH",
            help="also write the full span stream / metrics snapshot as "
            "a JSON artifact",
        )

    obs_trace = obs_actions.add_parser(
        "trace", help="hop-by-hop span records of one traced run"
    )
    _obs_common(obs_trace)
    obs_trace.add_argument(
        "--update", dest="obs_update", type=int, default=None, metavar="ID",
        help="show only this update's spans (default: all, capped by "
        "--limit)",
    )
    obs_trace.add_argument(
        "--limit", dest="obs_limit", type=int, default=40, metavar="N",
        help="span lines printed (default: 40; 0 = unlimited)",
    )

    obs_metrics = obs_actions.add_parser(
        "metrics", help="metrics-registry snapshot of one traced run"
    )
    _obs_common(obs_metrics)

    obs_explain = obs_actions.add_parser(
        "explain",
        help="name the hop and reason behind every fidelity-loss segment",
    )
    _obs_common(obs_explain)
    return parser


def _experiments_list() -> None:
    from repro.experiments import api

    names = api.available_experiments()
    width = max(len(n) for n in names)
    for name in names:
        spec = api.get_experiment(name)
        print(f"{name:<{width}}  {spec.description}")


def _experiments_show(name: str, preset: str) -> None:
    from repro.experiments import api

    spec = api.get_experiment(name)
    ctx = api.ExperimentContext(preset=preset, params=spec.resolve_params())
    plan = spec.plan(ctx)
    print(f"{spec.name}: {spec.description}")
    print(f"\nparameters ({len(spec.params)}):")
    if not spec.params:
        print("  (none)")
    for p in spec.params:
        print(f"  {p.name:<18} {p.kind:<7} default={p.default!r}")
        if p.help:
            print(f"  {'':<18} {p.help}")
    print(
        f"\nplan ({preset} preset): {len(plan)} sweep configs, "
        f"{len(set(plan))} distinct"
    )
    if plan:
        print(f"plan fingerprint: {api.plan_fingerprint(plan)[:16]}")


def _parse_params(
    pairs: list[str], names: list[str]
) -> dict[str, dict[str, object]]:
    from repro.experiments import api

    params: dict[str, dict[str, object]] = {}
    for pair in pairs:
        target, eq, value = pair.partition("=")
        exp, dot, key = target.partition(".")
        if not eq or not dot or not exp or not key:
            raise SystemExit(
                f"--param expects EXP.KEY=VALUE, got {pair!r}"
            )
        if exp not in names:
            raise SystemExit(
                f"--param names unknown or unrequested experiment {exp!r}"
            )
        spec = api.get_experiment(exp)
        try:
            params.setdefault(exp, {})[key] = spec.param(key).coerce(value)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    return params


def _experiments_run(args) -> None:
    from pathlib import Path

    from repro.experiments import api
    from repro.experiments.cache import ResultCache, default_cache_root

    names = list(dict.fromkeys(args.names))
    known = api.available_experiments()
    unknown = [n for n in names if n not in known]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; choose from {known}")

    cache = None
    if not args.no_cache:
        cache = ResultCache(Path(args.cache_dir or default_cache_root()))
    artifacts_dir = args.artifacts
    if artifacts_dir is None and cache is not None:
        artifacts_dir = cache.root / "artifacts" / args.exp_preset

    overrides = {"seed": args.exp_seed} if args.exp_seed is not None else None
    report = api.run_experiments(
        names,
        preset=args.exp_preset,
        jobs=args.exp_jobs,
        cache=cache,
        artifacts_dir=artifacts_dir,
        params_by_name=_parse_params(args.param, names),
        overrides=overrides,
        progress=get_logger("repro.experiments").info,
    )
    for name in names:
        print(f"\n{report.texts[name]}")
    if report.artifacts:
        print(f"\n[artifacts: {artifacts_dir}]")


def _live_config(args):
    overrides: dict = {"t_percent": args.live_t, "policy": args.live_policy}
    if args.live_seed is not None:
        overrides["seed"] = args.live_seed
    if args.live_loss is not None:
        overrides["message_loss_probability"] = args.live_loss
    if args.live_adaptive is not None:
        overrides["adaptive"] = args.live_adaptive
    config = preset_config(args.live_preset, **overrides)
    if args.live_failures is not None:
        crashes, partitions = args.live_failures
        config = config.with_(
            failures=failures_for_config(
                config, crashes=crashes, partitions=partitions
            )
        )
    return config


def _live_knobs(args) -> dict:
    return dict(
        duration=args.duration,
        time_scale=args.time_scale,
        heartbeat_interval_s=args.heartbeat_interval,
        reconnect_backoff_s=args.reconnect_backoff,
        reconnect_attempts=args.reconnect_attempts,
        quiesce_timeout_s=args.quiesce_timeout,
        drain_timeout_s=args.drain_timeout,
        wall_stretch_cap=args.wall_stretch_cap,
    )


def _live_run(args) -> None:
    from repro.live import run_live

    config = _live_config(args)
    result = run_live(config, args.transport, **_live_knobs(args))
    rate = result.delivered / result.wall_seconds if result.wall_seconds else 0.0
    print(f"preset={args.live_preset} policy={args.live_policy} "
          f"transport={result.transport} workload={config.workload.describe()}")
    print(f"observed loss of fidelity : {result.loss_of_fidelity:.3f} %")
    print(f"messages (repo plane)     : {result.messages}")
    print(f"sent/delivered/dropped    : {result.sent}/{result.delivered}"
          f"/{result.dropped} (conserved={result.conserved})")
    print(f"replayed span             : {result.sim_span_s:.0f} s simulated")
    print(f"wall time                 : {result.wall_seconds:.2f} s "
          f"({rate:.0f} deliveries/s)")
    if args.live_failures is not None:
        print(f"failure events            : "
              f"{result.extras.get('failure_events', 0)} "
              f"({result.extras.get('crashes', 0)} crashes, "
              f"{result.extras.get('partitions', 0)} partitions)")
        print(f"resyncs (checks/msgs)     : {result.counters.resyncs} "
              f"({result.counters.resync_checks}"
              f"/{result.counters.resync_messages})")
        if "heartbeats" in result.extras:
            print(f"heartbeats/reconnects     : "
                  f"{result.extras['heartbeats']}"
                  f"/{result.extras['reconnects']}")
    if args.live_adaptive is not None:
        print(f"drift ticks/triggered     : "
              f"{result.extras.get('adaptive_ticks', 0)}"
              f"/{result.extras.get('adaptive_triggered', 0)}")
        print(f"adaptive rewires          : "
              f"{result.extras.get('adaptive_rewires', 0)} "
              f"({result.counters.resubscriptions} resubscriptions)")


def _live_loadgen(args) -> None:
    from repro.live import run_loadgen

    if args.live_jobs < 1:
        raise SystemExit("--jobs must be >= 1 for loadgen")
    config = _live_config(args)
    report = run_loadgen(
        config,
        args.live_jobs,
        args.transport,
        **_live_knobs(args),
    )
    result = report.result
    print(f"preset={args.live_preset} policy={args.live_policy} "
          f"transport={result.transport} clients={args.live_jobs}")
    print(f"network loss of fidelity  : {result.loss_of_fidelity:.3f} %")
    print(f"client requirements met   : {report.n_met}/{report.n_requirements} "
          f"({100.0 * report.met_fraction:.0f}%)")
    print(f"client messages           : "
          f"{result.extras.get('client_messages', 0)}")
    print(f"{'client':>6} {'repo':>5} {'items':>5} {'met':>4} "
          f"{'worst observed loss%':>21}")
    for client in report.clients:
        worst = max(client.observed_loss.values(), default=0.0)
        print(f"{client.client_id:>6} {client.repository:>5} "
              f"{len(client.requirements):>5} "
              f"{sum(client.met.values()):>4} {worst:>21.3f}")


def _fleet_config(args):
    overrides: dict = {"t_percent": args.fleet_t, "policy": args.fleet_policy}
    if args.fleet_seed is not None:
        overrides["seed"] = args.fleet_seed
    return preset_config(args.fleet_preset, **overrides)


def _fleet_knobs(args) -> dict:
    return dict(
        workers=args.workers,
        duration=args.duration,
        time_scale=args.time_scale,
        quiesce_timeout_s=args.quiesce_timeout,
        heartbeat_interval_s=args.heartbeat_interval,
        reconnect_backoff_s=args.reconnect_backoff,
        reconnect_attempts=args.reconnect_attempts,
        wall_stretch_cap=args.wall_stretch_cap,
        queue_high=args.queue_high,
        queue_low=args.queue_low,
        resync_sample=args.resync_sample,
        sever_at_s=args.sever_at,
    )


def _print_fleet_result(result, args) -> None:
    rate = result.delivered / result.wall_seconds if result.wall_seconds else 0.0
    print(f"preset={args.fleet_preset} policy={args.fleet_policy} "
          f"workers={result.extras['workers']} "
          f"shards={result.extras['shard_sizes']}")
    print(f"observed loss of fidelity : {result.loss_of_fidelity:.3f} %")
    print(f"messages (repo plane)     : {result.messages}")
    print(f"sent/delivered/dropped    : {result.sent}/{result.delivered}"
          f"/{result.dropped} (conserved={result.conserved})")
    print(f"replayed span             : {result.sim_span_s:.0f} s simulated")
    print(f"wall time                 : {result.wall_seconds:.2f} s "
          f"({rate:.0f} deliveries/s)")
    print(f"queue stalls              : {result.extras['queue_stalls']}")
    if result.extras.get("reconnects") or result.counters.resyncs:
        print(f"reconnects                : "
              f"{result.extras.get('reconnects', 0)}")
        print(f"resyncs (checks/msgs)     : {result.counters.resyncs} "
              f"({result.counters.resync_checks}"
              f"/{result.counters.resync_messages})")


def _fleet_run(args) -> None:
    from repro.fleet import run_fleet
    from repro.live import run_live

    config = _fleet_config(args)
    result = run_fleet(config, **_fleet_knobs(args))
    _print_fleet_result(result, args)
    if not result.conserved:
        raise SystemExit("fleet run violated wire conservation")
    if args.crosscheck:
        single = run_live(config, "inprocess", duration=args.duration)
        gap = abs(single.loss_of_fidelity - result.loss_of_fidelity)
        print(f"crosscheck single-process : loss="
              f"{single.loss_of_fidelity:.3f} % (gap {gap:.3f} pp)")
        if gap > 0.5:
            raise SystemExit(
                f"fleet fidelity diverged from the single-process run by "
                f"{gap:.3f} pp (> 0.5 pp)"
            )


def _fleet_loadgen(args) -> None:
    from repro.fleet import run_fleet_loadgen

    if args.fleet_jobs < 1:
        raise SystemExit("--jobs must be >= 1 for loadgen")
    config = _fleet_config(args)
    report = run_fleet_loadgen(
        config, args.fleet_jobs, **_fleet_knobs(args)
    )
    result = report.result
    _print_fleet_result(result, args)
    print(f"clients (sharded)         : {args.fleet_jobs}")
    print(f"client requirements met   : {report.n_met}/{report.n_requirements} "
          f"({100.0 * report.met_fraction:.0f}%)")
    print(f"client messages           : "
          f"{result.extras.get('client_messages', 0)}")


def _obs_config(args):
    overrides: dict = {"t_percent": args.obs_t, "policy": args.obs_policy}
    if args.obs_seed is not None:
        overrides["seed"] = args.obs_seed
    if args.obs_kernel is not None:
        overrides["kernel"] = args.obs_kernel
    if args.obs_loss is not None:
        overrides["message_loss_probability"] = args.obs_loss
    config = preset_config(args.obs_preset, **overrides)
    if args.obs_failures is not None:
        crashes, partitions = args.obs_failures
        config = config.with_(
            failures=failures_for_config(
                config, crashes=crashes, partitions=partitions
            )
        )
    return config


def _obs_run(args):
    """One traced run: the recorder rides out-of-band next to the config."""
    from repro.obs import TraceRecorder

    config = _obs_config(args)
    recorder = TraceRecorder(policy=config.policy)
    result = run_simulation(config, observer=recorder)
    return config, recorder, result


def _format_span(ev) -> str:
    hop = f"{ev.node}->{ev.dst}" if ev.dst is not None else f"{ev.node}"
    if ev.kind in ("check", "source"):
        verdict = "ok" if ev.forwarded else f"[{ev.reason}]"
        return (f"  t={ev.time:9.3f}s update={ev.update_id:<4d} "
                f"item={ev.item_id} {ev.kind:<8s} {hop:<9s} {verdict}")
    if ev.kind == "drop":
        return (f"  t={ev.time:9.3f}s update={ev.update_id:<4d} "
                f"item={ev.item_id} {ev.kind:<8s} {hop:<9s} [{ev.reason}]")
    return (f"  t={ev.time:9.3f}s update={ev.update_id:<4d} "
            f"item={ev.item_id} {ev.kind:<8s} {hop}")


def _obs_trace(args) -> None:
    config, recorder, result = _obs_run(args)
    totals = recorder.totals()
    print(f"preset={args.obs_preset} policy={args.obs_policy} "
          f"workload={config.workload.describe()}")
    print(f"updates traced        : {len(recorder.by_update())}")
    print(f"spans recorded        : {len(recorder)}")
    print(f"span economy          : {totals.messages} forwards, "
          f"{totals.deliveries} deliveries, {totals.drops} drops "
          f"(counters agree: "
          f"{totals.messages == result.counters.messages and totals.deliveries == result.counters.deliveries and totals.drops == result.counters.drops})")
    events = (
        recorder.spans(args.obs_update)
        if args.obs_update is not None
        else recorder.events
    )
    shown = events if args.obs_limit == 0 else events[: args.obs_limit]
    for ev in shown:
        print(_format_span(ev))
    if len(shown) < len(events):
        print(f"  ... {len(events) - len(shown)} more spans "
              f"(raise --limit or use --json)")
    if args.obs_json:
        print(f"[trace: {recorder.write_json(args.obs_json)}]")


def _obs_metrics(args) -> None:
    import json as _json

    config, recorder, result = _obs_run(args)
    del config, result
    snapshot = recorder.metrics.snapshot()
    if args.obs_json:
        print(f"[metrics: {recorder.metrics.write_json(args.obs_json)}]")
    else:
        print(_json.dumps(snapshot, indent=2))


def _obs_explain(args) -> None:
    from repro.obs import explain_loss_segments, format_explanation

    config, recorder, result = _obs_run(args)
    del config
    per_pair = result.extras.get("per_pair_loss", {})
    segments = {pair: loss for pair, loss in per_pair.items() if loss > 0.0}
    print(f"loss of fidelity      : {result.loss_of_fidelity:.3f} %")
    print(f"loss segments         : {len(segments)} of {len(per_pair)} "
          f"(repository, item) pairs")
    if not segments:
        print("nothing to explain: every pair saw full fidelity")
        return
    explanations = explain_loss_segments(recorder, per_pair)
    for (repo, item_id), pair_explanations in explanations.items():
        print(f"repo {repo} item {item_id}: loss "
              f"{per_pair[(repo, item_id)]:.3f} %")
        # One line per distinct terminal cause, heaviest first.
        groups: dict[tuple, int] = {}
        for e in pair_explanations:
            key = (e.verdict, e.node, e.dst, e.reason)
            groups[key] = groups.get(key, 0) + 1
        for (verdict, node, dst, reason), count in sorted(
            groups.items(), key=lambda kv: (-kv[1], str(kv[0]))
        ):
            if verdict == "dropped":
                cause = f"dropped on hop {node}->{dst} [{reason}]"
            elif verdict == "filtered":
                cause = f"filtered on hop {node}->{dst} [{reason}]"
            elif verdict == "suppressed":
                cause = f"suppressed at source {node} [{reason}]"
            else:
                cause = f"{verdict} [{reason}]"
            print(f"  {count:>4} update{'s' if count != 1 else ''} {cause}")
    if args.obs_json:
        import json as _json
        from pathlib import Path

        path = Path(args.obs_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(
                [
                    {
                        "repository": e.repository,
                        "item_id": e.item_id,
                        "update_id": e.update_id,
                        "verdict": e.verdict,
                        "node": e.node,
                        "dst": e.dst,
                        "reason": e.reason,
                        "time": e.time,
                        "path": list(e.path),
                    }
                    for pair_explanations in explanations.values()
                    for e in pair_explanations
                ],
                indent=2,
            )
            + "\n"
        )
        print(f"[explanations: {path}]")


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    setup_cli_logging(getattr(args, "log_level", None))

    if getattr(args, "command", None) == "obs":
        handlers = {
            "trace": _obs_trace,
            "metrics": _obs_metrics,
            "explain": _obs_explain,
        }
        try:
            handlers[args.obs_command](args)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        return
    if getattr(args, "command", None) == "fleet":
        try:
            if args.fleet_command == "run":
                _fleet_run(args)
            else:
                _fleet_loadgen(args)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        return
    if getattr(args, "command", None) == "live":
        try:
            if args.live_command == "run":
                _live_run(args)
            else:
                _live_loadgen(args)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        return
    if getattr(args, "command", None) == "experiments":
        try:
            if args.experiments_command == "list":
                _experiments_list()
            elif args.experiments_command == "show":
                _experiments_show(args.name, args.exp_preset)
            else:
                _experiments_run(args)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        return
    overrides: dict = {
        "t_percent": args.t,
        "policy": args.policy,
        "controlled_cooperation": args.controlled,
    }
    if args.degree is not None:
        overrides["offered_degree"] = args.degree
    if args.comp_delay is not None:
        overrides["comp_delay_ms"] = args.comp_delay
    if args.comm_delay is not None:
        overrides["comm_target_ms"] = args.comm_delay
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workload is not None:
        overrides["workload"] = args.workload
    if args.kernel is not None:
        overrides["kernel"] = args.kernel
    if args.clients is not None:
        overrides["clients_per_repository"] = args.clients

    if args.adaptive is not None:
        overrides["adaptive"] = args.adaptive

    config = preset_config(args.preset, **overrides)
    if args.churn is not None:
        joins, departs, updates = args.churn
        config = config.with_(
            churn=schedule_for_config(
                config, joins=joins, departs=departs, updates=updates
            )
        )
    if args.failures is not None:
        crashes, partitions = args.failures
        try:
            config = config.with_(
                failures=failures_for_config(
                    config, crashes=crashes, partitions=partitions
                )
            )
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None

    if args.degrees is not None:
        degrees = args.degrees
        configs = [config.with_(offered_degree=d) for d in degrees]
        results = run_sweep(configs, jobs=args.jobs)
        print(f"preset={args.preset} policy={args.policy} T={args.t:.0f}% "
              f"workload={config.workload.describe()} jobs={args.jobs}")
        for degree, result in zip(degrees, results):
            print(f"degree={degree:<4d} {result.summary()}")
        return

    result = run_simulation(config)

    print(f"preset={args.preset} policy={args.policy} T={args.t:.0f}% "
          f"workload={config.workload.describe()}")
    print(f"degree of cooperation : {result.effective_degree}"
          + (" (Eq. 2 controlled)" if args.controlled else ""))
    print(f"mean comm delay       : {result.avg_comm_delay_ms:.1f} ms")
    print(f"d3g depth/diameter    : {result.tree_stats.max_depth}"
          f"/{result.tree_stats.diameter_hops}")
    print(f"loss of fidelity      : {result.loss_of_fidelity:.3f} %")
    print(f"messages              : {result.messages}")
    print(f"source checks         : {result.source_checks}")
    print(f"events processed      : {result.events_processed}")
    if config.clients_per_repository:
        clients = config.n_repositories * config.clients_per_repository
        print(f"modeled clients       : {clients}")
        print(f"client checks/serves  : {result.counters.client_checks}"
              f"/{result.counters.client_messages}")
    if args.churn is not None:
        print(f"churn events          : {result.counters.reconfigurations}")
        print(f"reconfiguration cost  : {result.reconfiguration_cost} "
              "resubscriptions")
        print(f"reconfiguration drops : {result.counters.drops}")
    if args.failures is not None:
        print(f"failure events        : {result.extras.get('failure_events', 0)} "
              f"({result.extras.get('crashes', 0)} crashes, "
              f"{result.extras.get('partitions', 0)} partitions)")
        print(f"messages dropped      : {result.counters.drops}")
        print(f"failover edge moves   : "
              f"{result.counters.edges_added + result.counters.edges_removed}")
        print(f"resyncs (checks/msgs) : {result.counters.resyncs} "
              f"({result.counters.resync_checks}"
              f"/{result.counters.resync_messages})")
    if args.adaptive is not None:
        print(f"drift ticks/triggered : {result.extras.get('adaptive_ticks', 0)}"
              f"/{result.extras.get('adaptive_triggered', 0)}")
        print(f"adaptive rewires      : "
              f"{result.extras.get('adaptive_rewires', 0)}")
        print(f"reconfiguration cost  : {result.reconfiguration_cost} "
              "resubscriptions")


if __name__ == "__main__":
    main()

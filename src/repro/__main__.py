"""Command-line entry point: run one dissemination simulation or sweep.

Examples::

    python -m repro                              # tiny preset, defaults
    python -m repro --preset small --t 100 --degree 8 --policy centralized
    python -m repro --controlled --offered 100   # Eq. (2) picks the degree
    python -m repro --degrees 1,2,4,8 --jobs 4   # parallel degree sweep
    python -m repro --churn 2,1,2                # mid-run membership churn
    python -m repro --workload flash_crowd:intensity=1.2
    python -m repro --workload replay:path=my_traces/
"""

from __future__ import annotations

import argparse

from repro.core.dissemination import available_policies
from repro.engine import SCALE_PRESETS, run_simulation, run_sweep, schedule_for_config
from repro.engine.churn import parse_churn_spec
from repro.errors import ConfigurationError
from repro.experiments.runner import preset_config
from repro.workloads import available_workloads, parse_workload_spec

__all__ = ["main"]


def _degree_list(text: str) -> list[int]:
    try:
        return [int(d) for d in text.split(",") if d.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _churn_counts(text: str) -> tuple[int, int, int]:
    try:
        return parse_churn_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _workload_spec(text: str):
    try:
        return parse_workload_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _job_count(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one worker per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run one cooperative-dissemination simulation "
            "(Shah et al., VLDB 2002 reproduction)."
        ),
    )
    parser.add_argument(
        "--preset", default="tiny", choices=sorted(SCALE_PRESETS),
        help="scale preset (default: tiny)",
    )
    parser.add_argument(
        "--policy", default="distributed", choices=available_policies(),
        help="dissemination policy (default: distributed)",
    )
    parser.add_argument(
        "--t", type=float, default=80.0, metavar="PERCENT",
        help="share of stringent coherency tolerances (default: 80)",
    )
    parser.add_argument(
        "--degree", type=int, default=None, metavar="N",
        help="offered degree of cooperation (default: preset value)",
    )
    parser.add_argument(
        "--degrees", type=_degree_list, default=None, metavar="N,N,...",
        help="comma-separated degree sweep; one summary line per degree "
        "(runs through the parallel sweep subsystem)",
    )
    parser.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for --degrees sweeps (1 = serial, "
        "0 = one per CPU); results are bit-identical for every value",
    )
    parser.add_argument(
        "--churn", type=_churn_counts, default=None, metavar="J,D,U",
        help="synthetic mid-run churn: J late joins, D departures, U "
        "coherency changes, placed by a schedule derived from the seed "
        "(see repro.engine.churn)",
    )
    parser.add_argument(
        "--workload", type=_workload_spec, default=None, metavar="NAME[:K=V,...]",
        help="update-stream workload, e.g. flash_crowd:intensity=1.2 or "
        f"replay:path=traces/ (names: {', '.join(available_workloads())}; "
        "default: table1, the paper's synthetic traces)",
    )
    parser.add_argument(
        "--controlled", action="store_true",
        help="clamp the degree with Eq. (2)",
    )
    parser.add_argument(
        "--comp-delay", type=float, default=None, metavar="MS",
        help="per-dependent computational delay (default: 12.5 ms)",
    )
    parser.add_argument(
        "--comm-delay", type=float, default=None, metavar="MS",
        help="target mean repo-to-repo delay (default: topology's own)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    overrides: dict = {
        "t_percent": args.t,
        "policy": args.policy,
        "controlled_cooperation": args.controlled,
    }
    if args.degree is not None:
        overrides["offered_degree"] = args.degree
    if args.comp_delay is not None:
        overrides["comp_delay_ms"] = args.comp_delay
    if args.comm_delay is not None:
        overrides["comm_target_ms"] = args.comm_delay
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workload is not None:
        overrides["workload"] = args.workload

    config = preset_config(args.preset, **overrides)
    if args.churn is not None:
        joins, departs, updates = args.churn
        config = config.with_(
            churn=schedule_for_config(
                config, joins=joins, departs=departs, updates=updates
            )
        )

    if args.degrees is not None:
        degrees = args.degrees
        configs = [config.with_(offered_degree=d) for d in degrees]
        results = run_sweep(configs, jobs=args.jobs)
        print(f"preset={args.preset} policy={args.policy} T={args.t:.0f}% "
              f"workload={config.workload.describe()} jobs={args.jobs}")
        for degree, result in zip(degrees, results):
            print(f"degree={degree:<4d} {result.summary()}")
        return

    result = run_simulation(config)

    print(f"preset={args.preset} policy={args.policy} T={args.t:.0f}% "
          f"workload={config.workload.describe()}")
    print(f"degree of cooperation : {result.effective_degree}"
          + (" (Eq. 2 controlled)" if args.controlled else ""))
    print(f"mean comm delay       : {result.avg_comm_delay_ms:.1f} ms")
    print(f"d3g depth/diameter    : {result.tree_stats.max_depth}"
          f"/{result.tree_stats.diameter_hops}")
    print(f"loss of fidelity      : {result.loss_of_fidelity:.3f} %")
    print(f"messages              : {result.messages}")
    print(f"source checks         : {result.source_checks}")
    print(f"events processed      : {result.events_processed}")
    if args.churn is not None:
        print(f"churn events          : {result.counters.reconfigurations}")
        print(f"reconfiguration cost  : {result.reconfiguration_cost} "
              "resubscriptions")
        print(f"reconfiguration drops : {result.counters.drops}")


if __name__ == "__main__":
    main()

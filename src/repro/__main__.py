"""Command-line entry point: run one dissemination simulation or sweep.

Examples::

    python -m repro                              # tiny preset, defaults
    python -m repro --preset small --t 100 --degree 8 --policy centralized
    python -m repro --controlled --offered 100   # Eq. (2) picks the degree
    python -m repro --degrees 1,2,4,8 --jobs 4   # parallel degree sweep
    python -m repro --churn 2,1,2                # mid-run membership churn
    python -m repro --workload flash_crowd:intensity=1.2
    python -m repro --workload replay:path=my_traces/

The declarative experiment registry hangs off the ``experiments``
subcommand::

    python -m repro experiments list
    python -m repro experiments show figure3
    python -m repro experiments run figure3 figure8 --preset tiny --jobs 4
"""

from __future__ import annotations

import argparse

from repro.core.dissemination import available_policies
from repro.engine import SCALE_PRESETS, run_simulation, run_sweep, schedule_for_config
from repro.engine.churn import parse_churn_spec
from repro.errors import ConfigurationError
from repro.experiments.runner import preset_config
from repro.workloads import available_workloads, parse_workload_spec

__all__ = ["main"]


def _degree_list(text: str) -> list[int]:
    try:
        return [int(d) for d in text.split(",") if d.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _churn_counts(text: str) -> tuple[int, int, int]:
    try:
        return parse_churn_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _workload_spec(text: str):
    try:
        return parse_workload_spec(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _job_count(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one worker per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run one cooperative-dissemination simulation "
            "(Shah et al., VLDB 2002 reproduction)."
        ),
    )
    parser.add_argument(
        "--preset", default="tiny", choices=sorted(SCALE_PRESETS),
        help="scale preset (default: tiny)",
    )
    parser.add_argument(
        "--policy", default="distributed", choices=available_policies(),
        help="dissemination policy (default: distributed)",
    )
    parser.add_argument(
        "--t", type=float, default=80.0, metavar="PERCENT",
        help="share of stringent coherency tolerances (default: 80)",
    )
    parser.add_argument(
        "--degree", type=int, default=None, metavar="N",
        help="offered degree of cooperation (default: preset value)",
    )
    parser.add_argument(
        "--degrees", type=_degree_list, default=None, metavar="N,N,...",
        help="comma-separated degree sweep; one summary line per degree "
        "(runs through the parallel sweep subsystem)",
    )
    parser.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for --degrees sweeps (1 = serial, "
        "0 = one per CPU); results are bit-identical for every value",
    )
    parser.add_argument(
        "--churn", type=_churn_counts, default=None, metavar="J,D,U",
        help="synthetic mid-run churn: J late joins, D departures, U "
        "coherency changes, placed by a schedule derived from the seed "
        "(see repro.engine.churn)",
    )
    parser.add_argument(
        "--workload", type=_workload_spec, default=None, metavar="NAME[:K=V,...]",
        help="update-stream workload, e.g. flash_crowd:intensity=1.2 or "
        f"replay:path=traces/ (names: {', '.join(available_workloads())}; "
        "default: table1, the paper's synthetic traces)",
    )
    parser.add_argument(
        "--controlled", action="store_true",
        help="clamp the degree with Eq. (2)",
    )
    parser.add_argument(
        "--comp-delay", type=float, default=None, metavar="MS",
        help="per-dependent computational delay (default: 12.5 ms)",
    )
    parser.add_argument(
        "--comm-delay", type=float, default=None, metavar="MS",
        help="target mean repo-to-repo delay (default: topology's own)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")

    subcommands = parser.add_subparsers(
        dest="command", metavar="COMMAND",
        description="optional subcommands (default: run one simulation)",
    )
    experiments = subcommands.add_parser(
        "experiments",
        help="declarative experiment registry: list | show | run",
        description=(
            "Discover and run the registered experiments (the paper's "
            "tables/figures and the system extensions) through the shared "
            "cached execution plane."
        ),
    )
    actions = experiments.add_subparsers(
        dest="experiments_command", metavar="ACTION", required=True
    )

    actions.add_parser(
        "list", help="names and descriptions of every registered experiment"
    )

    # The subcommand options reuse the top-level spelling (--preset,
    # --jobs) but need their own dests: argparse parses the subcommand
    # *after* the main options, so a shared dest would silently clobber
    # an explicit top-level value with the subparser's default.
    show = actions.add_parser(
        "show", help="one experiment's description, parameter schema and plan"
    )
    show.add_argument("name", help="registered experiment name")
    show.add_argument(
        "--preset", dest="exp_preset", default="tiny",
        help="preset used to size the plan preview",
    )

    run = actions.add_parser(
        "run", help="run experiments through the shared cached sweep plane"
    )
    run.add_argument("names", nargs="+", help="registered experiment names")
    run.add_argument(
        "--preset", dest="exp_preset", default="small",
        help="tiny | small | paper",
    )
    run.add_argument(
        "--jobs", dest="exp_jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for the shared sweep (1 = serial, 0 = one "
        "per CPU); results are bit-identical for every value",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point, ignoring the content-addressed cache",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    run.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="directory for per-experiment JSON artifacts (default: "
        "<cache-dir>/artifacts/<preset> when caching is on)",
    )
    run.add_argument(
        "--param", action="append", default=[], metavar="EXP.KEY=VALUE",
        help="typed experiment parameter, e.g. figure3.policy=distributed "
        "or figure3.t_values=100,50,0 (repeatable)",
    )
    return parser


def _experiments_list() -> None:
    from repro.experiments import api

    names = api.available_experiments()
    width = max(len(n) for n in names)
    for name in names:
        spec = api.get_experiment(name)
        print(f"{name:<{width}}  {spec.description}")


def _experiments_show(name: str, preset: str) -> None:
    from repro.experiments import api

    spec = api.get_experiment(name)
    ctx = api.ExperimentContext(preset=preset, params=spec.resolve_params())
    plan = spec.plan(ctx)
    print(f"{spec.name}: {spec.description}")
    print(f"\nparameters ({len(spec.params)}):")
    if not spec.params:
        print("  (none)")
    for p in spec.params:
        print(f"  {p.name:<18} {p.kind:<7} default={p.default!r}")
        if p.help:
            print(f"  {'':<18} {p.help}")
    print(
        f"\nplan ({preset} preset): {len(plan)} sweep configs, "
        f"{len(set(plan))} distinct"
    )
    if plan:
        print(f"plan fingerprint: {api.plan_fingerprint(plan)[:16]}")


def _parse_params(
    pairs: list[str], names: list[str]
) -> dict[str, dict[str, object]]:
    from repro.experiments import api

    params: dict[str, dict[str, object]] = {}
    for pair in pairs:
        target, eq, value = pair.partition("=")
        exp, dot, key = target.partition(".")
        if not eq or not dot or not exp or not key:
            raise SystemExit(
                f"--param expects EXP.KEY=VALUE, got {pair!r}"
            )
        if exp not in names:
            raise SystemExit(
                f"--param names unknown or unrequested experiment {exp!r}"
            )
        spec = api.get_experiment(exp)
        try:
            params.setdefault(exp, {})[key] = spec.param(key).coerce(value)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    return params


def _experiments_run(args) -> None:
    from pathlib import Path

    from repro.experiments import api
    from repro.experiments.cache import ResultCache, default_cache_root

    names = list(dict.fromkeys(args.names))
    known = api.available_experiments()
    unknown = [n for n in names if n not in known]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; choose from {known}")

    cache = None
    if not args.no_cache:
        cache = ResultCache(Path(args.cache_dir or default_cache_root()))
    artifacts_dir = args.artifacts
    if artifacts_dir is None and cache is not None:
        artifacts_dir = cache.root / "artifacts" / args.exp_preset

    report = api.run_experiments(
        names,
        preset=args.exp_preset,
        jobs=args.exp_jobs,
        cache=cache,
        artifacts_dir=artifacts_dir,
        params_by_name=_parse_params(args.param, names),
        progress=print,
    )
    for name in names:
        print(f"\n{report.texts[name]}")
    if report.artifacts:
        print(f"\n[artifacts: {artifacts_dir}]")


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)

    if getattr(args, "command", None) == "experiments":
        try:
            if args.experiments_command == "list":
                _experiments_list()
            elif args.experiments_command == "show":
                _experiments_show(args.name, args.exp_preset)
            else:
                _experiments_run(args)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        return
    overrides: dict = {
        "t_percent": args.t,
        "policy": args.policy,
        "controlled_cooperation": args.controlled,
    }
    if args.degree is not None:
        overrides["offered_degree"] = args.degree
    if args.comp_delay is not None:
        overrides["comp_delay_ms"] = args.comp_delay
    if args.comm_delay is not None:
        overrides["comm_target_ms"] = args.comm_delay
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workload is not None:
        overrides["workload"] = args.workload

    config = preset_config(args.preset, **overrides)
    if args.churn is not None:
        joins, departs, updates = args.churn
        config = config.with_(
            churn=schedule_for_config(
                config, joins=joins, departs=departs, updates=updates
            )
        )

    if args.degrees is not None:
        degrees = args.degrees
        configs = [config.with_(offered_degree=d) for d in degrees]
        results = run_sweep(configs, jobs=args.jobs)
        print(f"preset={args.preset} policy={args.policy} T={args.t:.0f}% "
              f"workload={config.workload.describe()} jobs={args.jobs}")
        for degree, result in zip(degrees, results):
            print(f"degree={degree:<4d} {result.summary()}")
        return

    result = run_simulation(config)

    print(f"preset={args.preset} policy={args.policy} T={args.t:.0f}% "
          f"workload={config.workload.describe()}")
    print(f"degree of cooperation : {result.effective_degree}"
          + (" (Eq. 2 controlled)" if args.controlled else ""))
    print(f"mean comm delay       : {result.avg_comm_delay_ms:.1f} ms")
    print(f"d3g depth/diameter    : {result.tree_stats.max_depth}"
          f"/{result.tree_stats.diameter_hops}")
    print(f"loss of fidelity      : {result.loss_of_fidelity:.3f} %")
    print(f"messages              : {result.messages}")
    print(f"source checks         : {result.source_checks}")
    print(f"events processed      : {result.events_processed}")
    if args.churn is not None:
        print(f"churn events          : {result.counters.reconfigurations}")
        print(f"reconfiguration cost  : {result.reconfiguration_cost} "
              "resubscriptions")
        print(f"reconfiguration drops : {result.counters.drops}")


if __name__ == "__main__":
    main()

"""Workload sensitivity: fidelity and cost per workload, per policy.

The paper's figures all share one update process (stationary Table 1
synthetics), so they say nothing about how the dissemination policies
behave when the *workload shape* changes -- the axis related disk-based
query-system work shows dominates system behaviour.  This experiment
runs every dissemination policy under every workload generator:

- ``table1`` -- the paper's stationary baseline,
- ``flash_crowd`` -- Pareto bursts of update activity,
- ``diurnal`` -- sinusoidally modulated update rate, and
- ``replay`` -- the ``table1`` traces written to CSV and replayed
  through :mod:`repro.traces.io`, a built-in cross-check: its column
  must match ``table1`` exactly, proving the replay path is lossless.

Loss of fidelity is plotted per policy across workloads; total update
messages (the cost side) are reported in the notes.  The whole grid is
one sweep, so ``--jobs N`` parallelises it with bit-identical output.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.engine.config import SimulationConfig
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    preset_config,
    report,
    sweep,
)
from repro.sim.rng import RandomStreams
from repro.traces.io import write_trace_csv
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    ReplayWorkload,
    Table1Workload,
)

__all__ = ["run", "main", "POLICIES"]

POLICIES = ("distributed", "centralized", "flooding", "eq3_only")


def _write_replay_corpus(config: SimulationConfig, directory: Path) -> None:
    """Write the config's Table 1 traces as CSVs for the replay column.

    The traces are generated exactly as the builder would (same named
    streams), so replaying them must reproduce the ``table1`` results
    bit for bit.
    """
    streams = RandomStreams(config.seed)
    traces = Table1Workload().make_traces(
        config.n_items,
        rng_factory=lambda i: streams.spawn("traces", i),
        n_samples=config.trace_samples,
    )
    for i, trace in enumerate(traces):
        write_trace_csv(trace, directory / f"item{i:03d}.csv")


def run(
    preset: str = "small", jobs: int | None = 1, **overrides
) -> ExperimentResult:
    """Run the workload x policy grid and tabulate fidelity and cost."""
    base = preset_config(preset, **overrides)
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as tmp:
        _write_replay_corpus(base, Path(tmp))
        workloads = (
            Table1Workload(),
            FlashCrowdWorkload(),
            DiurnalWorkload(),
            ReplayWorkload(path=tmp),
        )
        configs = [
            base.with_(policy=policy, workload=workload)
            for policy in POLICIES
            for workload in workloads
        ]
        losses, runs = sweep(configs, jobs=jobs)

    n = len(workloads)
    result = ExperimentResult(
        name="Workload sensitivity: fidelity across update dynamics",
        xlabel="workload",
        ylabel="loss of fidelity (%)",
        xs=list(range(n)),
    )
    for p, policy in enumerate(POLICIES):
        result.series.append(Series(label=policy, ys=losses[p * n : (p + 1) * n]))
    result.notes["workloads"] = {w: wl.describe() for w, wl in enumerate(workloads)}
    result.notes["messages"] = {
        workload.name: {
            policy: runs[p * n + w].messages for p, policy in enumerate(POLICIES)
        }
        for w, workload in enumerate(workloads)
    }
    replay_matches = all(
        runs[p * n + 3].loss_of_fidelity == runs[p * n + 0].loss_of_fidelity
        and runs[p * n + 3].messages == runs[p * n + 0].messages
        for p in range(len(POLICIES))
    )
    result.notes["replay == table1 (lossless round-trip)"] = replay_matches
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

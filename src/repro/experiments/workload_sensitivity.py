"""Workload sensitivity: fidelity and cost per workload, per policy.

The paper's figures all share one update process (stationary Table 1
synthetics), so they say nothing about how the dissemination policies
behave when the *workload shape* changes -- the axis related disk-based
query-system work shows dominates system behaviour.  This experiment
runs every dissemination policy under every workload generator:

- ``table1`` -- the paper's stationary baseline,
- ``flash_crowd`` -- Pareto bursts of update activity,
- ``diurnal`` -- sinusoidally modulated update rate, and
- ``replay`` -- the ``table1`` traces written to CSV and replayed
  through :mod:`repro.traces.io`, a built-in cross-check: its column
  must match ``table1`` exactly, proving the replay path is lossless.

Loss of fidelity is plotted per policy across workloads; total update
messages (the cost side) are reported in the notes.  The whole grid is
one sweep, so ``--jobs N`` parallelises it with bit-identical output.

The replay corpus is written to a *content-addressed* directory (keyed
by the generation-relevant config fields), so the planned configs --
and with them the result-cache keys -- are identical across processes
and reruns; a warm rerun re-plans the same grid and touches no
simulation.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from pathlib import Path

from repro.engine.config import SimulationConfig
from repro.experiments import api
from repro.experiments.cache import CACHE_SCHEMA_VERSION, fingerprint
from repro.experiments.runner import ExperimentResult, Series, report
from repro.sim.rng import RandomStreams
from repro.traces.io import write_trace_csv
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    ReplayWorkload,
    Table1Workload,
)

__all__ = ["SPEC", "run", "main", "POLICIES"]

POLICIES = ("distributed", "centralized", "flooding", "eq3_only")


#: Process-lifetime scratch root used when caching is off; cleaned up at
#: exit, restoring the pre-registry TemporaryDirectory semantics.
_SCRATCH_ROOT: Path | None = None


def _corpus_root(ctx: api.ExperimentContext) -> Path:
    if ctx.cache is not None:
        # Under the cache's schema-versioned namespace, so bumping
        # CACHE_SCHEMA_VERSION orphans corpora and results together.
        return Path(ctx.cache.root) / f"v{CACHE_SCHEMA_VERSION}" / "replay-corpus"
    global _SCRATCH_ROOT
    if _SCRATCH_ROOT is None:
        _SCRATCH_ROOT = Path(tempfile.mkdtemp(prefix="repro-replay-"))
        atexit.register(shutil.rmtree, _SCRATCH_ROOT, ignore_errors=True)
    return _SCRATCH_ROOT


def _replay_corpus(ctx: api.ExperimentContext, config: SimulationConfig) -> Path:
    """Materialise the config's Table 1 traces as CSVs; return the dir.

    The directory is content-addressed by the fields that determine the
    trace set, so every process and every rerun resolves the same path
    (keeping the planned configs -- and the result-cache keys -- stable)
    and the corpus is written at most once.  Writers stage into a
    private temp dir and publish with an atomic rename, so concurrent
    cold starts can never expose a half-written corpus.  With caching
    off the corpus lives in a process-lifetime temp dir instead.
    """
    digest = fingerprint(
        ("replay-corpus", config.seed, config.n_items, config.trace_samples)
    )
    directory = _corpus_root(ctx) / digest[:16]
    if directory.exists():
        return directory
    directory.parent.mkdir(parents=True, exist_ok=True)
    # Stage inside the same parent so the publishing rename is atomic
    # (same filesystem) and never observable half-written.
    staging = Path(tempfile.mkdtemp(prefix=f".{digest[:16]}-", dir=directory.parent))
    try:
        streams = RandomStreams(config.seed)
        traces = Table1Workload().make_traces(
            config.n_items,
            rng_factory=lambda i: streams.spawn("traces", i),
            n_samples=config.trace_samples,
        )
        for i, trace in enumerate(traces):
            write_trace_csv(trace, staging / f"item{i:03d}.csv")
        try:
            os.rename(staging, directory)
        except OSError:
            # A concurrent writer published first; its corpus is
            # identical by construction.
            shutil.rmtree(staging, ignore_errors=True)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return directory


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config()
    corpus = _replay_corpus(ctx, base)
    workloads = (
        Table1Workload(),
        FlashCrowdWorkload(),
        DiurnalWorkload(),
        ReplayWorkload(path=str(corpus)),
    )
    return base, workloads


def _plan(ctx: api.ExperimentContext):
    base, workloads = _grid(ctx)
    return tuple(
        base.with_(policy=policy, workload=workload)
        for policy in POLICIES
        for workload in workloads
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, workloads = _grid(ctx)
    losses = [r.loss_of_fidelity for r in results]
    n = len(workloads)
    result = ExperimentResult(
        name="Workload sensitivity: fidelity across update dynamics",
        xlabel="workload",
        ylabel="loss of fidelity (%)",
        xs=list(range(n)),
    )
    for p, policy in enumerate(POLICIES):
        result.series.append(Series(label=policy, ys=losses[p * n : (p + 1) * n]))
    result.notes["workloads"] = {w: wl.describe() for w, wl in enumerate(workloads)}
    result.notes["messages"] = {
        workload.name: {
            policy: results[p * n + w].messages for p, policy in enumerate(POLICIES)
        }
        for w, workload in enumerate(workloads)
    }
    replay_matches = all(
        results[p * n + 3].loss_of_fidelity == results[p * n + 0].loss_of_fidelity
        and results[p * n + 3].messages == results[p * n + 0].messages
        for p in range(len(POLICIES))
    )
    result.notes["replay == table1 (lossless round-trip)"] = replay_matches
    return result


SPEC = api.register(api.ExperimentSpec(
    name="workload_sensitivity",
    description=(
        "Every dissemination policy under every workload generator, with "
        "a replay==table1 losslessness cross-check."
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Run the workload x policy grid and tabulate fidelity and cost."""
    return api.run_experiment(
        SPEC.name, preset=preset, jobs=jobs, cache=cache, overrides=overrides
    )


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Extension experiment: the push-pull threshold trade-off.

Sweeps the stringency boundary between the push plane and the pull
plane.  A threshold of 0+ sends everything to pull (cheap parents, poor
fidelity); a huge threshold is pure cooperative push (best fidelity,
per-dependent state everywhere).  The interesting region is the paper's
own stringent/lax boundary ($0.1): stringent subscriptions genuinely
need push, lax ones barely notice pull staleness.
"""

from __future__ import annotations

from repro.engine.builder import build_setup
from repro.engine.hybrid import run_hybrid_simulation
from repro.experiments.runner import ExperimentResult, Series, preset_config, report

__all__ = ["DEFAULT_THRESHOLDS", "run", "main"]

#: Threshold sweep across the paper's tolerance bands.
DEFAULT_THRESHOLDS: tuple[float, ...] = (0.005, 0.05, 0.1, 0.5, 1.0)


def run(
    preset: str = "small",
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    t_percent: float = 50.0,
    **overrides,
) -> ExperimentResult:
    """Sweep the push/pull threshold over one shared workload."""
    config = preset_config(
        preset,
        t_percent=t_percent,
        policy="distributed",
        controlled_cooperation=True,
        **overrides,
    )
    setup = build_setup(config)
    losses: list[float] = []
    messages: list[float] = []
    push_shares: list[float] = []
    for threshold in thresholds:
        result = run_hybrid_simulation(config, threshold_c=threshold, base=setup)
        losses.append(result.loss_of_fidelity)
        messages.append(float(result.messages))
        total = result.push_pairs + result.pull_pairs
        push_shares.append(100.0 * result.push_pairs / total if total else 0.0)
    out = ExperimentResult(
        name="Extension: push-pull hybrid threshold trade-off",
        xlabel="push threshold c ($)",
        ylabel="loss of fidelity (%) / traffic",
        xs=list(thresholds),
    )
    out.series.append(Series(label="loss %", ys=losses))
    out.series.append(Series(label="push share %", ys=push_shares))
    out.notes["messages along the sweep"] = [int(m) for m in messages]
    return out


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

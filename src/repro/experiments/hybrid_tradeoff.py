"""Extension experiment: the push-pull threshold trade-off.

Sweeps the stringency boundary between the push plane and the pull
plane.  A threshold of 0+ sends everything to pull (cheap parents, poor
fidelity); a huge threshold is pure cooperative push (best fidelity,
per-dependent state everywhere).  The interesting region is the paper's
own stringent/lax boundary ($0.1): stringent subscriptions genuinely
need push, lax ones barely notice pull staleness.

Each threshold point is fully determined by ``(config, threshold)``, so
the sweep fans out over ``jobs`` workers and is cached content-addressed
exactly like plain sweep points.
"""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.engine.hybrid import run_hybrid_simulation
from repro.experiments import api
from repro.experiments.defaults import DEFAULT_THRESHOLDS
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["DEFAULT_THRESHOLDS", "SPEC", "run", "main"]


def _run_hybrid_point(point: tuple[SimulationConfig, float]):
    """Worker entry: one hybrid simulation, deterministic in its inputs."""
    config, threshold = point
    return run_hybrid_simulation(
        config, threshold_c=threshold, base=api.shared_setup(config)
    )


def _config(ctx: api.ExperimentContext) -> SimulationConfig:
    return ctx.base_config().with_(
        t_percent=ctx.params["t_percent"],
        policy="distributed",
        controlled_cooperation=True,
    )


def _plan(ctx: api.ExperimentContext):
    # The hybrid planes have their own driver; nothing rides the plain
    # config-sweep fan-out.
    return ()


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    config = _config(ctx)
    thresholds = ctx.params["thresholds"]

    hybrids = api.cached_parallel_map(
        ctx,
        keys=[("hybrid", config, threshold) for threshold in thresholds],
        points=[(config, threshold) for threshold in thresholds],
        worker=_run_hybrid_point,
    )
    losses: list[float] = []
    messages: list[float] = []
    push_shares: list[float] = []
    for result in hybrids:
        losses.append(result.loss_of_fidelity)
        messages.append(float(result.messages))
        total = result.push_pairs + result.pull_pairs
        push_shares.append(100.0 * result.push_pairs / total if total else 0.0)

    out = ExperimentResult(
        name="Extension: push-pull hybrid threshold trade-off",
        xlabel="push threshold c ($)",
        ylabel="loss of fidelity (%) / traffic",
        xs=list(thresholds),
    )
    out.series.append(Series(label="loss %", ys=losses))
    out.series.append(Series(label="push share %", ys=push_shares))
    out.notes["messages along the sweep"] = [int(m) for m in messages]
    return out


SPEC = api.register(api.ExperimentSpec(
    name="hybrid_tradeoff",
    description=(
        "The push/pull stringency threshold trades fidelity against "
        "per-dependent push state; the paper's $0.1 boundary is the knee."
    ),
    params=(
        api.ParamSpec("thresholds", "floats", DEFAULT_THRESHOLDS,
                      "push thresholds c ($) to sweep"),
        api.ParamSpec("t_percent", "float", 50.0,
                      "coherency-stringency mix (T%)"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    t_percent: float = 50.0,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep the push/pull threshold over one shared workload."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(thresholds=thresholds, t_percent=t_percent),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

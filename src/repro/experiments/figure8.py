"""Figure 8: the importance of filtering during update propagation.

Two systems over the degree-of-cooperation sweep:

- ``All updates``: every distinct source value is pushed to every
  interested repository (the flooding policy -- the paper emulates it
  with a maximally stringent tolerance);
- ``Filtered``: coherency-aware dissemination with a lax mix (T=0), so
  only updates of interest flow.

The paper's finding: flooding loses fidelity across the whole sweep --
the extra messages inflate both network and queueing overheads -- while
the filtered system stays flat near zero.
"""

from __future__ import annotations

from repro.experiments.figure3 import default_degrees
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["run", "main"]


def run(
    preset: str = "small",
    degrees: list[int] | None = None,
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep degree for the flooding and filtered systems."""
    base = preset_config(preset, **overrides)
    if degrees is None:
        degrees = default_degrees(base.n_repositories)
    result = ExperimentResult(
        name="Figure 8: importance of filtering during update propagation",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    configs = [
        base.with_(t_percent=0.0, offered_degree=d, policy=policy,
                   controlled_cooperation=False)
        for policy in ("flooding", "distributed")
        for d in degrees
    ]
    losses, runs = sweep(configs, jobs=jobs)
    flood_losses, filtered_losses = losses[:len(degrees)], losses[len(degrees):]
    flood_runs, filtered_runs = runs[:len(degrees)], runs[len(degrees):]
    result.series.append(Series(label="All updates", ys=flood_losses))
    result.series.append(Series(label="Filtered", ys=filtered_losses))

    result.notes["messages (all updates, max degree)"] = flood_runs[-1].messages
    result.notes["messages (filtered, max degree)"] = filtered_runs[-1].messages
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

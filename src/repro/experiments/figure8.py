"""Figure 8: the importance of filtering during update propagation.

Two systems over the degree-of-cooperation sweep:

- ``All updates``: every distinct source value is pushed to every
  interested repository (the flooding policy -- the paper emulates it
  with a maximally stringent tolerance);
- ``Filtered``: coherency-aware dissemination with a lax mix (T=0), so
  only updates of interest flow.

The paper's finding: flooding loses fidelity across the whole sweep --
the extra messages inflate both network and queueing overheads -- while
the filtered system stays flat near zero.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import default_degrees
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["SPEC", "run", "main"]

_POLICIES = ("flooding", "distributed")


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config()
    degrees = ctx.params["degrees"]
    if degrees is None:
        degrees = tuple(default_degrees(base.n_repositories))
    return base, degrees


def _plan(ctx: api.ExperimentContext):
    base, degrees = _grid(ctx)
    return tuple(
        base.with_(t_percent=0.0, offered_degree=d, policy=policy,
                   controlled_cooperation=False)
        for policy in _POLICIES
        for d in degrees
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, degrees = _grid(ctx)
    result = ExperimentResult(
        name="Figure 8: importance of filtering during update propagation",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    losses = [r.loss_of_fidelity for r in results]
    flood_losses, filtered_losses = losses[:len(degrees)], losses[len(degrees):]
    flood_runs, filtered_runs = results[:len(degrees)], results[len(degrees):]
    result.series.append(Series(label="All updates", ys=flood_losses))
    result.series.append(Series(label="Filtered", ys=filtered_losses))

    result.notes["messages (all updates, max degree)"] = flood_runs[-1].messages
    result.notes["messages (filtered, max degree)"] = filtered_runs[-1].messages
    return result


SPEC = api.register(api.ExperimentSpec(
    name="figure8",
    description=(
        "Coherency-aware filtering scales across the cooperation sweep; "
        "flooding every update does not."
    ),
    params=(
        api.ParamSpec("degrees", "ints", None,
                      "degree sweep (default: derived from the preset)"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    degrees: list[int] | None = None,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep degree for the flooding and filtered systems."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(degrees=degrees),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 11: centralised vs. distributed dissemination overheads.

Same workload, same d3g, both exact policies:

- (a) *server checks*: the centralised source examines every unique
  coherency tolerance per update (the paper measures ~50% more checks
  than the distributed approach's per-dependent checks);
- (b) *messages*: both approaches send (essentially) the same number of
  update messages -- and both guarantee 100% fidelity absent delays --
  so the distributed approach is preferable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import api

__all__ = ["Figure11Result", "SPEC", "run", "main"]


@dataclass
class Figure11Result:
    """The two bar pairs of Figure 11."""

    centralized_source_checks: int
    distributed_source_checks: int
    centralized_messages: int
    distributed_messages: int
    centralized_loss: float
    distributed_loss: float

    @property
    def check_ratio(self) -> float:
        """Centralised / distributed source checks (paper: ~1.5)."""
        if self.distributed_source_checks == 0:
            return float("inf")
        return self.centralized_source_checks / self.distributed_source_checks

    @property
    def message_ratio(self) -> float:
        """Centralised / distributed messages (paper: ~1.0)."""
        if self.distributed_messages == 0:
            return float("inf")
        return self.centralized_messages / self.distributed_messages


def _base(ctx: api.ExperimentContext):
    base = ctx.base_config().with_(t_percent=ctx.params["t_percent"])
    if ctx.params["offered_degree"] is not None:
        base = base.with_(offered_degree=ctx.params["offered_degree"])
    return base.with_(controlled_cooperation=ctx.params["controlled_cooperation"])


def _plan(ctx: api.ExperimentContext):
    base = _base(ctx)
    return (base.with_(policy="centralized"), base.with_(policy="distributed"))


def _collect(ctx: api.ExperimentContext, results) -> Figure11Result:
    central, dist = results
    return Figure11Result(
        centralized_source_checks=central.counters.source_checks,
        distributed_source_checks=dist.counters.source_checks,
        centralized_messages=central.messages,
        distributed_messages=dist.messages,
        centralized_loss=central.loss_of_fidelity,
        distributed_loss=dist.loss_of_fidelity,
    )


def _render(r: Figure11Result) -> str:
    lines = [
        "== Figure 11: centralised vs. distributed dissemination ==",
        "(a) source checks:",
        f"    centralised  {r.centralized_source_checks}",
        f"    distributed  {r.distributed_source_checks}",
        f"    ratio        {r.check_ratio:.2f}  (paper: ~1.5)",
        "(b) messages:",
        f"    centralised  {r.centralized_messages}",
        f"    distributed  {r.distributed_messages}",
        f"    ratio        {r.message_ratio:.2f}  (paper: ~1.0)",
        "loss of fidelity:",
        f"    centralised  {r.centralized_loss:.2f}%",
        f"    distributed  {r.distributed_loss:.2f}%",
    ]
    return "\n".join(lines)


SPEC = api.register(api.ExperimentSpec(
    name="figure11",
    description=(
        "The centralised source performs ~50% more coherency checks than "
        "the distributed approach; message counts are comparable."
    ),
    params=(
        api.ParamSpec("t_percent", "float", 80.0,
                      "coherency-stringency mix (T%)"),
        api.ParamSpec("controlled_cooperation", "bool", True,
                      "clamp the degree with Eq. (2)"),
        api.ParamSpec("offered_degree", "int", None,
                      "offered degree (default: preset value)"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run(
    preset: str = "small",
    t_percent: float = 80.0,
    controlled_cooperation: bool = True,
    offered_degree: int | None = None,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> Figure11Result:
    """Run both exact policies over the identical workload and tree."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(
            t_percent=t_percent,
            controlled_cooperation=controlled_cooperation,
            offered_degree=offered_degree,
        ),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = _render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Section 6.3.5: scalability with the number of repositories.

The paper grows the system from 100 repositories (700 physical nodes) to
300 repositories (2100 nodes).  With *unlimited* cooperation the d3t's
diameter can balloon; with *controlled* cooperation the loss of fidelity
grows by less than 5%.

The plan sweeps a list of repository counts (routers scale 6x, as in the
paper) and reports the loss under controlled cooperation, plus tree
diameters.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["SPEC", "run", "main"]


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config().with_(t_percent=ctx.params["t_percent"])
    repo_counts = ctx.params["repo_counts"]
    if repo_counts is None:
        n = base.n_repositories
        repo_counts = (n, 2 * n, 3 * n)
    return base, repo_counts


def _plan(ctx: api.ExperimentContext):
    base, repo_counts = _grid(ctx)
    return tuple(
        base.with_(
            n_repositories=n,
            n_routers=6 * n,
            offered_degree=min(100, n),
            controlled_cooperation=True,
            policy=ctx.params["policy"],
            kernel=ctx.params["kernel"],
        )
        for n in repo_counts
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, repo_counts = _grid(ctx)
    result = ExperimentResult(
        name="Section 6.3.5: scalability with repository count",
        xlabel="repositories",
        ylabel="loss of fidelity (%)",
        xs=[float(n) for n in repo_counts],
    )
    losses = [r.loss_of_fidelity for r in results]
    result.series.append(Series(label="controlled cooperation", ys=losses))
    result.series.append(
        Series(
            label="d3t diameter (hops)",
            ys=[float(r.tree_stats.diameter_hops) for r in results],
        )
    )
    result.notes["loss increase base->max (paper: <5%)"] = round(
        losses[-1] - losses[0], 3
    )
    return result


SPEC = api.register(api.ExperimentSpec(
    name="scalability",
    description=(
        "Under controlled cooperation, loss of fidelity grows by less "
        "than 5% as the repository count triples."
    ),
    params=(
        api.ParamSpec("repo_counts", "ints", None,
                      "repository counts (default: 1x, 2x, 3x the preset)"),
        api.ParamSpec("t_percent", "float", 80.0,
                      "coherency-stringency mix (T%)"),
        api.ParamSpec("policy", "str", "distributed",
                      "dissemination policy"),
        api.ParamSpec("kernel", "str", "auto",
                      "engine kernel (auto/scalar/vectorized; results "
                      "are bit-identical, only wall-clock differs)"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    repo_counts: tuple[int, ...] | None = None,
    t_percent: float = 80.0,
    policy: str = "distributed",
    kernel: str = "auto",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep the repository count under controlled cooperation."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(
            repo_counts=repo_counts, t_percent=t_percent, policy=policy,
            kernel=kernel,
        ),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

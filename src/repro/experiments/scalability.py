"""Section 6.3.5: scalability with the number of repositories.

The paper grows the system from 100 repositories (700 physical nodes) to
300 repositories (2100 nodes).  With *unlimited* cooperation the d3t's
diameter can balloon; with *controlled* cooperation the loss of fidelity
grows by less than 5%.

``run`` sweeps a list of repository counts (routers scale 6x, as in the
paper) and reports the loss under controlled cooperation, plus tree
diameters for both regimes.
"""

from __future__ import annotations

from repro.engine.simulation import run_simulation
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["run", "main"]


def run(
    preset: str = "small",
    repo_counts: tuple[int, ...] | None = None,
    t_percent: float = 80.0,
    policy: str = "distributed",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep the repository count under controlled cooperation."""
    base = preset_config(preset, t_percent=t_percent, **overrides)
    if repo_counts is None:
        n = base.n_repositories
        repo_counts = (n, 2 * n, 3 * n)
    result = ExperimentResult(
        name="Section 6.3.5: scalability with repository count",
        xlabel="repositories",
        ylabel="loss of fidelity (%)",
        xs=[float(n) for n in repo_counts],
    )
    configs = [
        base.with_(
            n_repositories=n,
            n_routers=6 * n,
            offered_degree=min(100, n),
            controlled_cooperation=True,
            policy=policy,
        )
        for n in repo_counts
    ]
    losses, runs = sweep(configs, jobs=jobs)
    result.series.append(Series(label="controlled cooperation", ys=losses))
    result.series.append(
        Series(label="d3t diameter (hops)", ys=[float(r.tree_stats.diameter_hops) for r in runs])
    )
    result.notes["loss increase base->max (paper: <5%)"] = round(
        losses[-1] - losses[0], 3
    )
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Declarative experiment API: specs, a registry and a unified runner.

Every table/figure of the paper -- and every system extension grown
since -- is registered here as an :class:`ExperimentSpec`: discoverable
data rather than an ad-hoc module entry point.  A spec declares

- ``name`` / ``description`` -- what the experiment reproduces,
- ``params`` -- a typed parameter schema (:class:`ParamSpec`), resolved
  and validated before any work happens,
- ``plan(ctx)`` -- the frozen :class:`~repro.engine.config.SimulationConfig`
  grid the experiment needs, and
- ``collect(ctx, results)`` -- the reduction of raw
  :class:`~repro.engine.results.SimulationResult`\\ s into the
  experiment's payload (an
  :class:`~repro.experiments.runner.ExperimentResult` for most figures),
  bit-identical to what the pre-registry modules produced.

The unified runner (:func:`run_experiments`) executes the **union** of
all requested experiments' plans through one deduplicated
:func:`~repro.engine.sweep.run_sweep` fan-out, backed by a
content-addressed :class:`~repro.experiments.cache.ResultCache`: a
config shared by several figures is simulated once, and a warm rerun
skips simulation entirely.  Collected payloads are persisted as
schema-versioned JSON artifacts per experiment.

Discoverability is wired into the CLI::

    python -m repro experiments list
    python -m repro experiments show figure3
    python -m repro experiments run figure3 figure8 --preset tiny --jobs 4
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.engine.sweep import resolve_jobs, run_sweep
from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache, fingerprint
from repro.experiments.runner import preset_config
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ParamSpec",
    "ExperimentSpec",
    "ExperimentContext",
    "ExecutionStats",
    "RunReport",
    "register",
    "get_experiment",
    "available_experiments",
    "load_builtin_experiments",
    "run_experiment",
    "run_experiments",
    "parallel_map",
    "cached_parallel_map",
    "shared_setup",
    "to_jsonable",
    "write_artifact",
]

#: Version stamped into every persisted experiment artifact.
ARTIFACT_SCHEMA_VERSION = 1

def _parse_bool_text(text: str) -> bool:
    mapping = {"true": True, "1": True, "yes": True, "on": True,
               "false": False, "0": False, "no": False, "off": False}
    lowered = text.strip().lower()
    if lowered not in mapping:
        raise ValueError(f"not a boolean: {text!r}")
    return mapping[lowered]


def _normalize_bool(value: Any) -> bool:
    # bool(value) would turn the strings "false"/"0" into True; route
    # strings through the same parser the CLI uses instead.
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return _parse_bool_text(value)
    raise ValueError(f"not a boolean: {value!r}")


#: Coercion functions for the parameter-schema kinds: CLI text -> value.
_KIND_COERCERS: dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "str": str,
    "bool": _parse_bool_text,
    "floats": lambda text: tuple(float(v) for v in text.split(",") if v.strip()),
    "ints": lambda text: tuple(int(v) for v in text.split(",") if v.strip()),
}

#: Normalisers applied to values supplied programmatically.
_KIND_NORMALIZERS: dict[str, Callable[[Any], Any]] = {
    "int": int,
    "float": float,
    "str": str,
    "bool": _normalize_bool,
    "floats": lambda v: tuple(float(x) for x in v),
    "ints": lambda v: tuple(int(x) for x in v),
}


@dataclass(frozen=True)
class ParamSpec:
    """One declared experiment parameter.

    Attributes:
        name: Parameter name (a keyword of the experiment's ``run()``).
        kind: Declared type: ``int``, ``float``, ``str``, ``bool``,
            ``floats`` (comma-separated tuple) or ``ints``.
        default: Value used when the caller supplies nothing. ``None``
            conventionally means "derive from the preset at plan time".
        help: One-line description shown by ``experiments show``.
    """

    name: str
    kind: str
    default: Any = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KIND_COERCERS:
            raise ConfigurationError(
                f"unknown param kind {self.kind!r}; "
                f"choose from {sorted(_KIND_COERCERS)}"
            )

    def coerce(self, text: str) -> Any:
        """Parse a CLI string into this parameter's declared type."""
        try:
            return _KIND_COERCERS[self.kind](text)
        except (ValueError, KeyError):
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.kind}, got {text!r}"
            ) from None

    def normalize(self, value: Any) -> Any:
        """Normalise a programmatic value (lists become tuples, etc.)."""
        if value is None:
            return None
        try:
            return _KIND_NORMALIZERS[self.kind](value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.kind}, "
                f"got {value!r}"
            ) from None


@dataclass
class ExperimentContext:
    """Everything a spec's ``plan``/``collect`` may draw on.

    Attributes:
        preset: Scale-preset name (``tiny`` / ``small`` / ``paper``).
        params: Resolved, validated parameter values (schema defaults
            filled in).
        jobs: Worker processes for any fan-out the experiment performs.
        cache: Content-addressed result cache, or ``None`` (disabled).
        overrides: Raw :class:`SimulationConfig` field overrides applied
            on top of the preset (the historical ``**overrides``).
        stats: When set, auxiliary-plane work (``cached`` /
            :func:`cached_parallel_map`) is tallied here, cache or no
            cache, so run summaries report what was actually computed.
    """

    preset: str = "small"
    params: Mapping[str, Any] = field(default_factory=dict)
    jobs: int | None = 1
    cache: ResultCache | None = None
    overrides: Mapping[str, Any] = field(default_factory=dict)
    stats: "ExecutionStats | None" = None

    def base_config(self) -> SimulationConfig:
        """The preset config with the context's overrides applied."""
        return preset_config(self.preset, **dict(self.overrides))

    def count_aux(self, hits: int = 0, computed: int = 0) -> None:
        """Tally auxiliary-plane points into the run's stats, if any."""
        if self.stats is not None:
            self.stats.aux_hits += hits
            self.stats.aux_computed += computed

    def cached(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Content-addressed memo for collect-phase auxiliary work.

        Used by experiments whose drivers sit outside the plain
        config-sweep plane (pull, hybrid, trace statistics) so their
        points are cached -- and skipped on warm reruns -- exactly like
        sweep points.
        """
        if self.cache is None:
            value = compute()
            self.count_aux(computed=1)
            return value
        value = self.cache.get(key, _EXECUTE_MISS)
        if value is _EXECUTE_MISS:
            value = compute()
            self.cache.put(key, value)
            self.count_aux(computed=1)
        else:
            self.count_aux(hits=1)
        return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: declarative data plus two functions.

    Attributes:
        name: Registry name (``figure3``, ``table1``, ...).
        description: One-line summary of the claim it reproduces.
        params: The typed parameter schema.
        plan: ``ctx -> tuple[SimulationConfig, ...]`` -- the frozen grid
            of sweep points this experiment needs.  May be empty for
            experiments driven entirely by auxiliary planes (Table 1's
            trace statistics).
        collect: ``(ctx, results) -> payload`` -- reduces the raw
            results (aligned 1:1 with the planned grid) into the
            experiment's output shape.
        render: ``payload -> str`` -- the human-readable report
            (identical to the historical ``main()`` output).
    """

    name: str
    description: str
    plan: Callable[[ExperimentContext], tuple[SimulationConfig, ...]]
    collect: Callable[[ExperimentContext, tuple[SimulationResult, ...]], Any]
    render: Callable[[Any], str]
    params: tuple[ParamSpec, ...] = ()

    def param(self, name: str) -> ParamSpec:
        """Look up one parameter's spec by name.

        Raises:
            ConfigurationError: if the schema has no such parameter.
        """
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ConfigurationError(
            f"experiment {self.name!r} has no parameter {name!r}; "
            f"it declares {[p.name for p in self.params] or 'none'}"
        )

    def resolve_params(self, params: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Validate supplied parameters and fill schema defaults.

        Raises:
            ConfigurationError: on unknown names or uncoercible values.
        """
        supplied = dict(params or {})
        known = {p.name for p in self.params}
        unknown = sorted(set(supplied) - known)
        if unknown:
            raise ConfigurationError(
                f"experiment {self.name!r} has no parameter(s) {unknown}; "
                f"it declares {sorted(known) or 'none'}"
            )
        resolved: dict[str, Any] = {}
        for spec in self.params:
            if spec.name in supplied:
                resolved[spec.name] = spec.normalize(supplied[spec.name])
            else:
                resolved[spec.name] = spec.default
        return resolved


_REGISTRY: dict[str, ExperimentSpec] = {}

#: Modules whose import registers the built-in experiments, in the
#: paper's presentation order (also the default ``run_all`` order).
_BUILTIN_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.figure3",
    "repro.experiments.figure5",
    "repro.experiments.figure6",
    "repro.experiments.figure7",
    "repro.experiments.figure8",
    "repro.experiments.figure9",
    "repro.experiments.figure10",
    "repro.experiments.figure11",
    "repro.experiments.scalability",
    "repro.experiments.sensitivity",
    "repro.experiments.pull_baseline",
    "repro.experiments.hybrid_tradeoff",
    "repro.experiments.churn_resilience",
    "repro.experiments.failure_resilience",
    "repro.experiments.workload_sensitivity",
    "repro.experiments.adaptive_tradeoff",
    "repro.experiments.live_crosscheck",
)


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (idempotent per name+identity).

    Raises:
        ConfigurationError: when a *different* spec already holds the name.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ConfigurationError(
            f"experiment name {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def load_builtin_experiments() -> None:
    """Import every built-in experiment module (registration side effect)."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def available_experiments() -> list[str]:
    """Registered experiment names: built-ins in the paper's presentation
    order, then third-party registrations in registration order."""
    load_builtin_experiments()
    builtin = [module.rsplit(".", 1)[1] for module in _BUILTIN_MODULES]
    ordered = [name for name in builtin if name in _REGISTRY]
    ordered += [name for name in _REGISTRY if name not in builtin]
    return ordered


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered spec by name.

    Raises:
        ConfigurationError: on an unknown name.
    """
    load_builtin_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {available_experiments()}"
        ) from None


@dataclass
class ExecutionStats:
    """What one execution of a plan union actually did.

    Attributes:
        planned: Sweep points requested across all plans (with
            duplicates).
        distinct: Unique configs after cross-experiment deduplication.
        cache_hits: Distinct configs answered from the result cache.
        simulated: Distinct configs actually simulated this run.
        aux_hits / aux_computed: Collect-phase auxiliary points (pull,
            hybrid, trace statistics) answered from cache / computed.
    """

    planned: int = 0
    distinct: int = 0
    cache_hits: int = 0
    simulated: int = 0
    aux_hits: int = 0
    aux_computed: int = 0

    @property
    def deduplicated(self) -> int:
        """Planned points that were satisfied by another plan's config."""
        return self.planned - self.distinct

    @property
    def total_simulated(self) -> int:
        """Simulations of any kind performed this run (0 on a warm rerun)."""
        return self.simulated + self.aux_computed

    @property
    def total_cached(self) -> int:
        """Points of any kind answered from the cache this run."""
        return self.cache_hits + self.aux_hits


def _sim_key(config: SimulationConfig) -> tuple:
    return ("sim", config)


def execute_plan(
    configs: Sequence[SimulationConfig],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    stats: ExecutionStats | None = None,
) -> list[SimulationResult]:
    """Run a config sequence through the deduplicated, cached fan-out.

    Results are aligned to the input order; duplicated configs share one
    result object.  With a cache, previously simulated configs are
    answered from disk; everything else goes through one
    :func:`~repro.engine.sweep.run_sweep` call (bit-identical for every
    ``jobs`` value).
    """
    ordered = list(configs)
    stats = stats if stats is not None else ExecutionStats()
    stats.planned += len(ordered)

    distinct: list[SimulationConfig] = []
    seen: set[SimulationConfig] = set()
    for config in ordered:
        if config not in seen:
            seen.add(config)
            distinct.append(config)
    stats.distinct += len(distinct)

    results: dict[SimulationConfig, SimulationResult] = {}
    misses: list[SimulationConfig] = []
    if cache is None:
        misses = distinct
    else:
        for config in distinct:
            hit = cache.get(_sim_key(config), _EXECUTE_MISS)
            if hit is _EXECUTE_MISS:
                misses.append(config)
            else:
                results[config] = hit
        stats.cache_hits += len(distinct) - len(misses)

    if misses:
        for config, result in zip(misses, run_sweep(misses, jobs=jobs)):
            results[config] = result
            if cache is not None:
                cache.put(_sim_key(config), result)
        stats.simulated += len(misses)

    return [results[config] for config in ordered]


_EXECUTE_MISS = object()


def run_experiment(
    name: str,
    preset: str = "small",
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    params: Mapping[str, Any] | None = None,
    overrides: Mapping[str, Any] | None = None,
) -> Any:
    """Plan, execute and collect one experiment; return its payload."""
    spec = get_experiment(name)
    ctx = ExperimentContext(
        preset=preset,
        params=spec.resolve_params(params),
        jobs=jobs,
        cache=cache,
        overrides=dict(overrides or {}),
    )
    results = execute_plan(spec.plan(ctx), jobs=jobs, cache=cache)
    return spec.collect(ctx, tuple(results))


@dataclass
class RunReport:
    """Outcome of one :func:`run_experiments` invocation.

    Attributes:
        payloads: ``name -> collected payload`` in execution order.
        texts: ``name -> rendered report`` (the historical ``main()``
            output).
        seconds: ``name -> collect-phase wall time``.
        stats: What the shared execution plane did.
        sweep_seconds: Wall time of the shared simulate/lookup phase.
        artifacts: ``name -> path`` of persisted JSON artifacts (empty
            when no artifact directory was given).
    """

    payloads: dict[str, Any] = field(default_factory=dict)
    texts: dict[str, str] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    sweep_seconds: float = 0.0
    artifacts: dict[str, Path] = field(default_factory=dict)


def run_experiments(
    names: Iterable[str],
    preset: str = "small",
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    artifacts_dir: str | Path | None = None,
    params_by_name: Mapping[str, Mapping[str, Any]] | None = None,
    overrides: Mapping[str, Any] | None = None,
    progress: Callable[[str], None] | None = None,
) -> RunReport:
    """Run several experiments through one shared execution plane.

    The union of every requested experiment's plan is deduplicated and
    executed in a single cached sweep fan-out, then each experiment's
    ``collect`` reduces its own slice.  Payloads are persisted as
    schema-versioned JSON artifacts when ``artifacts_dir`` is given.
    """
    params_by_name = params_by_name or {}
    report = RunReport()
    say = progress or (lambda _line: None)

    specs: list[ExperimentSpec] = [get_experiment(name) for name in names]
    ctxs: dict[str, ExperimentContext] = {}
    plans: dict[str, tuple[SimulationConfig, ...]] = {}
    for spec in specs:
        ctx = ExperimentContext(
            preset=preset,
            params=spec.resolve_params(params_by_name.get(spec.name)),
            jobs=jobs,
            cache=cache,
            overrides=dict(overrides or {}),
            stats=report.stats,
        )
        ctxs[spec.name] = ctx
        plans[spec.name] = tuple(spec.plan(ctx))

    union: list[SimulationConfig] = [
        config for spec in specs for config in plans[spec.name]
    ]
    start = time.perf_counter()
    results = execute_plan(union, jobs=jobs, cache=cache, stats=report.stats)
    report.sweep_seconds = time.perf_counter() - start
    cache_clause = ""
    if cache is not None:
        cache_clause = (
            f" [cache: {cache.stats.hits} hits, {cache.stats.misses} misses, "
            f"{cache.stats.writes} writes]"
        )
    say(
        f"execution plane: {report.stats.planned} planned points, "
        f"{report.stats.distinct} distinct "
        f"({report.stats.deduplicated} deduplicated), "
        f"{report.stats.cache_hits} cached, "
        f"{report.stats.simulated} simulated "
        f"in {report.sweep_seconds:.1f}s{cache_clause}"
    )

    by_config: dict[SimulationConfig, SimulationResult] = dict(
        zip(union, results)
    )
    for spec in specs:
        ctx = ctxs[spec.name]
        t0 = time.perf_counter()
        payload = spec.collect(
            ctx, tuple(by_config[config] for config in plans[spec.name])
        )
        report.seconds[spec.name] = time.perf_counter() - t0
        report.payloads[spec.name] = payload
        report.texts[spec.name] = spec.render(payload)
        if artifacts_dir is not None:
            report.artifacts[spec.name] = write_artifact(
                artifacts_dir, spec.name, preset, ctx.params, payload
            )

    if artifacts_dir is not None:
        registry = MetricsRegistry()
        registry.counter("plan.planned").inc(report.stats.planned)
        registry.counter("plan.distinct").inc(report.stats.distinct)
        registry.counter("plan.deduplicated").inc(report.stats.deduplicated)
        registry.counter("plan.cache_hits").inc(report.stats.cache_hits)
        registry.counter("plan.simulated").inc(report.stats.simulated)
        registry.gauge("plan.sweep_seconds").set(report.sweep_seconds)
        if cache is not None:
            registry.counter("cache.hits").inc(cache.stats.hits)
            registry.counter("cache.misses").inc(cache.stats.misses)
            registry.counter("cache.writes").inc(cache.stats.writes)
        registry.write_json(Path(artifacts_dir) / "metrics.json")

    return report


def parallel_map(worker: Callable[[Any], Any], points: Sequence[Any],
                 jobs: int | None = 1) -> list[Any]:
    """Order-preserving map, fanned out over processes when ``jobs > 1``.

    ``worker`` must be a module-level (picklable) function whose output
    depends only on its input, so the merge -- keyed by input position --
    is deterministic for every worker count.
    """
    points = list(points)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(points) <= 1:
        return [worker(point) for point in points]
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(points))) as pool:
        return list(pool.map(worker, points))


def cached_parallel_map(
    ctx: ExperimentContext,
    keys: Sequence[Any],
    points: Sequence[Any],
    worker: Callable[[Any], Any],
) -> list[Any]:
    """Cached, order-preserving fan-out for auxiliary experiment planes.

    The pull/hybrid drivers sit outside the plain config sweep but obey
    the same contract -- each point's result is fully determined by its
    inputs -- so they share its machinery: ``keys[i]`` is the content
    key for ``points[i]``; cache hits are answered from disk, misses run
    through :func:`parallel_map` over ``ctx.jobs`` and are stored.
    """
    if len(keys) != len(points):
        raise ConfigurationError(
            f"cached_parallel_map needs one key per point, "
            f"got {len(keys)} keys for {len(points)} points"
        )
    results: dict[int, Any] = {}
    miss_positions: list[int] = []
    for i, key in enumerate(keys):
        if ctx.cache is not None:
            hit = ctx.cache.get(key, _EXECUTE_MISS)
            if hit is not _EXECUTE_MISS:
                results[i] = hit
                continue
        miss_positions.append(i)
    ctx.count_aux(hits=len(points) - len(miss_positions),
                  computed=len(miss_positions))
    computed = parallel_map(
        worker, [points[i] for i in miss_positions], jobs=ctx.jobs
    )
    for i, value in zip(miss_positions, computed):
        results[i] = value
        if ctx.cache is not None:
            ctx.cache.put(keys[i], value)
    return [results[i] for i in range(len(points))]


#: Per-process setup memo for auxiliary-plane workers: the variants of
#: one experiment share a config, so each process builds its
#: :class:`~repro.engine.builder.SimulationSetup` once.  Never leaves
#: the process, so it cannot affect merged output.
_SHARED_SETUP: tuple[SimulationConfig, Any] | None = None


def shared_setup(config: SimulationConfig):
    """Build (or recall) this process's setup for ``config``."""
    from repro.engine.builder import build_setup

    global _SHARED_SETUP
    if _SHARED_SETUP is None or _SHARED_SETUP[0] != config:
        _SHARED_SETUP = (config, build_setup(config))
    return _SHARED_SETUP[1]


def to_jsonable(obj: Any) -> Any:
    """Convert a payload tree to JSON-encodable values.

    Dataclasses become objects tagged with their class name; tuples
    become lists; dict keys are stringified; numpy scalars/arrays become
    plain numbers/lists.
    """
    import numpy as np

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, Path):
        return str(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded = {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        encoded["__dataclass__"] = type(obj).__qualname__
        return encoded
    return repr(obj)


def write_artifact(
    directory: str | Path,
    name: str,
    preset: str,
    params: Mapping[str, Any],
    payload: Any,
) -> Path:
    """Persist one experiment's payload as a schema-versioned JSON file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    document = {
        "schema": "repro.experiment-artifact",
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "experiment": name,
        "preset": preset,
        "params": to_jsonable(dict(params)),
        "payload": to_jsonable(payload),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def plan_fingerprint(configs: Sequence[SimulationConfig]) -> str:
    """Digest of a whole plan (used by ``experiments show`` and tests)."""
    return fingerprint(tuple(configs))

"""Figure 6: no cooperation, varying computational delays.

The source serves every repository directly while the per-dependent
computational delay sweeps 0..25 ms.  The paper's finding: loss of
fidelity worsens steeply with computational delay -- the source
saturates -- especially under stringent coherency mixes.  Together with
Figure 5 this shows the source bottleneck is computational, motivating
cooperation.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import DEFAULT_COMP_DELAYS, DEFAULT_T_VALUES
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["DEFAULT_COMP_DELAYS", "SPEC", "run", "main"]


def _plan(ctx: api.ExperimentContext):
    base = ctx.base_config()
    return tuple(
        base.with_(
            t_percent=t,
            offered_degree=base.n_repositories,
            comp_delay_ms=delay,
            policy=ctx.params["policy"],
            controlled_cooperation=False,
        )
        for t in ctx.params["t_values"]
        for delay in ctx.params["comp_delays_ms"]
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    t_values = ctx.params["t_values"]
    comp_delays_ms = ctx.params["comp_delays_ms"]
    result = ExperimentResult(
        name="Figure 6: no cooperation, varying computational delays",
        xlabel="comp delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comp_delays_ms),
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, t in enumerate(t_values):
        ys = losses[row * len(comp_delays_ms):(row + 1) * len(comp_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    return result


SPEC = api.register(api.ExperimentSpec(
    name="figure6",
    description=(
        "Without cooperation, loss of fidelity grows steeply with "
        "computational delay: the source saturates."
    ),
    params=(
        api.ParamSpec("t_values", "floats", DEFAULT_T_VALUES,
                      "coherency-stringency mixes (T%)"),
        api.ParamSpec("comp_delays_ms", "floats", DEFAULT_COMP_DELAYS,
                      "per-dependent computational delays (ms)"),
        api.ParamSpec("policy", "str", "centralized",
                      "dissemination policy for the baseline"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comp_delays_ms: tuple[float, ...] = DEFAULT_COMP_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep (T, comp delay) with the source serving everyone."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(
            t_values=t_values, comp_delays_ms=comp_delays_ms, policy=policy
        ),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

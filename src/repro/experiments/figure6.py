"""Figure 6: no cooperation, varying computational delays.

The source serves every repository directly while the per-dependent
computational delay sweeps 0..25 ms.  The paper's finding: loss of
fidelity worsens steeply with computational delay -- the source
saturates -- especially under stringent coherency mixes.  Together with
Figure 5 this shows the source bottleneck is computational, motivating
cooperation.
"""

from __future__ import annotations

from repro.experiments.figure3 import DEFAULT_T_VALUES
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["DEFAULT_COMP_DELAYS", "run", "main"]

#: The paper's x-axis: per-dependent computational delay in milliseconds.
DEFAULT_COMP_DELAYS: tuple[float, ...] = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0)


def run(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comp_delays_ms: tuple[float, ...] = DEFAULT_COMP_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep (T, comp delay) with the source serving everyone."""
    base = preset_config(preset, **overrides)
    no_coop_degree = base.n_repositories
    result = ExperimentResult(
        name="Figure 6: no cooperation, varying computational delays",
        xlabel="comp delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comp_delays_ms),
    )
    configs = [
        base.with_(
            t_percent=t,
            offered_degree=no_coop_degree,
            comp_delay_ms=delay,
            policy=policy,
            controlled_cooperation=False,
        )
        for t in t_values
        for delay in comp_delays_ms
    ]
    losses, _ = sweep(configs, jobs=jobs)
    for row, t in enumerate(t_values):
        ys = losses[row * len(comp_delays_ms):(row + 1) * len(comp_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

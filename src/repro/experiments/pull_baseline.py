"""Extension experiment: push vs. pull (fixed and adaptive TTR).

The paper's Section 8 names pull-based and adaptive mechanisms as the
natural comparison points for its push architecture.  This experiment
runs them on the identical workload:

- cooperative push (distributed policy, controlled cooperation),
- direct pull with fixed TTRs,
- direct pull with adaptive TTR.

Expected outcome: short fixed TTRs approach push fidelity but flood the
source with poll traffic; long TTRs are cheap but stale; adaptive TTR
sits between; cooperative push dominates the fidelity-per-message
trade-off because repositories share the dissemination work.

The push run rides the shared config-sweep plane; the pull variants are
their own deterministic points -- ``(config, TTR policy)`` fully
determines each -- so they fan out over ``jobs`` workers and are cached
content-addressed exactly like sweep points.
"""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.engine.pull import TtrConfig, run_pull_simulation
from repro.experiments import api
from repro.experiments.defaults import DEFAULT_TTRS
from repro.experiments.runner import ExperimentResult, Series

__all__ = ["DEFAULT_TTRS", "SPEC", "run", "main"]


def _run_pull_point(point: tuple[SimulationConfig, TtrConfig]):
    """Worker entry: one pull simulation, deterministic in its inputs."""
    config, ttr = point
    return run_pull_simulation(api.shared_setup(config), ttr)


def _variants(ctx: api.ExperimentContext) -> list[tuple[str, TtrConfig]]:
    variants = [
        (f"pull ttr={ttr:g}s", TtrConfig(mode="fixed", ttr_s=ttr))
        for ttr in ctx.params["ttrs_s"]
    ]
    variants.append(
        ("pull adaptive",
         TtrConfig(mode="adaptive", ttr_s=10.0, ttr_min_s=1.0, ttr_max_s=60.0))
    )
    return variants


def _config(ctx: api.ExperimentContext) -> SimulationConfig:
    return ctx.base_config().with_(
        t_percent=ctx.params["t_percent"],
        policy="distributed",
        controlled_cooperation=True,
    )


def _plan(ctx: api.ExperimentContext):
    return (_config(ctx),)


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    config = _config(ctx)
    push = results[0]

    labels: list[str] = ["push (coop)"]
    losses: list[float] = [push.loss_of_fidelity]
    messages: list[float] = [float(push.messages)]

    variants = _variants(ctx)
    pulls = api.cached_parallel_map(
        ctx,
        keys=[("pull", config, ttr) for _label, ttr in variants],
        points=[(config, ttr) for _label, ttr in variants],
        worker=_run_pull_point,
    )
    for (label, _ttr), result in zip(variants, pulls):
        labels.append(label)
        losses.append(result.loss_of_fidelity)
        messages.append(float(result.messages))

    return ExperimentResult(
        name="Extension: push vs. pull (fixed / adaptive TTR)",
        xlabel="system",
        ylabel="loss of fidelity (%) / messages",
        xs=list(range(len(labels))),
        series=[
            Series(label="loss %", ys=losses),
            Series(label="messages", ys=messages),
        ],
        notes={"systems": labels},
    )


def _render(result: ExperimentResult) -> str:
    lines = [f"== {result.name} ==",
             f"{'system':<16} {'loss %':>8} {'messages':>10}"]
    lines.append("-" * 38)
    for i, label in enumerate(result.notes["systems"]):
        loss = result.series_by_label("loss %").ys[i]
        msgs = result.series_by_label("messages").ys[i]
        lines.append(f"{label:<16} {loss:>8.2f} {msgs:>10.0f}")
    return "\n".join(lines)


SPEC = api.register(api.ExperimentSpec(
    name="pull_baseline",
    description=(
        "Cooperative push dominates the fidelity-per-message trade-off "
        "against fixed- and adaptive-TTR pull baselines."
    ),
    params=(
        api.ParamSpec("t_percent", "float", 80.0,
                      "coherency-stringency mix (T%)"),
        api.ParamSpec("ttrs_s", "floats", DEFAULT_TTRS,
                      "fixed TTRs to sweep (seconds)"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run(
    preset: str = "small",
    t_percent: float = 80.0,
    ttrs_s: tuple[float, ...] = DEFAULT_TTRS,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Run push and the pull family over one shared workload."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(t_percent=t_percent, ttrs_s=ttrs_s),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = _render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Extension experiment: push vs. pull (fixed and adaptive TTR).

The paper's Section 8 names pull-based and adaptive mechanisms as the
natural comparison points for its push architecture.  This experiment
runs them on the identical workload:

- cooperative push (distributed policy, controlled cooperation),
- direct pull with fixed TTRs,
- direct pull with adaptive TTR.

Expected outcome: short fixed TTRs approach push fidelity but flood the
source with poll traffic; long TTRs are cheap but stale; adaptive TTR
sits between; cooperative push dominates the fidelity-per-message
trade-off because repositories share the dissemination work.
"""

from __future__ import annotations

from repro.engine.builder import build_setup
from repro.engine.pull import TtrConfig, run_pull_simulation
from repro.engine.simulation import run_simulation
from repro.experiments.runner import ExperimentResult, Series, format_result, preset_config

__all__ = ["DEFAULT_TTRS", "run", "main"]

#: Fixed TTRs to sweep, in seconds.
DEFAULT_TTRS: tuple[float, ...] = (2.0, 10.0, 30.0)


def run(
    preset: str = "small",
    t_percent: float = 80.0,
    ttrs_s: tuple[float, ...] = DEFAULT_TTRS,
    **overrides,
) -> ExperimentResult:
    """Run push and the pull family over one shared setup."""
    config = preset_config(
        preset,
        t_percent=t_percent,
        policy="distributed",
        controlled_cooperation=True,
        **overrides,
    )
    setup = build_setup(config)

    labels: list[str] = []
    losses: list[float] = []
    messages: list[float] = []

    push = run_simulation(config, setup=setup)
    labels.append("push (coop)")
    losses.append(push.loss_of_fidelity)
    messages.append(float(push.messages))

    for ttr in ttrs_s:
        result = run_pull_simulation(setup, TtrConfig(mode="fixed", ttr_s=ttr))
        labels.append(f"pull ttr={ttr:g}s")
        losses.append(result.loss_of_fidelity)
        messages.append(float(result.messages))

    adaptive = run_pull_simulation(
        setup,
        TtrConfig(
            mode="adaptive",
            ttr_s=10.0,
            ttr_min_s=1.0,
            ttr_max_s=60.0,
        ),
    )
    labels.append("pull adaptive")
    losses.append(adaptive.loss_of_fidelity)
    messages.append(float(adaptive.messages))

    result = ExperimentResult(
        name="Extension: push vs. pull (fixed / adaptive TTR)",
        xlabel="system",
        ylabel="loss of fidelity (%) / messages",
        xs=list(range(len(labels))),
        series=[
            Series(label="loss %", ys=losses),
            Series(label="messages", ys=messages),
        ],
        notes={"systems": labels},
    )
    return result


def main(preset: str = "small", **overrides) -> str:
    result = run(preset=preset, **overrides)
    lines = [f"== {result.name} ==",
             f"{'system':<16} {'loss %':>8} {'messages':>10}"]
    lines.append("-" * 38)
    for i, label in enumerate(result.notes["systems"]):
        loss = result.series_by_label("loss %").ys[i]
        msgs = result.series_by_label("messages").ys[i]
        lines.append(f"{label:<16} {loss:>8.2f} {msgs:>10.0f}")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 3: loss of fidelity vs. degree of cooperation (the U-curve).

Seven T values; the degree of cooperation offered by every node swept
from 1 (the d3t degenerates to a chain) to the repository count (the
source serves everyone directly).  The paper uses the source-based
(centralised) dissemination algorithm as the baseline here.

Expected shape: U for stringent mixes -- communication delays dominate on
the left, computational (queueing) delays on the right -- flattening to
zero as T drops.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import DEFAULT_T_VALUES, default_degrees
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["DEFAULT_T_VALUES", "default_degrees", "SPEC", "run", "main"]


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config()
    degrees = ctx.params["degrees"]
    if degrees is None:
        degrees = tuple(default_degrees(base.n_repositories))
    return base, degrees


def _plan(ctx: api.ExperimentContext):
    base, degrees = _grid(ctx)
    return tuple(
        base.with_(t_percent=t, offered_degree=d, policy=ctx.params["policy"],
                   controlled_cooperation=False)
        for t in ctx.params["t_values"]
        for d in degrees
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, degrees = _grid(ctx)
    t_values = ctx.params["t_values"]
    result = ExperimentResult(
        name="Figure 3: need for limiting cooperation",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, t in enumerate(t_values):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    return result


SPEC = api.register(api.ExperimentSpec(
    name="figure3",
    description=(
        "Loss of fidelity vs degree of cooperation is a U-curve; "
        "coherency stringency deepens it (need for limiting cooperation)."
    ),
    params=(
        api.ParamSpec("t_values", "floats", DEFAULT_T_VALUES,
                      "coherency-stringency mixes (T%)"),
        api.ParamSpec("degrees", "ints", None,
                      "degree sweep (default: derived from the preset)"),
        api.ParamSpec("policy", "str", "centralized",
                      "dissemination policy for the baseline"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    degrees: list[int] | None = None,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep (T, degree) and collect system loss of fidelity."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(t_values=t_values, degrees=degrees, policy=policy),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 3: loss of fidelity vs. degree of cooperation (the U-curve).

Seven T values; the degree of cooperation offered by every node swept
from 1 (the d3t degenerates to a chain) to the repository count (the
source serves everyone directly).  The paper uses the source-based
(centralised) dissemination algorithm as the baseline here.

Expected shape: U for stringent mixes -- communication delays dominate on
the left, computational (queueing) delays on the right -- flattening to
zero as T drops.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["DEFAULT_T_VALUES", "default_degrees", "run", "main"]

#: The paper's seven coherency-stringency mixes.
DEFAULT_T_VALUES: tuple[float, ...] = (100.0, 90.0, 80.0, 70.0, 50.0, 20.0, 0.0)


def default_degrees(n_repositories: int) -> list[int]:
    """A log-ish sweep from a chain to full fan-out."""
    candidates = [1, 2, 3, 5, 8, 12, 20, 35, 60, 100]
    degrees = [d for d in candidates if d < n_repositories]
    degrees.append(n_repositories)
    return degrees


def run(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    degrees: list[int] | None = None,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep (T, degree) and collect system loss of fidelity."""
    base = preset_config(preset, **overrides)
    if degrees is None:
        degrees = default_degrees(base.n_repositories)
    result = ExperimentResult(
        name="Figure 3: need for limiting cooperation",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    # One flat (T x degree) grid => one sweep call, so a parallel run
    # fans out over every point of every curve at once.
    configs = [
        base.with_(t_percent=t, offered_degree=d, policy=policy,
                   controlled_cooperation=False)
        for t in t_values
        for d in degrees
    ]
    losses, _ = sweep(configs, jobs=jobs)
    for row, t in enumerate(t_values):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Ablations beyond the paper's figures.

1. **Eq. (2)'s interest fraction f** (the paper's footnote study): for
   f >= 50 the resulting fidelity should vary by only ~1%; small f
   over-inflates the degree and re-enters the U-curve's rising arm.
2. **Missed-update guard ablation**: the distributed policy with and
   without Eq. (7), quantifying what the guard buys end to end (the
   paper argues its necessity analytically via Figure 4).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["DEFAULT_F_VALUES", "run_f_sensitivity", "run_eq7_ablation", "main"]

#: Sweep around the paper's footnote values (f=50, f=100).
DEFAULT_F_VALUES: tuple[float, ...] = (10.0, 25.0, 50.0, 75.0, 100.0, 200.0)


def run_f_sensitivity(
    preset: str = "small",
    f_values: tuple[float, ...] = DEFAULT_F_VALUES,
    t_percent: float = 80.0,
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Loss of fidelity vs. Eq. (2)'s f under controlled cooperation."""
    base = preset_config(preset, t_percent=t_percent, **overrides)
    configs = [
        base.with_(
            interest_fraction_f=f,
            offered_degree=base.n_repositories,
            controlled_cooperation=True,
        )
        for f in f_values
    ]
    losses, runs = sweep(configs, jobs=jobs)
    result = ExperimentResult(
        name="Ablation: sensitivity to Eq. (2)'s interest fraction f",
        xlabel="f",
        ylabel="loss of fidelity (%)",
        xs=list(f_values),
    )
    result.series.append(Series(label=f"T={t_percent:.0f}", ys=losses))
    result.series.append(
        Series(label="Eq.(2) degree", ys=[float(r.effective_degree) for r in runs])
    )
    losses_f50_up = [l for f, l in zip(f_values, losses) if f >= 50.0]
    if losses_f50_up:
        result.notes["max variation for f>=50 (paper: ~1%)"] = round(
            max(losses_f50_up) - min(losses_f50_up), 3
        )
    return result


def run_eq7_ablation(
    preset: str = "small",
    t_percent: float = 80.0,
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Distributed policy with vs. without the Eq. (7) guard."""
    base = preset_config(
        preset, t_percent=t_percent, controlled_cooperation=True, **overrides
    )
    configs = [base.with_(policy="distributed"), base.with_(policy="eq3_only")]
    losses, runs = sweep(configs, jobs=jobs)
    result = ExperimentResult(
        name="Ablation: the Eq. (7) missed-update guard",
        xlabel="policy (0=distributed, 1=eq3_only)",
        ylabel="loss of fidelity (%)",
        xs=[0.0, 1.0],
    )
    result.series.append(Series(label=f"T={t_percent:.0f}", ys=losses))
    result.notes["messages distributed"] = runs[0].messages
    result.notes["messages eq3_only"] = runs[1].messages
    return result


def main(preset: str = "small", **overrides) -> str:
    texts = [
        report(run_f_sensitivity(preset=preset, **overrides)),
        report(run_eq7_ablation(preset=preset, **overrides)),
    ]
    text = "\n\n".join(texts)
    print(text)
    return text


if __name__ == "__main__":
    main()

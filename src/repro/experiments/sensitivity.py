"""Ablations beyond the paper's figures.

1. **Eq. (2)'s interest fraction f** (the paper's footnote study): for
   f >= 50 the resulting fidelity should vary by only ~1%; small f
   over-inflates the degree and re-enters the U-curve's rising arm.
2. **Missed-update guard ablation**: the distributed policy with and
   without Eq. (7), quantifying what the guard buys end to end (the
   paper argues its necessity analytically via Figure 4).

Both ablations plan through one grid, so the registry runner executes
(and caches) them as a single sweep.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import DEFAULT_F_VALUES
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["DEFAULT_F_VALUES", "SPEC", "run_f_sensitivity", "run_eq7_ablation", "main"]


def _plan_f(ctx: api.ExperimentContext):
    base = ctx.base_config().with_(t_percent=ctx.params["t_percent"])
    return tuple(
        base.with_(
            interest_fraction_f=f,
            offered_degree=base.n_repositories,
            controlled_cooperation=True,
        )
        for f in ctx.params["f_values"]
    )


def _collect_f(ctx: api.ExperimentContext, results) -> ExperimentResult:
    f_values = ctx.params["f_values"]
    t_percent = ctx.params["t_percent"]
    losses = [r.loss_of_fidelity for r in results]
    result = ExperimentResult(
        name="Ablation: sensitivity to Eq. (2)'s interest fraction f",
        xlabel="f",
        ylabel="loss of fidelity (%)",
        xs=list(f_values),
    )
    result.series.append(Series(label=f"T={t_percent:.0f}", ys=losses))
    result.series.append(
        Series(label="Eq.(2) degree",
               ys=[float(r.effective_degree) for r in results])
    )
    losses_f50_up = [l for f, l in zip(f_values, losses) if f >= 50.0]
    if losses_f50_up:
        result.notes["max variation for f>=50 (paper: ~1%)"] = round(
            max(losses_f50_up) - min(losses_f50_up), 3
        )
    return result


def _plan_eq7(ctx: api.ExperimentContext):
    base = ctx.base_config().with_(
        t_percent=ctx.params["t_percent"], controlled_cooperation=True
    )
    return (base.with_(policy="distributed"), base.with_(policy="eq3_only"))


def _collect_eq7(ctx: api.ExperimentContext, results) -> ExperimentResult:
    t_percent = ctx.params["t_percent"]
    losses = [r.loss_of_fidelity for r in results]
    result = ExperimentResult(
        name="Ablation: the Eq. (7) missed-update guard",
        xlabel="policy (0=distributed, 1=eq3_only)",
        ylabel="loss of fidelity (%)",
        xs=[0.0, 1.0],
    )
    result.series.append(Series(label=f"T={t_percent:.0f}", ys=losses))
    result.notes["messages distributed"] = results[0].messages
    result.notes["messages eq3_only"] = results[1].messages
    return result


def _plan(ctx: api.ExperimentContext):
    return _plan_f(ctx) + _plan_eq7(ctx)


def _collect(ctx: api.ExperimentContext, results) -> list[ExperimentResult]:
    n_f = len(_plan_f(ctx))
    return [
        _collect_f(ctx, results[:n_f]),
        _collect_eq7(ctx, results[n_f:]),
    ]


def _render(ablations: list[ExperimentResult]) -> str:
    return "\n\n".join(report(a) for a in ablations)


SPEC = api.register(api.ExperimentSpec(
    name="sensitivity",
    description=(
        "Ablations: fidelity is insensitive to Eq. (2)'s f above ~50, "
        "and the Eq. (7) missed-update guard pays for itself."
    ),
    params=(
        api.ParamSpec("f_values", "floats", DEFAULT_F_VALUES,
                      "interest fractions f to sweep"),
        api.ParamSpec("t_percent", "float", 80.0,
                      "coherency-stringency mix (T%)"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run_f_sensitivity(
    preset: str = "small",
    f_values: tuple[float, ...] = DEFAULT_F_VALUES,
    t_percent: float = 80.0,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Loss of fidelity vs. Eq. (2)'s f under controlled cooperation."""
    ctx = api.ExperimentContext(
        preset=preset,
        params=SPEC.resolve_params(dict(f_values=f_values, t_percent=t_percent)),
        jobs=jobs,
        cache=cache,
        overrides=overrides,
    )
    results = api.execute_plan(_plan_f(ctx), jobs=jobs, cache=cache)
    return _collect_f(ctx, tuple(results))


def run_eq7_ablation(
    preset: str = "small",
    t_percent: float = 80.0,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Distributed policy with vs. without the Eq. (7) guard."""
    ctx = api.ExperimentContext(
        preset=preset,
        params=SPEC.resolve_params(dict(t_percent=t_percent)),
        jobs=jobs,
        cache=cache,
        overrides=overrides,
    )
    results = api.execute_plan(_plan_eq7(ctx), jobs=jobs, cache=cache)
    return _collect_eq7(ctx, tuple(results))


def main(preset: str = "small", **overrides) -> str:
    texts = [
        report(run_f_sensitivity(preset=preset, **overrides)),
        report(run_eq7_ablation(preset=preset, **overrides)),
    ]
    text = "\n\n".join(texts)
    print(text)
    return text


if __name__ == "__main__":
    main()

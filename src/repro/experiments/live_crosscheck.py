"""Cross-validate the simulator against the live network.

The paper's credibility rests on a *real implementation*; ours rests on
the simulator and the live network (:mod:`repro.live`) being two
executions of the same algorithms.  This experiment runs both planes on
identical configs -- the simulation through the shared cached sweep
plane, the live network on the deterministic in-process transport --
and asserts they agree:

- **fidelity**: system loss of fidelity matches within
  ``fidelity_tol`` percentage points per policy (the two planes share
  the coherency filter, the ``d3g``, the delays and the queueing
  semantics, so the expected delta is exactly zero; the tolerance
  absorbs nothing but genuine regressions);
- **messages**: repository-plane message counts match within
  ``message_tol`` percent;
- **conservation**: on the live wire, ``deliveries + drops == sends``.

A disagreement raises -- a failed cross-check is a correctness bug in
one of the planes, not a data point.

Failure leg
-----------

A second leg repeats the comparison under an injected
:class:`~repro.engine.failures.FailureSchedule` (repository crashes,
link partitions) plus seeded message loss, per policy, again on the
in-process transport -- and then once more over real TCP sockets.  The
TCP half runs on a *fixed* small grid rather than the preset: its
fidelity gap against the simulator is pure wall-clock scheduling slop
multiplied by ``tcp_time_scale``, while its wall budget is the trace
span *divided* by ``tcp_time_scale``, so only a small grid lets a
sub-``fidelity_tol`` gap and a few-second run coexist.  The TCP leg
asserts exact wire conservation (``sent == delivered + dropped``) and
fidelity agreement within ``fidelity_tol``; it degrades gracefully
(recorded as skipped) where localhost sockets are unavailable, unless
``tcp=on`` forces it.

Adaptive leg
------------

A third leg repeats the comparison with an
:class:`~repro.engine.adaptive.AdaptivePolicy` active on a fixed
drifting grid (``ADAPTIVE_BASE``, flash-crowd traffic): the engine's
drift-triggered re-optimization must fire on both planes and still
leave them *bit-identical* -- unlike the plain legs' tolerance checks,
this one asserts ``delta == 0``, full :class:`CostCounters` equality
(reconfiguration charges included) and equal, non-zero rewire counts.
The in-process transport shares the simulator's kernel and counters, so
any disagreement means the live rewiring path diverged from the
engine's ``_apply_diff``.
"""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.errors import SimulationError
from repro.experiments import api
from repro.workloads import FlashCrowdWorkload

__all__ = ["SPEC", "POLICIES", "FAILURE_BASE", "ADAPTIVE_BASE", "run", "main"]

#: The two exact policies are the cross-check's subjects; flooding and
#: eq3_only are diagnostic baselines, available via the ``policies``
#: parameter.
POLICIES = ("distributed", "centralized")

#: Fixed operating point of the TCP failure leg (see module docstring
#: for why it does not scale with the preset).  Measured on this grid:
#: the sim-vs-TCP fidelity gap stays under 0.5 pp for time scales up to
#: ~15x, with exact wire conservation at every scale.
FAILURE_BASE = SimulationConfig(
    n_repositories=5,
    n_routers=15,
    n_items=2,
    trace_samples=80,
)

#: Fixed operating point of the adaptive leg: flash-crowd drift on a
#: small grid, sized so the default policy applies several rewires per
#: run under both exact dissemination policies (verified: 4 rewires
#: each) while the whole leg stays sub-second.
ADAPTIVE_BASE = SimulationConfig(
    n_repositories=12,
    n_routers=36,
    n_items=3,
    trace_samples=300,
    seed=3913,
    workload=FlashCrowdWorkload(),
)


def _localhost_socket_reason() -> str | None:
    """Why TCP cannot run here, or ``None`` when sockets work."""
    import socket

    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:  # pragma: no cover - sandboxed environments
        return f"cannot bind localhost sockets here: {exc}"
    return None


def _policies(ctx: api.ExperimentContext) -> tuple[str, ...]:
    return tuple(p for p in ctx.params["policies"].split(",") if p.strip())


def _failure_config(ctx: api.ExperimentContext, policy: str) -> SimulationConfig:
    from repro.engine.failures import failures_for_config

    base = FAILURE_BASE.with_(
        policy=policy,
        message_loss_probability=ctx.params["failure_loss"],
    )
    return base.with_(failures=failures_for_config(
        base,
        crashes=ctx.params["failure_crashes"],
        partitions=ctx.params["failure_partitions"],
        seed=ctx.params["failure_seed"],
    ))


def _adaptive_config(ctx: api.ExperimentContext, policy: str) -> SimulationConfig:
    from repro.engine.adaptive import AdaptivePolicy

    return ADAPTIVE_BASE.with_(
        policy=policy,
        adaptive=AdaptivePolicy(
            window=ctx.params["adaptive_window"],
            threshold=ctx.params["adaptive_threshold"],
            max_rewires=ctx.params["adaptive_max_rewires"],
        ),
    )


def _plan(ctx: api.ExperimentContext):
    base = ctx.base_config()
    plain = tuple(base.with_(policy=policy) for policy in _policies(ctx))
    failure = tuple(_failure_config(ctx, policy) for policy in _policies(ctx))
    adaptive = tuple(_adaptive_config(ctx, policy) for policy in _policies(ctx))
    return plain + failure + adaptive


def _check_pair(tag: str, sim, live, fidelity_tol: float, message_tol: float) -> dict:
    """Compare one sim result against one live run; raise on drift."""
    if not live.conserved:
        raise SimulationError(
            f"live_crosscheck[{tag}]: message conservation violated: "
            f"sent={live.sent} delivered={live.delivered} "
            f"dropped={live.dropped}"
        )
    delta_loss = abs(sim.loss_of_fidelity - live.loss_of_fidelity)
    if delta_loss > fidelity_tol:
        raise SimulationError(
            f"live_crosscheck[{tag}]: fidelity disagrees by "
            f"{delta_loss:.4f} pp (sim {sim.loss_of_fidelity:.4f}, "
            f"live {live.loss_of_fidelity:.4f}; tolerance {fidelity_tol})"
        )
    message_delta_pct = (
        100.0 * abs(sim.messages - live.messages) / sim.messages
        if sim.messages
        else 0.0
    )
    if message_delta_pct > message_tol:
        raise SimulationError(
            f"live_crosscheck[{tag}]: message counts disagree by "
            f"{message_delta_pct:.2f}% (sim {sim.messages}, "
            f"live {live.messages}; tolerance {message_tol}%)"
        )
    return {
        "sim_loss": sim.loss_of_fidelity,
        "live_loss": live.loss_of_fidelity,
        "delta_loss_pp": delta_loss,
        "sim_messages": sim.messages,
        "live_messages": live.messages,
        "message_delta_pct": message_delta_pct,
        "live_sent": live.sent,
        "live_delivered": live.delivered,
        "live_dropped": live.dropped,
        "conserved": live.conserved,
    }


def _collect(ctx: api.ExperimentContext, results) -> dict:
    from repro.live.harness import run_live

    fidelity_tol = ctx.params["fidelity_tol"]
    message_tol = ctx.params["message_tol"]
    base = ctx.base_config()
    policies = _policies(ctx)
    payload: dict = {
        "preset": ctx.preset,
        "fidelity_tol_pp": fidelity_tol,
        "message_tol_pct": message_tol,
        "policies": {},
        "failure_policies": {},
        "adaptive_policies": {},
    }
    plain_sims = results[: len(policies)]
    failure_sims = results[len(policies) : 2 * len(policies)]
    adaptive_sims = results[2 * len(policies):]
    for policy, sim in zip(policies, plain_sims):
        config = base.with_(policy=policy)
        # The live half is deliberately NEVER cached: the experiment
        # exists to detect drift between today's code and the (possibly
        # cached) sim results, and a cache key carries no code
        # fingerprint -- a cached live answer would let a regression in
        # the shared filter report agreement forever.  The run is
        # sub-second at cross-check scale and bit-deterministic, so
        # recomputing keeps warm-rerun payloads byte-identical too.
        live = run_live(config, "inprocess")
        payload["policies"][policy] = _check_pair(
            policy, sim, live, fidelity_tol, message_tol
        )

    # --- failure leg: same comparison under crashes + partitions + loss.
    payload["failures"] = {
        "crashes": ctx.params["failure_crashes"],
        "partitions": ctx.params["failure_partitions"],
        "loss_probability": ctx.params["failure_loss"],
        "seed": ctx.params["failure_seed"],
    }
    for policy, sim in zip(policies, failure_sims):
        config = _failure_config(ctx, policy)
        live = run_live(config, "inprocess")
        row = _check_pair(
            f"failures/{policy}", sim, live, fidelity_tol, message_tol
        )
        row["sim_drops"] = sim.counters.drops
        row["live_drops"] = live.counters.drops
        payload["failure_policies"][policy] = row

    # --- adaptive leg: drift-triggered rewiring must leave the planes
    # bit-identical.  Zero tolerances on purpose: the in-process
    # transport shares the simulator's kernel, counters and controller
    # decisions, so *any* gap means the live rewiring path diverged.
    payload["adaptive"] = {
        "window": ctx.params["adaptive_window"],
        "threshold": ctx.params["adaptive_threshold"],
        "max_rewires": ctx.params["adaptive_max_rewires"],
    }
    for policy, sim in zip(policies, adaptive_sims):
        config = _adaptive_config(ctx, policy)
        live = run_live(config, "inprocess")
        row = _check_pair(
            f"adaptive/{policy}", sim, live, fidelity_tol=0.0, message_tol=0.0
        )
        if sim.counters != live.counters:
            raise SimulationError(
                f"live_crosscheck[adaptive/{policy}]: cost counters "
                f"diverged under adaptation: sim={sim.counters} "
                f"live={live.counters}"
            )
        sim_rewires = sim.extras.get("adaptive_rewires", 0)
        live_rewires = live.extras.get("adaptive_rewires", 0)
        if sim_rewires != live_rewires or sim_rewires < 1:
            raise SimulationError(
                f"live_crosscheck[adaptive/{policy}]: expected matching, "
                f"non-zero rewire counts, got sim={sim_rewires} "
                f"live={live_rewires}"
            )
        row["rewires"] = sim_rewires
        row["ticks"] = sim.extras.get("adaptive_ticks", 0)
        row["resubscriptions"] = sim.counters.resubscriptions
        payload["adaptive_policies"][policy] = row

    # --- TCP failure leg: one policy over real sockets.  Unlike the
    # in-process transport (which shares the simulator's virtual-time
    # kernel and agrees bit-for-bit), TCP observes genuinely real
    # deliveries, so the fidelity check here is the end-to-end one.
    tcp_mode = ctx.params["tcp"]
    if tcp_mode not in ("auto", "on", "off"):
        raise SimulationError(
            f"live_crosscheck: tcp must be auto/on/off, got {tcp_mode!r}"
        )
    reason = None if tcp_mode == "on" else _localhost_socket_reason()
    if tcp_mode == "off":
        payload["tcp"] = {"ran": False, "reason": "disabled (tcp=off)"}
    elif tcp_mode == "auto" and reason is not None:
        payload["tcp"] = {"ran": False, "reason": reason}
    else:
        policy = "distributed" if "distributed" in policies else policies[0]
        sim = failure_sims[policies.index(policy)]
        config = _failure_config(ctx, policy)
        # The TCP gap is one-sided wall-scheduler slop on an otherwise
        # deterministic run (the wire economy never varies); a loaded
        # host occasionally produces an outlier delay, so a bounded
        # retry absorbs scheduler noise without masking real drift --
        # a correctness bug disagrees on every attempt.
        attempts = 3
        for attempt in range(attempts):
            live = run_live(
                config, "tcp", time_scale=ctx.params["tcp_time_scale"]
            )
            try:
                row = _check_pair(
                    f"failures/tcp/{policy}", sim, live,
                    fidelity_tol, message_tol,
                )
                break
            except SimulationError:
                if attempt == attempts - 1:
                    raise
        row["ran"] = True
        row["policy"] = policy
        row["time_scale"] = ctx.params["tcp_time_scale"]
        row["wall_seconds"] = live.wall_seconds
        row["heartbeats"] = live.extras.get("heartbeats", 0)
        row["reconnects"] = live.extras.get("reconnects", 0)
        payload["tcp"] = row
    payload["agreement"] = True
    return payload


def _render(payload: dict) -> str:
    lines = [
        "Live cross-check: simulator vs in-process live network "
        f"(preset={payload['preset']})",
        f"tolerances: fidelity {payload['fidelity_tol_pp']} pp, "
        f"messages {payload['message_tol_pct']}%",
        "",
        f"{'policy':<14} {'sim loss%':>10} {'live loss%':>10} "
        f"{'Δpp':>8} {'sim msgs':>9} {'live msgs':>9} {'conserved':>9}",
    ]
    for policy, row in payload["policies"].items():
        lines.append(
            f"{policy:<14} {row['sim_loss']:>10.4f} {row['live_loss']:>10.4f} "
            f"{row['delta_loss_pp']:>8.4f} {row['sim_messages']:>9d} "
            f"{row['live_messages']:>9d} {str(row['conserved']):>9}"
        )
    failures = payload.get("failures")
    if failures:
        lines.append("")
        lines.append(
            f"failure leg: {failures['crashes']} crash(es), "
            f"{failures['partitions']} partition(s), "
            f"loss={failures['loss_probability']}, seed={failures['seed']}"
        )
        for policy, row in payload.get("failure_policies", {}).items():
            lines.append(
                f"{policy:<14} {row['sim_loss']:>10.4f} "
                f"{row['live_loss']:>10.4f} {row['delta_loss_pp']:>8.4f} "
                f"{row['sim_messages']:>9d} {row['live_messages']:>9d} "
                f"{str(row['conserved']):>9}"
            )
        tcp = payload.get("tcp", {})
        if tcp.get("ran"):
            lines.append(
                f"tcp[{tcp['policy']}]: Δ={tcp['delta_loss_pp']:.4f} pp, "
                f"wire {tcp['live_sent']}={tcp['live_delivered']}"
                f"+{tcp['live_dropped']} conserved={tcp['conserved']}, "
                f"wall={tcp['wall_seconds']:.1f}s"
            )
        else:
            lines.append(f"tcp: skipped -- {tcp.get('reason', 'unknown')}")
    adaptive = payload.get("adaptive")
    if adaptive:
        lines.append("")
        lines.append(
            f"adaptive leg (bit-exact): window={adaptive['window']:g}, "
            f"threshold={adaptive['threshold']:g}, "
            f"max_rewires={adaptive['max_rewires']}"
        )
        for policy, row in payload.get("adaptive_policies", {}).items():
            lines.append(
                f"{policy:<14} {row['sim_loss']:>10.4f} "
                f"{row['live_loss']:>10.4f} {row['delta_loss_pp']:>8.4f} "
                f"{row['sim_messages']:>9d} {row['live_messages']:>9d} "
                f"rewires={row['rewires']} resubs={row['resubscriptions']}"
            )
    lines.append("")
    lines.append("agreement: within tolerance on every policy")
    return "\n".join(lines)


SPEC = api.register(api.ExperimentSpec(
    name="live_crosscheck",
    description=(
        "The live network and the simulator agree on fidelity and message "
        "counts for identical configs (shared-filter cross-validation)."
    ),
    params=(
        api.ParamSpec("policies", "str", ",".join(POLICIES),
                      "comma-separated policies to cross-check"),
        api.ParamSpec("fidelity_tol", "float", 0.5,
                      "max |sim - live| system loss disagreement, "
                      "percentage points"),
        api.ParamSpec("message_tol", "float", 2.0,
                      "max repository-plane message-count disagreement, %"),
        api.ParamSpec("failure_crashes", "int", 1,
                      "repository crash/recover pairs in the failure leg"),
        api.ParamSpec("failure_partitions", "int", 1,
                      "link down/up windows in the failure leg"),
        api.ParamSpec("failure_loss", "float", 0.01,
                      "seeded Bernoulli message-loss probability in the "
                      "failure leg"),
        api.ParamSpec("failure_seed", "int", 3,
                      "seed of the synthetic failure schedule"),
        api.ParamSpec("tcp", "str", "auto",
                      "TCP failure leg: auto (skip without sockets), "
                      "on (require), off (never)"),
        api.ParamSpec("tcp_time_scale", "float", 8.0,
                      "sim-seconds per wall-second for the TCP leg; the "
                      "fidelity gap scales with it, the wall time "
                      "inversely"),
        api.ParamSpec("adaptive_window", "float", 30.0,
                      "drift window (simulated seconds) of the adaptive "
                      "leg's policy"),
        api.ParamSpec("adaptive_threshold", "float", 0.75,
                      "drift threshold of the adaptive leg's policy"),
        api.ParamSpec("adaptive_max_rewires", "int", 4,
                      "rewire cap of the adaptive leg's policy"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run(
    preset: str = "small",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> dict:
    """Programmatic entry point mirroring the other experiment modules."""
    return api.run_experiment(
        "live_crosscheck", preset=preset, jobs=jobs, cache=cache,
        overrides=overrides,
    )


def main(preset: str = "small", jobs: int | None = 1) -> str:
    """Run and render (the historical module-level driver shape)."""
    text = SPEC.render(run(preset=preset, jobs=jobs))
    print(text)
    return text

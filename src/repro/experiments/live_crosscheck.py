"""Cross-validate the simulator against the live network.

The paper's credibility rests on a *real implementation*; ours rests on
the simulator and the live network (:mod:`repro.live`) being two
executions of the same algorithms.  This experiment runs both planes on
identical configs -- the simulation through the shared cached sweep
plane, the live network on the deterministic in-process transport --
and asserts they agree:

- **fidelity**: system loss of fidelity matches within
  ``fidelity_tol`` percentage points per policy (the two planes share
  the coherency filter, the ``d3g``, the delays and the queueing
  semantics, so the expected delta is exactly zero; the tolerance
  absorbs nothing but genuine regressions);
- **messages**: repository-plane message counts match within
  ``message_tol`` percent;
- **conservation**: on the live wire, ``deliveries + drops == sends``.

A disagreement raises -- a failed cross-check is a correctness bug in
one of the planes, not a data point.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.experiments import api

__all__ = ["SPEC", "POLICIES", "run", "main"]

#: The two exact policies are the cross-check's subjects; flooding and
#: eq3_only are diagnostic baselines, available via the ``policies``
#: parameter.
POLICIES = ("distributed", "centralized")


def _policies(ctx: api.ExperimentContext) -> tuple[str, ...]:
    return tuple(p for p in ctx.params["policies"].split(",") if p.strip())


def _plan(ctx: api.ExperimentContext):
    base = ctx.base_config()
    return tuple(base.with_(policy=policy) for policy in _policies(ctx))


def _collect(ctx: api.ExperimentContext, results) -> dict:
    from repro.live.harness import run_live

    fidelity_tol = ctx.params["fidelity_tol"]
    message_tol = ctx.params["message_tol"]
    base = ctx.base_config()
    payload: dict = {
        "preset": ctx.preset,
        "fidelity_tol_pp": fidelity_tol,
        "message_tol_pct": message_tol,
        "policies": {},
    }
    for policy, sim in zip(_policies(ctx), results):
        config = base.with_(policy=policy)
        # The live half is deliberately NEVER cached: the experiment
        # exists to detect drift between today's code and the (possibly
        # cached) sim results, and a cache key carries no code
        # fingerprint -- a cached live answer would let a regression in
        # the shared filter report agreement forever.  The run is
        # sub-second at cross-check scale and bit-deterministic, so
        # recomputing keeps warm-rerun payloads byte-identical too.
        live = run_live(config, "inprocess")
        if not live.conserved:
            raise SimulationError(
                f"live_crosscheck[{policy}]: message conservation violated: "
                f"sent={live.sent} delivered={live.delivered} "
                f"dropped={live.dropped}"
            )
        delta_loss = abs(sim.loss_of_fidelity - live.loss_of_fidelity)
        if delta_loss > fidelity_tol:
            raise SimulationError(
                f"live_crosscheck[{policy}]: fidelity disagrees by "
                f"{delta_loss:.4f} pp (sim {sim.loss_of_fidelity:.4f}, "
                f"live {live.loss_of_fidelity:.4f}; tolerance {fidelity_tol})"
            )
        message_delta_pct = (
            100.0 * abs(sim.messages - live.messages) / sim.messages
            if sim.messages
            else 0.0
        )
        if message_delta_pct > message_tol:
            raise SimulationError(
                f"live_crosscheck[{policy}]: message counts disagree by "
                f"{message_delta_pct:.2f}% (sim {sim.messages}, "
                f"live {live.messages}; tolerance {message_tol}%)"
            )
        payload["policies"][policy] = {
            "sim_loss": sim.loss_of_fidelity,
            "live_loss": live.loss_of_fidelity,
            "delta_loss_pp": delta_loss,
            "sim_messages": sim.messages,
            "live_messages": live.messages,
            "message_delta_pct": message_delta_pct,
            "live_sent": live.sent,
            "live_delivered": live.delivered,
            "live_dropped": live.dropped,
            "conserved": live.conserved,
        }
    payload["agreement"] = True
    return payload


def _render(payload: dict) -> str:
    lines = [
        "Live cross-check: simulator vs in-process live network "
        f"(preset={payload['preset']})",
        f"tolerances: fidelity {payload['fidelity_tol_pp']} pp, "
        f"messages {payload['message_tol_pct']}%",
        "",
        f"{'policy':<14} {'sim loss%':>10} {'live loss%':>10} "
        f"{'Δpp':>8} {'sim msgs':>9} {'live msgs':>9} {'conserved':>9}",
    ]
    for policy, row in payload["policies"].items():
        lines.append(
            f"{policy:<14} {row['sim_loss']:>10.4f} {row['live_loss']:>10.4f} "
            f"{row['delta_loss_pp']:>8.4f} {row['sim_messages']:>9d} "
            f"{row['live_messages']:>9d} {str(row['conserved']):>9}"
        )
    lines.append("")
    lines.append("agreement: within tolerance on every policy")
    return "\n".join(lines)


SPEC = api.register(api.ExperimentSpec(
    name="live_crosscheck",
    description=(
        "The live network and the simulator agree on fidelity and message "
        "counts for identical configs (shared-filter cross-validation)."
    ),
    params=(
        api.ParamSpec("policies", "str", ",".join(POLICIES),
                      "comma-separated policies to cross-check"),
        api.ParamSpec("fidelity_tol", "float", 0.5,
                      "max |sim - live| system loss disagreement, "
                      "percentage points"),
        api.ParamSpec("message_tol", "float", 2.0,
                      "max repository-plane message-count disagreement, %"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run(
    preset: str = "small",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> dict:
    """Programmatic entry point mirroring the other experiment modules."""
    return api.run_experiment(
        "live_crosscheck", preset=preset, jobs=jobs, cache=cache,
        overrides=overrides,
    )


def main(preset: str = "small", jobs: int | None = 1) -> str:
    """Run and render (the historical module-level driver shape)."""
    text = SPEC.render(run(preset=preset, jobs=jobs))
    print(text)
    return text

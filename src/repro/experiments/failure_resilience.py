"""Failure resilience: fidelity vs. unplanned-failure intensity, per policy.

The paper's evaluation assumes a fault-free network: every repository
stays up and every overlay link stays connected for the whole run.
This experiment asks what fidelity costs when that assumption breaks --
for each intensity ``k``, a seeded :class:`~repro.engine.failures.
FailureSchedule` with ``k`` repository crash/recover pairs and ``k``
link down/up windows (one schedule per intensity, shared by every
policy so curves stay comparable) is injected mid-run, and the loss of
fidelity of the two exact dissemination policies is plotted against the
number of failure events.

The expected shape: fidelity degrades but does not collapse.  A crash
costs a failover burst (orphans re-homed to a live ancestor, charged as
reconfiguration) plus a staleness window for the crashed repository
itself; recovery costs one anti-entropy resync whose message count is
bounded by the number of subscribed items -- not by the update volume
missed -- so long outages stay cheap to repair.  The notes report the
drop, failover and resync economies at the highest intensity.
"""

from __future__ import annotations

from repro.engine.failures import failures_for_config
from repro.experiments import api
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["SPEC", "POLICIES", "run", "main"]

POLICIES = ("distributed", "centralized")

#: Failure-pair counts per kind swept when the caller supplies none.
DEFAULT_INTENSITIES = (0, 1, 2, 4)


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config()
    intensities = ctx.params["intensities"]
    if intensities is None:
        intensities = DEFAULT_INTENSITIES
    schedules = {
        k: failures_for_config(
            base, crashes=k, partitions=k, seed=ctx.params["seed"]
        )
        for k in intensities
    }
    return base, intensities, schedules


def _plan(ctx: api.ExperimentContext):
    base, intensities, schedules = _grid(ctx)
    return tuple(
        base.with_(policy=policy, failures=schedules[k])
        for policy in POLICIES
        for k in intensities
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, intensities, schedules = _grid(ctx)
    result = ExperimentResult(
        name="Failure resilience: fidelity under crashes and partitions",
        xlabel="failure events per run",
        ylabel="loss of fidelity (%)",
        xs=[float(len(schedules[k])) for k in intensities],
    )
    losses = [r.loss_of_fidelity for r in results]
    n = len(intensities)
    for i, policy in enumerate(POLICIES):
        result.series.append(Series(label=policy, ys=losses[i * n : (i + 1) * n]))

    worst = results[n - 1]  # distributed policy at the highest intensity
    counters = worst.counters
    result.notes["drops (distributed, max failures)"] = counters.drops
    result.notes["failover edge moves (distributed, max failures)"] = (
        counters.edges_added + counters.edges_removed
    )
    result.notes["resyncs (distributed, max failures)"] = counters.resyncs
    result.notes["resync checks (distributed, max failures)"] = (
        counters.resync_checks
    )
    result.notes["resync messages (distributed, max failures)"] = (
        counters.resync_messages
    )
    return result


SPEC = api.register(api.ExperimentSpec(
    name="failure_resilience",
    description=(
        "Both exact policies degrade gracefully under unplanned crashes "
        "and partitions; failover and anti-entropy resync cost bursts, "
        "not collapse."
    ),
    params=(
        api.ParamSpec("intensities", "ints", None,
                      "crash/partition pairs per kind "
                      f"(default {DEFAULT_INTENSITIES})"),
        api.ParamSpec("seed", "int", 7,
                      "seed of the synthetic failure schedules"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    intensities: list[int] | None = None,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep failure intensity for each exact dissemination policy."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(intensities=intensities),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table 1: characteristics of the (synthetic) stock-price traces.

The paper's Table 1 lists six tickers with the min/max prices seen over
10 000 one-second polls.  We regenerate the table from the synthetic
presets and additionally report the realised change rate, which is the
trace property the dissemination algorithms actually feel.
"""

from __future__ import annotations

from repro.sim.rng import RandomStreams
from repro.traces.library import PAPER_TICKERS, make_paper_trace
from repro.traces.stats import TraceStats, format_table1, summarize

__all__ = ["run", "main"]


def run(n_samples: int = 10_000, seed: int = 20020812) -> list[TraceStats]:
    """Generate the six Table 1 tickers and summarise them."""
    streams = RandomStreams(seed)
    stats = []
    for i, spec in enumerate(PAPER_TICKERS):
        trace = make_paper_trace(spec, streams.spawn("table1", i), n_samples)
        stats.append(summarize(trace))
    return stats


def main(n_samples: int = 10_000, seed: int = 20020812) -> str:
    """Print and return the regenerated Table 1."""
    stats = run(n_samples=n_samples, seed=seed)
    out = [format_table1(stats), "", "Paper's bands for comparison:"]
    for spec in PAPER_TICKERS:
        out.append(f"  {spec.ticker:<6} min={spec.min_price:<8} max={spec.max_price}")
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    main()

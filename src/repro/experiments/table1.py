"""Table 1: characteristics of the (synthetic) stock-price traces.

The paper's Table 1 lists six tickers with the min/max prices seen over
10 000 one-second polls.  We regenerate the table from the synthetic
presets and additionally report the realised change rate, which is the
trace property the dissemination algorithms actually feel.

The experiment plans no simulation configs -- its work is pure trace
statistics -- but it still rides the registry's cache plane, so a warm
``run_all`` recalls the stats without regenerating any trace.
"""

from __future__ import annotations

from repro.experiments import api
from repro.sim.rng import RandomStreams
from repro.traces.library import PAPER_TICKERS, make_paper_trace
from repro.traces.stats import TraceStats, format_table1, summarize

__all__ = ["SPEC", "run", "main"]


def _compute_stats(n_samples: int, seed: int) -> list[TraceStats]:
    streams = RandomStreams(seed)
    stats = []
    for i, spec in enumerate(PAPER_TICKERS):
        trace = make_paper_trace(spec, streams.spawn("table1", i), n_samples)
        stats.append(summarize(trace))
    return stats


def _plan(ctx: api.ExperimentContext):
    return ()


def _collect(ctx: api.ExperimentContext, results) -> list[TraceStats]:
    n_samples = ctx.params["n_samples"]
    seed = ctx.params["seed"]
    return ctx.cached(
        ("table1", n_samples, seed),
        lambda: _compute_stats(n_samples, seed),
    )


def _render(stats: list[TraceStats]) -> str:
    out = [format_table1(stats), "", "Paper's bands for comparison:"]
    for spec in PAPER_TICKERS:
        out.append(f"  {spec.ticker:<6} min={spec.min_price:<8} max={spec.max_price}")
    return "\n".join(out)


SPEC = api.register(api.ExperimentSpec(
    name="table1",
    description=(
        "Trace calibration: the six Table 1 tickers, their price bands "
        "and realised change statistics."
    ),
    params=(
        api.ParamSpec("n_samples", "int", 10_000, "polled samples per trace"),
        api.ParamSpec("seed", "int", 20020812, "trace-generation seed"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run(
    n_samples: int = 10_000,
    seed: int = 20020812,
    cache: api.ResultCache | None = None,
) -> list[TraceStats]:
    """Generate the six Table 1 tickers and summarise them."""
    return api.run_experiment(
        SPEC.name,
        cache=cache,
        params=dict(n_samples=n_samples, seed=seed),
    )


def main(n_samples: int = 10_000, seed: int = 20020812) -> str:
    """Print and return the regenerated Table 1."""
    text = _render(run(n_samples=n_samples, seed=seed))
    print(text)
    return text


if __name__ == "__main__":
    main()

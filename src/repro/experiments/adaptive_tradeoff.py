"""Static vs adaptive dissemination: the fidelity/cost trade-off.

The paper builds the LeLA ``d3g`` once and never revisits it; the
adaptive subsystem (:mod:`repro.engine.adaptive`) re-optimizes it online
when observed traffic drifts.  This experiment quantifies what that buys
under drifting workloads -- and what it costs, with reconfiguration
charged honestly: the comparison metric is **total cost** =
update messages + resubscriptions (every rewired edge is a renegotiated
subscription, exactly what ``CostCounters.reconfigurations`` charges).

For each workload the grid runs one *static* baseline (no adaptive
policy) and the cross product of adaptive policies
(window x threshold x scope x max_rewires, all sharing one cooldown).
A policy *dominates* the static baseline when it achieves strictly lower
loss of fidelity at equal-or-lower total cost.  On ``flash_crowd`` --
the drift pattern adaptation exists for -- at least one grid point must
dominate; ``collect`` raises otherwise, making the claim a checked
invariant rather than a hopeful plot (the default grid is calibrated to
hold on the ``tiny`` and ``small`` presets).
"""

from __future__ import annotations

from repro.engine.adaptive import AdaptivePolicy
from repro.engine.config import SimulationConfig
from repro.errors import SimulationError
from repro.experiments import api
from repro.workloads import make_workload

__all__ = ["SPEC", "run", "main", "total_cost"]


def total_cost(result) -> int:
    """The honest cost of a run: update messages plus resubscriptions."""
    return result.counters.messages + result.counters.resubscriptions


def _workloads(ctx: api.ExperimentContext) -> tuple[str, ...]:
    return tuple(w for w in ctx.params["workloads"].split(",") if w.strip())


def _policies(ctx: api.ExperimentContext) -> tuple[AdaptivePolicy, ...]:
    scopes = tuple(s for s in ctx.params["scopes"].split(",") if s.strip())
    return tuple(
        AdaptivePolicy(
            window=window,
            threshold=threshold,
            cooldown=ctx.params["cooldown"],
            scope=scope,
            max_rewires=max_rewires,
        )
        for window in ctx.params["windows"]
        for threshold in ctx.params["thresholds"]
        for scope in scopes
        for max_rewires in ctx.params["max_rewires"]
    )


def _grid(
    ctx: api.ExperimentContext,
) -> tuple[tuple[str, ...], tuple[AdaptivePolicy, ...], tuple[SimulationConfig, ...]]:
    """Per workload: the static baseline first, then every policy."""
    base = ctx.base_config()
    workloads = _workloads(ctx)
    policies = _policies(ctx)
    configs: list[SimulationConfig] = []
    for name in workloads:
        workload_base = base.with_(workload=make_workload(name))
        configs.append(workload_base)
        configs.extend(
            workload_base.with_(adaptive=policy) for policy in policies
        )
    return workloads, policies, tuple(configs)


def _plan(ctx: api.ExperimentContext) -> tuple[SimulationConfig, ...]:
    _workload_names, _policies_grid, configs = _grid(ctx)
    return configs


def _policy_key(policy: AdaptivePolicy) -> str:
    return (
        f"w={policy.window:g},th={policy.threshold:g},"
        f"{policy.scope},mr={policy.max_rewires}"
    )


def _collect(ctx: api.ExperimentContext, results) -> dict:
    workloads, policies, _configs = _grid(ctx)
    stride = 1 + len(policies)
    payload: dict = {
        "preset": ctx.preset,
        "cost_metric": "messages + resubscriptions",
        "workloads": {},
    }
    for w, workload in enumerate(workloads):
        static = results[w * stride]
        static_cost = total_cost(static)
        rows = {}
        for p, policy in enumerate(policies):
            result = results[w * stride + 1 + p]
            cost = total_cost(result)
            rows[_policy_key(policy)] = {
                "loss": result.loss_of_fidelity,
                "messages": result.counters.messages,
                "resubscriptions": result.counters.resubscriptions,
                "total_cost": cost,
                "rewires": result.extras.get("adaptive_rewires", 0),
                "ticks": result.extras.get("adaptive_ticks", 0),
                "dominates": (
                    result.loss_of_fidelity < static.loss_of_fidelity
                    and cost <= static_cost
                ),
            }
        payload["workloads"][workload] = {
            "static": {
                "loss": static.loss_of_fidelity,
                "messages": static.counters.messages,
                "total_cost": static_cost,
            },
            "policies": rows,
            "dominating": sorted(
                key for key, row in rows.items() if row["dominates"]
            ),
        }
    # The tentpole claim, checked: under the flash-crowd drift pattern,
    # online re-optimization must beat the static build on fidelity
    # without spending more -- reconfiguration cost included.
    flash = payload["workloads"].get("flash_crowd")
    if flash is not None and not flash["dominating"]:
        raise SimulationError(
            "adaptive_tradeoff: no adaptive policy dominates the static "
            "baseline on flash_crowd (strictly lower loss at <= total "
            f"cost); static loss={flash['static']['loss']:.4f} "
            f"cost={flash['static']['total_cost']}, grid="
            f"{list(flash['policies'])}"
        )
    return payload


def _render(payload: dict) -> str:
    lines = [
        "Adaptive vs static dissemination "
        f"(preset={payload['preset']}, cost = {payload['cost_metric']})",
    ]
    for workload, block in payload["workloads"].items():
        static = block["static"]
        lines.append("")
        lines.append(
            f"[{workload}] static: loss={static['loss']:.4f}% "
            f"cost={static['total_cost']}"
        )
        lines.append(
            f"{'policy':<34} {'loss%':>8} {'msgs':>8} {'resub':>6} "
            f"{'cost':>8} {'rewires':>7} {'dominates':>9}"
        )
        for key, row in block["policies"].items():
            lines.append(
                f"{key:<34} {row['loss']:>8.4f} {row['messages']:>8d} "
                f"{row['resubscriptions']:>6d} {row['total_cost']:>8d} "
                f"{row['rewires']:>7d} {str(row['dominates']):>9}"
            )
        if block["dominating"]:
            lines.append(f"dominating: {', '.join(block['dominating'])}")
        else:
            lines.append("dominating: none")
    return "\n".join(lines)


SPEC = api.register(api.ExperimentSpec(
    name="adaptive_tradeoff",
    description=(
        "Online drift-triggered re-optimization vs the static LeLA build "
        "across drifting workloads, with reconfiguration cost charged."
    ),
    params=(
        api.ParamSpec("workloads", "str", "flash_crowd,diurnal",
                      "comma-separated workload generators to compare on"),
        api.ParamSpec("windows", "floats", (30.0, 150.0),
                      "drift-estimation window lengths, simulated seconds"),
        api.ParamSpec("thresholds", "floats", (0.75, 1.5),
                      "relative drift thresholds that trigger re-optimization"),
        api.ParamSpec("scopes", "str", "subtree",
                      "comma-separated re-optimization scopes "
                      "(subtree/global)"),
        api.ParamSpec("cooldown", "float", 0.0,
                      "minimum simulated seconds between applied rewires"),
        api.ParamSpec("max_rewires", "ints", (1, 2),
                      "caps on applied rewires per run"),
    ),
    plan=_plan,
    collect=_collect,
    render=_render,
))


def run(
    preset: str = "small",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> dict:
    """Run the workload x policy grid and check the domination claim."""
    return api.run_experiment(
        SPEC.name, preset=preset, jobs=jobs, cache=cache, overrides=overrides
    )


def main(preset: str = "small", jobs: int | None = 1) -> str:
    text = SPEC.render(run(preset=preset, jobs=jobs))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Shared paper constants: the grids every experiment sweeps.

The paper's ~15 figures and tables draw from one small family of
parameter grids -- the seven coherency mixes of Figure 3, the
communication/computation delay axes of Figures 5-7, LeLA's P% band,
Eq. (2)'s interest fraction, the pull TTRs and the push/pull threshold
boundary.  They used to live scattered across the figure modules (with
``figure5`` importing its T grid *from* ``figure3``); this module is
their single home.  The figure modules re-export their historical names
for backwards compatibility.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_T_VALUES",
    "DEFAULT_COMM_DELAYS",
    "DEFAULT_COMP_DELAYS",
    "DEFAULT_P_VALUES",
    "DEFAULT_F_VALUES",
    "DEFAULT_TTRS",
    "DEFAULT_THRESHOLDS",
    "default_degrees",
    "default_intensities",
]

#: The paper's seven coherency-stringency mixes (Figures 3 and 5-7).
DEFAULT_T_VALUES: tuple[float, ...] = (100.0, 90.0, 80.0, 70.0, 50.0, 20.0, 0.0)

#: Figure 5 / 7(b) x-axis: average node-to-node delay in milliseconds.
DEFAULT_COMM_DELAYS: tuple[float, ...] = (0.0, 25.0, 50.0, 75.0, 100.0, 125.0)

#: Figure 6 / 7(c) x-axis: per-dependent computational delay in ms.
DEFAULT_COMP_DELAYS: tuple[float, ...] = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0)

#: Figure 9: LeLA's P% admission-band values.
DEFAULT_P_VALUES: tuple[float, ...] = (1.0, 5.0, 10.0, 25.0)

#: Ablation sweep around the paper's Eq. (2) footnote values (f=50, 100).
DEFAULT_F_VALUES: tuple[float, ...] = (10.0, 25.0, 50.0, 75.0, 100.0, 200.0)

#: Pull-baseline fixed TTRs to sweep, in seconds.
DEFAULT_TTRS: tuple[float, ...] = (2.0, 10.0, 30.0)

#: Hybrid push/pull threshold sweep across the paper's tolerance bands.
DEFAULT_THRESHOLDS: tuple[float, ...] = (0.005, 0.05, 0.1, 0.5, 1.0)


def default_degrees(n_repositories: int) -> list[int]:
    """A log-ish degree-of-cooperation sweep from a chain to full fan-out."""
    candidates = [1, 2, 3, 5, 8, 12, 20, 35, 60, 100]
    degrees = [d for d in candidates if d < n_repositories]
    degrees.append(n_repositories)
    return degrees


def default_intensities(n_repositories: int) -> list[int]:
    """Churn intensities (events per kind) that fit the repository pool."""
    cap = max(1, n_repositories // 4)
    return [k for k in (0, 1, 2, 4, 8) if k <= cap]

"""Terminal line charts for experiment results.

The paper's figures are line plots; this renders an
:class:`~repro.experiments.runner.ExperimentResult` as a fixed-size
character grid so the U-curves and L-curves are *visible* in a terminal
or CI log, without a plotting dependency.  Each series is drawn with its
own glyph; a legend maps glyphs to labels.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult

__all__ = ["render"]

_GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    """Map ``value`` in [lo, hi] onto 0..steps-1."""
    if hi <= lo:
        return 0
    ratio = (value - lo) / (hi - lo)
    idx = int(round(ratio * (steps - 1)))
    return min(max(idx, 0), steps - 1)


def render(result: ExperimentResult, width: int = 64, height: int = 16) -> str:
    """Render every series of ``result`` into one character chart.

    Args:
        result: The experiment's series (all aligned to ``result.xs``).
        width: Chart columns (excluding the y-axis gutter).
        height: Chart rows.

    Raises:
        ConfigurationError: on an empty result or undersized canvas.
    """
    if not result.series or not result.xs:
        raise ConfigurationError("cannot render an empty result")
    if width < 8 or height < 4:
        raise ConfigurationError(f"canvas too small: {width}x{height}")
    if len(result.series) > len(_GLYPHS):
        raise ConfigurationError(
            f"at most {len(_GLYPHS)} series supported, got {len(result.series)}"
        )

    xs = result.xs
    x_lo, x_hi = min(xs), max(xs)
    all_ys = [y for s in result.series for y in s.ys]
    y_lo, y_hi = min(all_ys), max(all_ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, series in zip(_GLYPHS, result.series):
        for x, y in zip(xs, series.ys):
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = glyph

    gutter = max(len(f"{y_hi:.3g}"), len(f"{y_lo:.3g}"))
    lines = [f"{result.name}  [y: {result.ylabel}]"]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:.3g}"
        elif i == height - 1:
            label = f"{y_lo:.3g}"
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(
        " " * gutter
        + f"  {x_lo:<.4g}"
        + " " * max(1, width - len(f"{x_lo:<.4g}") - len(f"{x_hi:.4g}") - 2)
        + f"{x_hi:.4g}  ({result.xlabel})"
    )
    legend = "   ".join(
        f"{glyph}={series.label}" for glyph, series in zip(_GLYPHS, result.series)
    )
    lines.append(legend)
    return "\n".join(lines)

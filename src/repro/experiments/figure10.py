"""Figure 10: sensitivity to the preference function (P1 vs. P2).

P1 is the paper's preference factor (communication delay x load proxy /
data availability); P2 drops the availability term.  The paper's
finding: the choice has little impact at small degrees, and once the
degree of cooperation is controlled (the ``W`` curves) the two are
indistinguishable (< ~1% apart) -- the degree of cooperation is the
first-order knob, LeLA's internals are second-order.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import default_degrees
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["SPEC", "run", "main"]

_ROWS = [
    (controlled, suffix, pref)
    for controlled, suffix in ((False, ""), (True, "W"))
    for pref in ("p1", "p2")
]


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config().with_(t_percent=ctx.params["t_percent"])
    degrees = ctx.params["degrees"]
    if degrees is None:
        degrees = tuple(default_degrees(base.n_repositories))
    return base, degrees


def _plan(ctx: api.ExperimentContext):
    base, degrees = _grid(ctx)
    return tuple(
        base.with_(
            preference=pref,
            offered_degree=d,
            policy=ctx.params["policy"],
            controlled_cooperation=controlled,
        )
        for controlled, _suffix, pref in _ROWS
        for d in degrees
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, degrees = _grid(ctx)
    result = ExperimentResult(
        name="Figure 10: effect of different preference functions",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, (_controlled, suffix, pref) in enumerate(_ROWS):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"{pref.upper()}{suffix}", ys=ys))
    return result


SPEC = api.register(api.ExperimentSpec(
    name="figure10",
    description=(
        "The LeLA preference function (P1 vs P2) is secondary once the "
        "degree of cooperation is controlled."
    ),
    params=(
        api.ParamSpec("degrees", "ints", None,
                      "degree sweep (default: derived from the preset)"),
        api.ParamSpec("t_percent", "float", 80.0,
                      "coherency-stringency mix (T%)"),
        api.ParamSpec("policy", "str", "centralized",
                      "dissemination policy"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    degrees: list[int] | None = None,
    t_percent: float = 80.0,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep degree for P1/P2, plain and controlled."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(degrees=degrees, t_percent=t_percent, policy=policy),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 10: sensitivity to the preference function (P1 vs. P2).

P1 is the paper's preference factor (communication delay x load proxy /
data availability); P2 drops the availability term.  The paper's
finding: the choice has little impact at small degrees, and once the
degree of cooperation is controlled (the ``W`` curves) the two are
indistinguishable (< ~1% apart) -- the degree of cooperation is the
first-order knob, LeLA's internals are second-order.
"""

from __future__ import annotations

from repro.experiments.figure3 import default_degrees
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["run", "main"]


def run(
    preset: str = "small",
    degrees: list[int] | None = None,
    t_percent: float = 80.0,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep degree for P1/P2, plain and controlled."""
    base = preset_config(preset, t_percent=t_percent, **overrides)
    if degrees is None:
        degrees = default_degrees(base.n_repositories)
    result = ExperimentResult(
        name="Figure 10: effect of different preference functions",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    rows = [
        (controlled, suffix, pref)
        for controlled, suffix in ((False, ""), (True, "W"))
        for pref in ("p1", "p2")
    ]
    configs = [
        base.with_(
            preference=pref,
            offered_degree=d,
            policy=policy,
            controlled_cooperation=controlled,
        )
        for controlled, _suffix, pref in rows
        for d in degrees
    ]
    losses, _ = sweep(configs, jobs=jobs)
    for row, (_controlled, suffix, pref) in enumerate(rows):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"{pref.upper()}{suffix}", ys=ys))
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

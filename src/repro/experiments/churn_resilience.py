"""Churn resilience: fidelity vs. mid-run churn intensity, per policy.

The paper's evaluation is static: the repository set and every coherency
requirement are fixed before the first update flows.  This experiment
asks the production question Section 4 implies -- *what does fidelity
cost when the membership changes while updates are in flight?*  For each
churn intensity ``k`` a synthetic schedule with ``k`` late joins, ``k``
departures and ``k`` coherency changes (one seeded schedule, shared by
every policy so curves stay comparable) is executed mid-run, and the
loss of fidelity of the two exact dissemination policies is plotted
against the number of churn events.

The expected shape: both exact policies degrade gracefully -- each
reconfiguration costs a burst of resubscriptions (reported in the
notes) and a brief staleness window for rewired subtrees, but fidelity
does not collapse, because the algorithm is reapplied rather than left
to rot.
"""

from __future__ import annotations

from repro.engine.churn import schedule_for_config
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    preset_config,
    report,
    sweep,
)

__all__ = ["run", "main", "default_intensities"]

POLICIES = ("distributed", "centralized")


def default_intensities(n_repositories: int) -> list[int]:
    """Churn intensities (events per kind) that fit the repository pool."""
    cap = max(1, n_repositories // 4)
    return [k for k in (0, 1, 2, 4, 8) if k <= cap]


def run(
    preset: str = "small",
    intensities: list[int] | None = None,
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep churn intensity for each exact dissemination policy."""
    base = preset_config(preset, **overrides)
    if intensities is None:
        intensities = default_intensities(base.n_repositories)
    schedules = {
        k: schedule_for_config(base, joins=k, departs=k, updates=k)
        for k in intensities
    }
    result = ExperimentResult(
        name="Churn resilience: fidelity under mid-run membership dynamics",
        xlabel="churn events per run",
        ylabel="loss of fidelity (%)",
        xs=[float(len(schedules[k])) for k in intensities],
    )
    configs = [
        base.with_(policy=policy, churn=schedules[k])
        for policy in POLICIES
        for k in intensities
    ]
    losses, runs = sweep(configs, jobs=jobs)
    n = len(intensities)
    for i, policy in enumerate(POLICIES):
        result.series.append(Series(label=policy, ys=losses[i * n : (i + 1) * n]))

    worst = runs[n - 1]  # distributed policy at the highest intensity
    result.notes["reconfiguration cost (distributed, max churn)"] = (
        worst.reconfiguration_cost
    )
    result.notes["reconfiguration drops (distributed, max churn)"] = (
        worst.counters.drops
    )
    result.notes["final members (distributed, max churn)"] = worst.extras.get(
        "final_members"
    )
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

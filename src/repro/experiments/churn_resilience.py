"""Churn resilience: fidelity vs. mid-run churn intensity, per policy.

The paper's evaluation is static: the repository set and every coherency
requirement are fixed before the first update flows.  This experiment
asks the production question Section 4 implies -- *what does fidelity
cost when the membership changes while updates are in flight?*  For each
churn intensity ``k`` a synthetic schedule with ``k`` late joins, ``k``
departures and ``k`` coherency changes (one seeded schedule, shared by
every policy so curves stay comparable) is executed mid-run, and the
loss of fidelity of the two exact dissemination policies is plotted
against the number of churn events.

The expected shape: both exact policies degrade gracefully -- each
reconfiguration costs a burst of resubscriptions (reported in the
notes) and a brief staleness window for rewired subtrees, but fidelity
does not collapse, because the algorithm is reapplied rather than left
to rot.
"""

from __future__ import annotations

from repro.engine.churn import schedule_for_config
from repro.experiments import api
from repro.experiments.defaults import default_intensities
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["SPEC", "run", "main", "default_intensities"]

POLICIES = ("distributed", "centralized")


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config()
    intensities = ctx.params["intensities"]
    if intensities is None:
        intensities = tuple(default_intensities(base.n_repositories))
    schedules = {
        k: schedule_for_config(base, joins=k, departs=k, updates=k)
        for k in intensities
    }
    return base, intensities, schedules


def _plan(ctx: api.ExperimentContext):
    base, intensities, schedules = _grid(ctx)
    return tuple(
        base.with_(policy=policy, churn=schedules[k])
        for policy in POLICIES
        for k in intensities
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, intensities, schedules = _grid(ctx)
    result = ExperimentResult(
        name="Churn resilience: fidelity under mid-run membership dynamics",
        xlabel="churn events per run",
        ylabel="loss of fidelity (%)",
        xs=[float(len(schedules[k])) for k in intensities],
    )
    losses = [r.loss_of_fidelity for r in results]
    n = len(intensities)
    for i, policy in enumerate(POLICIES):
        result.series.append(Series(label=policy, ys=losses[i * n : (i + 1) * n]))

    worst = results[n - 1]  # distributed policy at the highest intensity
    result.notes["reconfiguration cost (distributed, max churn)"] = (
        worst.reconfiguration_cost
    )
    result.notes["reconfiguration drops (distributed, max churn)"] = (
        worst.counters.drops
    )
    result.notes["final members (distributed, max churn)"] = worst.extras.get(
        "final_members"
    )
    return result


SPEC = api.register(api.ExperimentSpec(
    name="churn_resilience",
    description=(
        "Both exact policies degrade gracefully under mid-run membership "
        "churn; reconfiguration costs bursts, not collapse."
    ),
    params=(
        api.ParamSpec("intensities", "ints", None,
                      "churn events per kind (default: derived from preset)"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    intensities: list[int] | None = None,
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep churn intensity for each exact dissemination policy."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(intensities=intensities),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

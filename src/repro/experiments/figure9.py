"""Figure 9: sensitivity to the load controller's P% admission band.

LeLA admits as parents every candidate whose preference factor is within
P% of the level minimum.  The paper sweeps P over {1, 5, 10, 25} with
unlimited cooperation (plain curves) and with controlled cooperation
(the ``W`` curves):

- tiny P concentrates all service on one parent per level (overload);
- huge P splits a child across many parents, burning push connections
  and deepening the tree;
- once the degree of cooperation is controlled, P stops mattering.
"""

from __future__ import annotations

from repro.experiments.figure3 import default_degrees
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["DEFAULT_P_VALUES", "run", "main"]

#: The paper's P% values.
DEFAULT_P_VALUES: tuple[float, ...] = (1.0, 5.0, 10.0, 25.0)


def run(
    preset: str = "small",
    p_values: tuple[float, ...] = DEFAULT_P_VALUES,
    degrees: list[int] | None = None,
    t_percent: float = 80.0,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep (P%, degree), with and without controlled cooperation."""
    base = preset_config(preset, t_percent=t_percent, **overrides)
    if degrees is None:
        degrees = default_degrees(base.n_repositories)
    result = ExperimentResult(
        name="Figure 9: effect of different P% values",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    rows = [
        (controlled, suffix, p)
        for controlled, suffix in ((False, ""), (True, "W"))
        for p in p_values
    ]
    configs = [
        base.with_(
            p_percent=p,
            offered_degree=d,
            policy=policy,
            controlled_cooperation=controlled,
        )
        for controlled, _suffix, p in rows
        for d in degrees
    ]
    losses, _ = sweep(configs, jobs=jobs)
    for row, (_controlled, suffix, p) in enumerate(rows):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"P={p:.0f}{suffix}", ys=ys))
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 9: sensitivity to the load controller's P% admission band.

LeLA admits as parents every candidate whose preference factor is within
P% of the level minimum.  The paper sweeps P over {1, 5, 10, 25} with
unlimited cooperation (plain curves) and with controlled cooperation
(the ``W`` curves):

- tiny P concentrates all service on one parent per level (overload);
- huge P splits a child across many parents, burning push connections
  and deepening the tree;
- once the degree of cooperation is controlled, P stops mattering.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import DEFAULT_P_VALUES, default_degrees
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["DEFAULT_P_VALUES", "SPEC", "run", "main"]


def _grid(ctx: api.ExperimentContext):
    base = ctx.base_config().with_(t_percent=ctx.params["t_percent"])
    degrees = ctx.params["degrees"]
    if degrees is None:
        degrees = tuple(default_degrees(base.n_repositories))
    rows = [
        (controlled, suffix, p)
        for controlled, suffix in ((False, ""), (True, "W"))
        for p in ctx.params["p_values"]
    ]
    return base, degrees, rows


def _plan(ctx: api.ExperimentContext):
    base, degrees, rows = _grid(ctx)
    return tuple(
        base.with_(
            p_percent=p,
            offered_degree=d,
            policy=ctx.params["policy"],
            controlled_cooperation=controlled,
        )
        for controlled, _suffix, p in rows
        for d in degrees
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    _base, degrees, rows = _grid(ctx)
    result = ExperimentResult(
        name="Figure 9: effect of different P% values",
        xlabel="degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, (_controlled, suffix, p) in enumerate(rows):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"P={p:.0f}{suffix}", ys=ys))
    return result


SPEC = api.register(api.ExperimentSpec(
    name="figure9",
    description=(
        "LeLA's P% admission band is secondary once the degree of "
        "cooperation is controlled."
    ),
    params=(
        api.ParamSpec("p_values", "floats", DEFAULT_P_VALUES,
                      "admission-band percentages to sweep"),
        api.ParamSpec("degrees", "ints", None,
                      "degree sweep (default: derived from the preset)"),
        api.ParamSpec("t_percent", "float", 80.0,
                      "coherency-stringency mix (T%)"),
        api.ParamSpec("policy", "str", "centralized",
                      "dissemination policy"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    p_values: tuple[float, ...] = DEFAULT_P_VALUES,
    degrees: list[int] | None = None,
    t_percent: float = 80.0,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep (P%, degree), with and without controlled cooperation."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(
            p_values=p_values, degrees=degrees, t_percent=t_percent,
            policy=policy,
        ),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

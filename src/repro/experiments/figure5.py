"""Figure 5: no cooperation, varying communication delays.

The source serves every repository directly (degree of cooperation =
repository count).  The mean repository-to-repository delay is swept from
0 to 125 ms.  The paper's finding: fidelity barely reacts to the
communication delay because the loss is dominated by the computational
queueing that piles up at the source -- cooperation is needed regardless
of network speed.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import DEFAULT_COMM_DELAYS, DEFAULT_T_VALUES
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["DEFAULT_COMM_DELAYS", "SPEC", "run", "main"]


def _plan(ctx: api.ExperimentContext):
    base = ctx.base_config()
    return tuple(
        base.with_(
            t_percent=t,
            offered_degree=base.n_repositories,
            comm_target_ms=delay,
            policy=ctx.params["policy"],
            controlled_cooperation=False,
        )
        for t in ctx.params["t_values"]
        for delay in ctx.params["comm_delays_ms"]
    )


def _collect(ctx: api.ExperimentContext, results) -> ExperimentResult:
    t_values = ctx.params["t_values"]
    comm_delays_ms = ctx.params["comm_delays_ms"]
    result = ExperimentResult(
        name="Figure 5: no cooperation, varying communication delays",
        xlabel="mean comm delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comm_delays_ms),
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, t in enumerate(t_values):
        ys = losses[row * len(comm_delays_ms):(row + 1) * len(comm_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    return result


SPEC = api.register(api.ExperimentSpec(
    name="figure5",
    description=(
        "Without cooperation, faster networks do not rescue fidelity: "
        "the loss is computation-dominated at the source."
    ),
    params=(
        api.ParamSpec("t_values", "floats", DEFAULT_T_VALUES,
                      "coherency-stringency mixes (T%)"),
        api.ParamSpec("comm_delays_ms", "floats", DEFAULT_COMM_DELAYS,
                      "target mean repo-to-repo delays (ms)"),
        api.ParamSpec("policy", "str", "centralized",
                      "dissemination policy for the baseline"),
    ),
    plan=_plan,
    collect=_collect,
    render=report,
))


def run(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comm_delays_ms: tuple[float, ...] = DEFAULT_COMM_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Sweep (T, mean comm delay) with the source serving everyone."""
    return api.run_experiment(
        SPEC.name,
        preset=preset,
        jobs=jobs,
        cache=cache,
        params=dict(
            t_values=t_values, comm_delays_ms=comm_delays_ms, policy=policy
        ),
        overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = SPEC.render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 5: no cooperation, varying communication delays.

The source serves every repository directly (degree of cooperation =
repository count).  The mean repository-to-repository delay is swept from
0 to 125 ms.  The paper's finding: fidelity barely reacts to the
communication delay because the loss is dominated by the computational
queueing that piles up at the source -- cooperation is needed regardless
of network speed.
"""

from __future__ import annotations

from repro.experiments.figure3 import DEFAULT_T_VALUES
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["DEFAULT_COMM_DELAYS", "run", "main"]

#: The paper's x-axis: average node-to-node delay in milliseconds.
DEFAULT_COMM_DELAYS: tuple[float, ...] = (0.0, 25.0, 50.0, 75.0, 100.0, 125.0)


def run(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comm_delays_ms: tuple[float, ...] = DEFAULT_COMM_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Sweep (T, mean comm delay) with the source serving everyone."""
    base = preset_config(preset, **overrides)
    no_coop_degree = base.n_repositories
    result = ExperimentResult(
        name="Figure 5: no cooperation, varying communication delays",
        xlabel="mean comm delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comm_delays_ms),
    )
    configs = [
        base.with_(
            t_percent=t,
            offered_degree=no_coop_degree,
            comm_target_ms=delay,
            policy=policy,
            controlled_cooperation=False,
        )
        for t in t_values
        for delay in comm_delays_ms
    ]
    losses, _ = sweep(configs, jobs=jobs)
    for row, t in enumerate(t_values):
        ys = losses[row * len(comm_delays_ms):(row + 1) * len(comm_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    return result


def main(preset: str = "small", **overrides) -> str:
    text = report(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 7: performance with controlled cooperation.

Three panels:

- (a) the Figure 3 sweep repeated with Eq. (2) clamping each node's
  degree of cooperation: the U-curve becomes an L -- offering more
  cooperative resources beyond ``coopDegree`` neither helps nor hurts.
- (b) communication-delay sweep with controlled cooperation: Eq. (2)
  raises the degree as delays grow, keeping loss within a few percent
  (contrast Figure 5).
- (c) computational-delay sweep with controlled cooperation: Eq. (2)
  lowers the degree as computation gets pricier, again keeping loss low
  (contrast Figure 6).

All three panels plan through one grid, so the registry runner fans the
whole figure out (and caches it) as a single sweep.
"""

from __future__ import annotations

from repro.experiments import api
from repro.experiments.defaults import (
    DEFAULT_COMM_DELAYS,
    DEFAULT_COMP_DELAYS,
    DEFAULT_T_VALUES,
    default_degrees,
)
from repro.experiments.runner import ExperimentResult, Series, report

__all__ = ["SPEC", "run_base_case", "run_comm_sweep", "run_comp_sweep", "run", "main"]


def _degrees(ctx: api.ExperimentContext, base) -> tuple[int, ...]:
    degrees = ctx.params["degrees"]
    if degrees is None:
        degrees = tuple(default_degrees(base.n_repositories))
    return degrees


def _plan_base_case(ctx: api.ExperimentContext):
    base = ctx.base_config()
    return tuple(
        base.with_(t_percent=t, offered_degree=d, policy=ctx.params["policy"],
                   controlled_cooperation=True)
        for t in ctx.params["t_values"]
        for d in _degrees(ctx, base)
    )


def _collect_base_case(ctx: api.ExperimentContext, results) -> ExperimentResult:
    base = ctx.base_config()
    degrees = _degrees(ctx, base)
    t_values = ctx.params["t_values"]
    result = ExperimentResult(
        name="Figure 7(a): controlled cooperation, base case",
        xlabel="offered degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, t in enumerate(t_values):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    result.notes["coopDegree (Eq. 2 clamp at max offered)"] = (
        results[-1].effective_degree if results else None
    )
    return result


def _plan_comm_sweep(ctx: api.ExperimentContext):
    base = ctx.base_config()
    return tuple(
        base.with_(
            t_percent=t,
            offered_degree=base.n_repositories,
            comm_target_ms=delay,
            policy=ctx.params["policy"],
            controlled_cooperation=True,
        )
        for t in ctx.params["t_values"]
        for delay in ctx.params["comm_delays_ms"]
    )


def _collect_comm_sweep(ctx: api.ExperimentContext, results) -> ExperimentResult:
    t_values = ctx.params["t_values"]
    comm_delays_ms = ctx.params["comm_delays_ms"]
    result = ExperimentResult(
        name="Figure 7(b): controlled cooperation, varying communication delays",
        xlabel="mean comm delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comm_delays_ms),
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, t in enumerate(t_values):
        ys = losses[row * len(comm_delays_ms):(row + 1) * len(comm_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    result.notes["Eq. (2) degrees along the sweep"] = [
        r.effective_degree for r in results[-len(comm_delays_ms):]
    ]
    return result


def _plan_comp_sweep(ctx: api.ExperimentContext):
    base = ctx.base_config()
    return tuple(
        base.with_(
            t_percent=t,
            offered_degree=base.n_repositories,
            comp_delay_ms=delay,
            policy=ctx.params["policy"],
            controlled_cooperation=True,
        )
        for t in ctx.params["t_values"]
        for delay in ctx.params["comp_delays_ms"]
    )


def _collect_comp_sweep(ctx: api.ExperimentContext, results) -> ExperimentResult:
    t_values = ctx.params["t_values"]
    comp_delays_ms = ctx.params["comp_delays_ms"]
    result = ExperimentResult(
        name="Figure 7(c): controlled cooperation, varying computational delays",
        xlabel="comp delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comp_delays_ms),
    )
    losses = [r.loss_of_fidelity for r in results]
    for row, t in enumerate(t_values):
        ys = losses[row * len(comp_delays_ms):(row + 1) * len(comp_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    result.notes["Eq. (2) degrees along the sweep"] = [
        r.effective_degree for r in results[-len(comp_delays_ms):]
    ]
    return result


_PANELS = (
    (_plan_base_case, _collect_base_case),
    (_plan_comm_sweep, _collect_comm_sweep),
    (_plan_comp_sweep, _collect_comp_sweep),
)


def _plan(ctx: api.ExperimentContext):
    return tuple(
        config for plan_panel, _collect in _PANELS for config in plan_panel(ctx)
    )


def _collect(ctx: api.ExperimentContext, results) -> list[ExperimentResult]:
    panels: list[ExperimentResult] = []
    offset = 0
    for plan_panel, collect_panel in _PANELS:
        n = len(plan_panel(ctx))
        panels.append(collect_panel(ctx, results[offset:offset + n]))
        offset += n
    return panels


def _render(panels: list[ExperimentResult]) -> str:
    return "\n\n".join(report(panel) for panel in panels)


_PARAMS = (
    api.ParamSpec("t_values", "floats", DEFAULT_T_VALUES,
                  "coherency-stringency mixes (T%)"),
    api.ParamSpec("degrees", "ints", None,
                  "panel (a) degree sweep (default: derived from preset)"),
    api.ParamSpec("comm_delays_ms", "floats", DEFAULT_COMM_DELAYS,
                  "panel (b) target mean repo-to-repo delays (ms)"),
    api.ParamSpec("comp_delays_ms", "floats", DEFAULT_COMP_DELAYS,
                  "panel (c) per-dependent computational delays (ms)"),
    api.ParamSpec("policy", "str", "centralized",
                  "dissemination policy under Eq. (2) control"),
)

SPEC = api.register(api.ExperimentSpec(
    name="figure7",
    description=(
        "Controlled cooperation (Eq. 2) turns the U-curve into an L and "
        "keeps loss low across communication and computational delays."
    ),
    params=_PARAMS,
    plan=_plan,
    collect=_collect,
    render=_render,
))


def _run_panel(
    panel: int,
    preset: str,
    jobs: int | None,
    cache: api.ResultCache | None,
    params: dict,
    overrides: dict,
) -> ExperimentResult:
    ctx = api.ExperimentContext(
        preset=preset,
        params=SPEC.resolve_params(params),
        jobs=jobs,
        cache=cache,
        overrides=overrides,
    )
    plan_panel, collect_panel = _PANELS[panel]
    results = api.execute_plan(plan_panel(ctx), jobs=jobs, cache=cache)
    return collect_panel(ctx, tuple(results))


def run_base_case(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    degrees: list[int] | None = None,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Panel (a): offered-resources sweep under Eq. (2) clamping."""
    return _run_panel(
        0, preset, jobs, cache,
        dict(t_values=t_values, degrees=degrees, policy=policy), overrides,
    )


def run_comm_sweep(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comm_delays_ms: tuple[float, ...] = DEFAULT_COMM_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Panel (b): comm-delay sweep, degree adapted by Eq. (2)."""
    return _run_panel(
        1, preset, jobs, cache,
        dict(t_values=t_values, comm_delays_ms=comm_delays_ms, policy=policy),
        overrides,
    )


def run_comp_sweep(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comp_delays_ms: tuple[float, ...] = DEFAULT_COMP_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> ExperimentResult:
    """Panel (c): comp-delay sweep, degree adapted by Eq. (2)."""
    return _run_panel(
        2, preset, jobs, cache,
        dict(t_values=t_values, comp_delays_ms=comp_delays_ms, policy=policy),
        overrides,
    )


def run(
    preset: str = "small",
    jobs: int | None = 1,
    cache: api.ResultCache | None = None,
    **overrides,
) -> list[ExperimentResult]:
    """All three panels through one planned grid."""
    params = {
        p.name: overrides.pop(p.name) for p in _PARAMS if p.name in overrides
    }
    return api.run_experiment(
        SPEC.name, preset=preset, jobs=jobs, cache=cache,
        params=params, overrides=overrides,
    )


def main(preset: str = "small", **overrides) -> str:
    text = _render(run(preset=preset, **overrides))
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 7: performance with controlled cooperation.

Three panels:

- (a) the Figure 3 sweep repeated with Eq. (2) clamping each node's
  degree of cooperation: the U-curve becomes an L -- offering more
  cooperative resources beyond ``coopDegree`` neither helps nor hurts.
- (b) communication-delay sweep with controlled cooperation: Eq. (2)
  raises the degree as delays grow, keeping loss within a few percent
  (contrast Figure 5).
- (c) computational-delay sweep with controlled cooperation: Eq. (2)
  lowers the degree as computation gets pricier, again keeping loss low
  (contrast Figure 6).
"""

from __future__ import annotations

from repro.experiments.figure3 import DEFAULT_T_VALUES, default_degrees
from repro.experiments.figure5 import DEFAULT_COMM_DELAYS
from repro.experiments.figure6 import DEFAULT_COMP_DELAYS
from repro.experiments.runner import ExperimentResult, Series, preset_config, report, sweep

__all__ = ["run_base_case", "run_comm_sweep", "run_comp_sweep", "run", "main"]


def run_base_case(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    degrees: list[int] | None = None,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Panel (a): offered-resources sweep under Eq. (2) clamping."""
    base = preset_config(preset, **overrides)
    if degrees is None:
        degrees = default_degrees(base.n_repositories)
    result = ExperimentResult(
        name="Figure 7(a): controlled cooperation, base case",
        xlabel="offered degree of cooperation",
        ylabel="loss of fidelity (%)",
        xs=[float(d) for d in degrees],
    )
    configs = [
        base.with_(t_percent=t, offered_degree=d, policy=policy,
                   controlled_cooperation=True)
        for t in t_values
        for d in degrees
    ]
    losses, runs = sweep(configs, jobs=jobs)
    for row, t in enumerate(t_values):
        ys = losses[row * len(degrees):(row + 1) * len(degrees)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    result.notes["coopDegree (Eq. 2 clamp at max offered)"] = (
        runs[-1].effective_degree if runs else None
    )
    return result


def run_comm_sweep(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comm_delays_ms: tuple[float, ...] = DEFAULT_COMM_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Panel (b): comm-delay sweep, degree adapted by Eq. (2)."""
    base = preset_config(preset, **overrides)
    result = ExperimentResult(
        name="Figure 7(b): controlled cooperation, varying communication delays",
        xlabel="mean comm delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comm_delays_ms),
    )
    configs = [
        base.with_(
            t_percent=t,
            offered_degree=base.n_repositories,
            comm_target_ms=delay,
            policy=policy,
            controlled_cooperation=True,
        )
        for t in t_values
        for delay in comm_delays_ms
    ]
    losses, runs = sweep(configs, jobs=jobs)
    for row, t in enumerate(t_values):
        ys = losses[row * len(comm_delays_ms):(row + 1) * len(comm_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    result.notes["Eq. (2) degrees along the sweep"] = [
        r.effective_degree for r in runs[-len(comm_delays_ms):]
    ]
    return result


def run_comp_sweep(
    preset: str = "small",
    t_values: tuple[float, ...] = DEFAULT_T_VALUES,
    comp_delays_ms: tuple[float, ...] = DEFAULT_COMP_DELAYS,
    policy: str = "centralized",
    jobs: int | None = 1,
    **overrides,
) -> ExperimentResult:
    """Panel (c): comp-delay sweep, degree adapted by Eq. (2)."""
    base = preset_config(preset, **overrides)
    result = ExperimentResult(
        name="Figure 7(c): controlled cooperation, varying computational delays",
        xlabel="comp delay (ms)",
        ylabel="loss of fidelity (%)",
        xs=list(comp_delays_ms),
    )
    configs = [
        base.with_(
            t_percent=t,
            offered_degree=base.n_repositories,
            comp_delay_ms=delay,
            policy=policy,
            controlled_cooperation=True,
        )
        for t in t_values
        for delay in comp_delays_ms
    ]
    losses, runs = sweep(configs, jobs=jobs)
    for row, t in enumerate(t_values):
        ys = losses[row * len(comp_delays_ms):(row + 1) * len(comp_delays_ms)]
        result.series.append(Series(label=f"T={t:.0f}", ys=ys))
    result.notes["Eq. (2) degrees along the sweep"] = [
        r.effective_degree for r in runs[-len(comp_delays_ms):]
    ]
    return result


def run(preset: str = "small", **overrides) -> list[ExperimentResult]:
    """All three panels."""
    return [
        run_base_case(preset=preset, **overrides),
        run_comm_sweep(preset=preset, **overrides),
        run_comp_sweep(preset=preset, **overrides),
    ]


def main(preset: str = "small", **overrides) -> str:
    texts = [report(r) for r in run(preset=preset, **overrides)]
    text = "\n\n".join(texts)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Experiment harness: one module per table/figure in the paper.

Every module exposes ``run(preset=..., **overrides) -> ExperimentResult``
returning the same rows/series the paper plots, and a ``main()`` that
prints them as an ASCII table.  DESIGN.md §3 maps each experiment id to
its module; EXPERIMENTS.md records paper-vs-measured numbers.

Run everything from the command line::

    python -m repro.experiments.run_all --preset small
"""

from repro.experiments.runner import (
    ExperimentResult,
    Series,
    format_result,
    report,
    sweep,
)

__all__ = ["ExperimentResult", "Series", "format_result", "report", "sweep"]

"""Experiment harness: a declarative registry of the paper's artefacts.

Every table/figure (and every system extension) is an
:class:`~repro.experiments.api.ExperimentSpec` registered in
:mod:`repro.experiments.api`: a typed parameter schema, a ``plan()``
yielding its frozen :class:`~repro.engine.config.SimulationConfig` grid
and a ``collect()`` reducing raw results into the experiment's payload.
The unified runner executes the union of all requested plans through one
deduplicated sweep fan-out with a content-addressed result cache
(:mod:`repro.experiments.cache`), so shared points are simulated once
and warm reruns skip simulation entirely.

Each module still exposes its historical ``run(preset=..., **overrides)``
and printing ``main()``.  Run everything from the command line::

    python -m repro experiments list
    python -m repro experiments run figure3 figure8 --preset tiny --jobs 4
    python -m repro.experiments.run_all --preset small
"""

from repro.experiments.runner import (
    ExperimentResult,
    Series,
    format_result,
    report,
    sweep,
)

__all__ = ["ExperimentResult", "Series", "format_result", "report", "sweep"]

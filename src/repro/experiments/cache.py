"""Content-addressed result cache for the experiment execution plane.

Every sweep point in the reproduction is fully determined by its
:class:`~repro.engine.config.SimulationConfig` (the PR-1 contract the
parallel sweep subsystem rests on), so a simulation result can be stored
and recalled by a *content hash* of the config alone.  This module
provides the two halves of that idea:

- :func:`fingerprint` -- a canonical, **process-stable** digest of any
  value tree built from the primitives configs are made of (dataclasses,
  tuples, dicts, numpy arrays, scalars).  Python's builtin ``hash`` is
  randomised per process for strings, so it cannot key an on-disk cache;
  the fingerprint serialises the value canonically and hashes the bytes
  with SHA-256 instead, making keys stable across processes, machines
  and Python versions.
- :class:`ResultCache` -- a directory-backed pickle store mapping
  fingerprints to result objects, with hit/miss/write counters so the
  unified runner (and the cache benchmark) can assert how much work a
  run actually skipped.

Cache entries live under ``<root>/<schema-version>/``; bumping
:data:`CACHE_SCHEMA_VERSION` orphans old entries wholesale, which is the
intended invalidation story when result shapes change.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "fingerprint",
    "CacheStats",
    "ResultCache",
    "cached_compute",
    "default_cache_root",
]

#: Bump when cached result shapes change incompatibly; old entries are
#: simply never looked at again (they live under the old version dir).
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISS = object()


def default_cache_root() -> Path:
    """The default on-disk cache location.

    ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _serialize(obj: Any, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    Every branch writes a distinct type tag, so values of different
    types (or differently-shaped trees) can never collide structurally.
    """
    if obj is None:
        out.append(b"N;")
    elif obj is True:
        out.append(b"T;")
    elif obj is False:
        out.append(b"F;")
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        # float.hex is exact (round-trips the bits) and canonical,
        # unlike repr across NaN payloads or historic Python versions.
        out.append(b"f" + obj.hex().encode() + b";")
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        out.append(b"s%d:" % len(encoded))
        out.append(encoded)
    elif isinstance(obj, bytes):
        out.append(b"b%d:" % len(obj))
        out.append(obj)
    elif isinstance(obj, np.ndarray):
        canonical = np.ascontiguousarray(obj)
        out.append(
            b"a" + str(canonical.dtype).encode() + b"|"
            + str(canonical.shape).encode() + b":"
        )
        out.append(canonical.tobytes())
    elif isinstance(obj, np.generic):
        _serialize(obj.item(), out)
    elif isinstance(obj, (tuple, list)):
        out.append(b"(%d:" % len(obj))
        for item in obj:
            _serialize(item, out)
        out.append(b")")
    elif isinstance(obj, (dict,)):
        keys = sorted(obj, key=repr)
        out.append(b"{%d:" % len(obj))
        for key in keys:
            _serialize(key, out)
            _serialize(obj[key], out)
        out.append(b"}")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"<%d:" % len(obj))
        for item in sorted(obj, key=repr):
            _serialize(item, out)
        out.append(b">")
    elif isinstance(obj, Path):
        _serialize(str(obj), out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        tag = f"{cls.__module__}.{cls.__qualname__}"
        fields = dataclasses.fields(obj)
        out.append(b"D" + tag.encode() + b"|%d:" % len(fields))
        for f in fields:
            _serialize(f.name, out)
            _serialize(getattr(obj, f.name), out)
        out.append(b";")
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__module__}.{type(obj).__qualname__}; "
            "cache keys must be built from dataclasses, containers and scalars"
        )


def fingerprint(obj: Any) -> str:
    """Canonical SHA-256 content digest of a value tree.

    Stable across processes and machines: equal values always produce
    equal digests, and (unlike pickles or ``repr``) the encoding is
    canonical -- dict ordering, numpy memory layout and float formatting
    cannot perturb it.

    Raises:
        TypeError: for objects outside the canonical vocabulary
            (anything that is not a dataclass, container or scalar).
    """
    chunks: list[bytes] = []
    _serialize(obj, chunks)
    return hashlib.sha256(b"".join(chunks)).hexdigest()


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.writes)


@dataclass
class ResultCache:
    """Directory-backed content-addressed store of experiment results.

    Values are pickled; keys are :func:`fingerprint` digests of the
    *inputs* that produced the value (typically a tagged tuple such as
    ``("sim", config)``).  Corrupt or unreadable entries are treated as
    misses, never as errors -- the cache is always allowed to fall back
    to recomputation.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, digest: str) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}" / digest[:2] / f"{digest}.pkl"

    def get(self, key: Any, default: Any = None) -> Any:
        """Look up the cached value for ``key``; count a hit or miss."""
        path = self._path(fingerprint(key))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError):
            # Unreadable, truncated, or pickled against a vanished class
            # -- all recoverable by recomputation, per the class contract.
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def contains(self, key: Any) -> bool:
        """Whether ``key`` has a stored value (no counters touched)."""
        return self._path(fingerprint(key)).exists()

    def put(self, key: Any, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic rename, last write wins)."""
        path = self._path(fingerprint(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stats.writes += 1

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        value = self.get(key, _MISS)
        if value is _MISS:
            value = compute()
            self.put(key, value)
        return value


def cached_compute(cache: ResultCache | None, key: Any, compute: Callable[[], Any]) -> Any:
    """``cache.get_or_compute`` that tolerates a disabled (``None``) cache."""
    if cache is None:
        return compute()
    return cache.get_or_compute(key, compute)

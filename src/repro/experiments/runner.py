"""Shared sweep machinery and ASCII reporting for all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.engine.config import SCALE_PRESETS, SimulationConfig
from repro.engine.results import SimulationResult
from repro.engine.sweep import run_sweep
from repro.errors import ConfigurationError
from repro.obs.logsetup import get_logger

log = get_logger("repro.experiments.runner")

__all__ = [
    "Series",
    "ExperimentResult",
    "sweep",
    "preset_config",
    "format_result",
]


@dataclass
class Series:
    """One plotted curve: a label and y-values aligned to the xs."""

    label: str
    ys: list[float]


@dataclass
class ExperimentResult:
    """All curves of one figure (or the rows of one table)."""

    name: str
    xlabel: str
    ylabel: str
    xs: list[float]
    series: list[Series] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        """Find a curve by its label.

        Raises:
            KeyError: if no curve carries the label.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.name}")


def preset_config(preset: str, **overrides) -> SimulationConfig:
    """Resolve a scale preset and apply overrides.

    Raises:
        ConfigurationError: on an unknown preset name.
    """
    try:
        base = SCALE_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {preset!r}; choose from {sorted(SCALE_PRESETS)}"
        ) from None
    return base.with_(**overrides) if overrides else base


def sweep(
    configs: Iterable[SimulationConfig],
    metric: Callable[[SimulationResult], float] = lambda r: r.loss_of_fidelity,
    jobs: int | None = 1,
) -> tuple[list[float], list[SimulationResult]]:
    """Run a sequence of configs, recycling setup pieces between runs.

    Args:
        configs: Sweep points, in output order.
        metric: Scalar extracted from each result for the curve.
        jobs: Worker processes (``1`` = serial in-process; ``None``/``0``
            = one per CPU).  Results are bit-identical for every value --
            see :mod:`repro.engine.sweep`.

    Returns:
        ``(metric values, full results)`` in input order.
    """
    configs = list(configs)
    log.debug("sweep: %d configs, jobs=%s", len(configs), jobs)
    results = run_sweep(configs, jobs=jobs)
    log.debug("sweep done: %d results", len(results))
    return [metric(r) for r in results], results


def report(result: ExperimentResult, chart: bool = True) -> str:
    """Format a result as a table plus (when sensible) an ASCII chart."""
    from repro.experiments.ascii_plot import render

    text = format_result(result)
    if chart and result.series and len(result.xs) > 1 and len(result.series) <= 8:
        text += "\n\n" + render(result)
    return text


def format_result(result: ExperimentResult, precision: int = 2) -> str:
    """Render an :class:`ExperimentResult` as an aligned ASCII table."""
    width = max(12, *(len(s.label) + 2 for s in result.series)) if result.series else 12
    xw = max(len(result.xlabel) + 2, 14)
    lines = [f"== {result.name} ==", f"y: {result.ylabel}"]
    header = f"{result.xlabel:<{xw}}" + "".join(
        f"{s.label:>{width}}" for s in result.series
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(result.xs):
        row = f"{x:<{xw}.6g}"
        for s in result.series:
            row += f"{s.ys[i]:>{width}.{precision}f}"
        lines.append(row)
    for key, value in result.notes.items():
        lines.append(f"note: {key} = {value}")
    return "\n".join(lines)

"""Run every experiment and print the paper-shaped outputs.

Usage::

    python -m repro.experiments.run_all --preset small
    python -m repro.experiments.run_all --preset tiny --only figure3 figure11
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    hybrid_tradeoff,
    pull_baseline,
    scalability,
    sensitivity,
    table1,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": lambda preset: table1.main(),
    "figure3": lambda preset: figure3.main(preset=preset),
    "figure5": lambda preset: figure5.main(preset=preset),
    "figure6": lambda preset: figure6.main(preset=preset),
    "figure7": lambda preset: figure7.main(preset=preset),
    "figure8": lambda preset: figure8.main(preset=preset),
    "figure9": lambda preset: figure9.main(preset=preset),
    "figure10": lambda preset: figure10.main(preset=preset),
    "figure11": lambda preset: figure11.main(preset=preset),
    "scalability": lambda preset: scalability.main(preset=preset),
    "sensitivity": lambda preset: sensitivity.main(preset=preset),
    "pull_baseline": lambda preset: pull_baseline.main(preset=preset),
    "hybrid_tradeoff": lambda preset: hybrid_tradeoff.main(preset=preset),
}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="small", help="tiny | small | paper")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run (choices: {sorted(EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)

    names = args.only if args.only else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for name in names:
        start = time.time()
        print(f"\n{'=' * 72}\nRunning {name} (preset={args.preset})\n{'=' * 72}")
        EXPERIMENTS[name](args.preset)
        print(f"[{name} done in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()

"""Run every experiment and print the paper-shaped outputs.

Usage::

    python -m repro.experiments.run_all --preset small
    python -m repro.experiments.run_all --preset tiny --only figure3 figure11
"""

from __future__ import annotations

import argparse
import time

from repro.__main__ import _job_count
from repro.experiments import (
    churn_resilience,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    hybrid_tradeoff,
    pull_baseline,
    scalability,
    sensitivity,
    table1,
    workload_sensitivity,
)

__all__ = ["EXPERIMENTS", "build_parser", "main"]

#: Experiment drivers.  Each takes ``(preset, jobs)``; the ones whose
#: workload is not a :class:`SimulationConfig` sweep (table1's trace
#: statistics, the pull/hybrid extensions with their own drivers) run
#: serially and ignore ``jobs``.
EXPERIMENTS = {
    "table1": lambda preset, jobs: table1.main(),
    "figure3": lambda preset, jobs: figure3.main(preset=preset, jobs=jobs),
    "figure5": lambda preset, jobs: figure5.main(preset=preset, jobs=jobs),
    "figure6": lambda preset, jobs: figure6.main(preset=preset, jobs=jobs),
    "figure7": lambda preset, jobs: figure7.main(preset=preset, jobs=jobs),
    "figure8": lambda preset, jobs: figure8.main(preset=preset, jobs=jobs),
    "figure9": lambda preset, jobs: figure9.main(preset=preset, jobs=jobs),
    "figure10": lambda preset, jobs: figure10.main(preset=preset, jobs=jobs),
    "figure11": lambda preset, jobs: figure11.main(preset=preset, jobs=jobs),
    "scalability": lambda preset, jobs: scalability.main(preset=preset, jobs=jobs),
    "sensitivity": lambda preset, jobs: sensitivity.main(preset=preset, jobs=jobs),
    "pull_baseline": lambda preset, jobs: pull_baseline.main(preset=preset),
    "hybrid_tradeoff": lambda preset, jobs: hybrid_tradeoff.main(preset=preset),
    "churn_resilience": lambda preset, jobs: churn_resilience.main(
        preset=preset, jobs=jobs
    ),
    "workload_sensitivity": lambda preset, jobs: workload_sensitivity.main(
        preset=preset, jobs=jobs
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.experiments.run_all", description=__doc__)
    parser.add_argument("--preset", default="small", help="tiny | small | paper")
    parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        metavar="N",
        help="worker processes per sweep (1 = serial, 0 = one per CPU); "
        "results are bit-identical for every value",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run (choices: {sorted(EXPERIMENTS)})",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)

    names = args.only if args.only else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for name in names:
        start = time.time()
        print(f"\n{'=' * 72}\nRunning {name} (preset={args.preset})\n{'=' * 72}")
        EXPERIMENTS[name](args.preset, args.jobs)
        print(f"[{name} done in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()

"""Run every experiment and print the paper-shaped outputs.

Usage::

    python -m repro.experiments.run_all --preset small
    python -m repro.experiments.run_all --preset tiny --only figure3 figure11

All requested experiments are planned up front and executed through the
registry's shared plane (:mod:`repro.experiments.api`): the union of
their config grids goes through **one** deduplicated sweep fan-out, and
a content-addressed result cache means a warm rerun performs zero new
simulations.  Per-experiment JSON artifacts are persisted next to the
cache (disable with ``--no-cache``, redirect with ``--artifacts``).
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.__main__ import _job_count
from repro.experiments import api
from repro.experiments.cache import ResultCache, default_cache_root
from repro.obs.logsetup import LOG_LEVELS, get_logger, setup_cli_logging

__all__ = ["EXPERIMENTS", "build_parser", "main"]

log = get_logger("repro.experiments.run_all")


def _run_one(name: str):
    def runner(preset: str, jobs: int | None):
        spec = api.get_experiment(name)
        text = spec.render(
            api.run_experiment(name, preset=preset, jobs=jobs)
        )
        log.info(text)
        return text

    return runner


#: Backwards-compatible driver map: every registered experiment behind
#: one ``(preset, jobs)`` signature (the registry is the source of
#: truth; prefer ``python -m repro experiments run``).
EXPERIMENTS = {
    name: _run_one(name) for name in api.available_experiments()
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.experiments.run_all", description=__doc__)
    parser.add_argument("--preset", default="small", help="tiny | small | paper")
    parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        metavar="N",
        help="worker processes per sweep (1 = serial, 0 = one per CPU); "
        "results are bit-identical for every value",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run (choices: {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the content-addressed result cache and recompute "
        "every sweep point",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="directory for per-experiment JSON artifacts (default: "
        "<cache-dir>/artifacts/<preset>; only written when caching is on "
        "or a directory is given explicitly)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the master seed of every planned config",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help="verbosity of the repro.* loggers (default: info, which "
        "keeps the output identical to earlier print-based releases)",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_cli_logging(args.log_level)

    names = args.only if args.only else list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    cache: ResultCache | None = None
    if not args.no_cache:
        cache = ResultCache(Path(args.cache_dir or default_cache_root()))
    artifacts_dir = args.artifacts
    if artifacts_dir is None and cache is not None:
        artifacts_dir = cache.root / "artifacts" / args.preset

    start = time.time()
    report = api.run_experiments(
        names,
        preset=args.preset,
        jobs=args.jobs,
        cache=cache,
        artifacts_dir=artifacts_dir,
        overrides={"seed": args.seed} if args.seed is not None else None,
        progress=log.info,
    )
    for name in names:
        log.info(
            f"\n{'=' * 72}\nRunning {name} (preset={args.preset})\n{'=' * 72}"
        )
        log.info(report.texts[name])
        log.info(f"[{name} done in {report.seconds[name]:.1f}s]")

    stats = report.stats
    log.info(
        f"\n[all done in {time.time() - start:.1f}s: "
        f"{stats.planned} planned points, {stats.distinct} distinct, "
        f"{stats.total_cached} cached, {stats.total_simulated} simulated]"
    )
    if report.artifacts:
        log.info(f"[artifacts: {artifacts_dir}]")


if __name__ == "__main__":
    main()

"""Link-delay models.

The paper draws node-to-node link delays from a heavy-tailed Pareto
distribution with density ``alpha * k^alpha / x^(alpha+1)``, where
``alpha = mean / (mean - min)`` and ``k`` (the scale) is the minimum delay
a link can have.  With the paper's parameters -- mean 15 ms, minimum
2 ms -- the resulting networks have average nominal node-to-node delays
around 20-30 ms (Section 6.1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ParetoDelayModel", "ConstantDelayModel"]


class ParetoDelayModel:
    """Heavy-tailed Pareto link delays, parameterised as in the paper.

    Args:
        mean_ms: Mean link delay in milliseconds (paper: 15 ms).
        min_ms: Minimum link delay in milliseconds (paper: 2 ms).
        cap_ms: Optional truncation to keep pathological tail draws from
            dominating a small sample; ``None`` leaves the tail unbounded.
    """

    def __init__(
        self,
        mean_ms: float = 15.0,
        min_ms: float = 2.0,
        cap_ms: float | None = 500.0,
    ) -> None:
        if min_ms <= 0:
            raise ConfigurationError(f"min_ms must be positive, got {min_ms!r}")
        if mean_ms <= min_ms:
            raise ConfigurationError(
                f"mean_ms ({mean_ms!r}) must exceed min_ms ({min_ms!r}) "
                "for the Pareto mean to exist"
            )
        if cap_ms is not None and cap_ms <= min_ms:
            raise ConfigurationError("cap_ms must exceed min_ms")
        self.mean_ms = mean_ms
        self.min_ms = min_ms
        self.cap_ms = cap_ms
        # alpha = mean / (mean - min) gives E[X] = alpha*k/(alpha-1) = mean.
        self.alpha = mean_ms / (mean_ms - min_ms)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` link delays in milliseconds."""
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size!r}")
        # Inverse-CDF sampling: X = k / U^(1/alpha).
        u = rng.random(size)
        delays = self.min_ms / np.power(u, 1.0 / self.alpha)
        if self.cap_ms is not None:
            np.minimum(delays, self.cap_ms, out=delays)
        return delays

    def scaled(self, mean_ms: float) -> "ParetoDelayModel":
        """Return a copy with a different mean, keeping min/cap proportional.

        Used by the delay-sweep experiments (Figures 5 and 7b): scaling the
        whole distribution preserves its shape while moving the average
        node-to-node delay.
        """
        factor = mean_ms / self.mean_ms
        return ParetoDelayModel(
            mean_ms=mean_ms,
            min_ms=self.min_ms * factor,
            cap_ms=None if self.cap_ms is None else self.cap_ms * factor,
        )


class ConstantDelayModel:
    """Degenerate delay model: every link has the same delay.

    Useful in tests and in the zero-delay fidelity-theorem checks.
    """

    def __init__(self, delay_ms: float) -> None:
        if delay_ms < 0:
            raise ConfigurationError(f"delay_ms must be non-negative, got {delay_ms!r}")
        self.delay_ms = delay_ms

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size!r}")
        return np.full(size, self.delay_ms, dtype=float)

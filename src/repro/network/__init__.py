"""Physical-network substrate.

The paper evaluates on a randomly generated physical network of routers
and repositories with Pareto-distributed link delays, routed with the
Floyd-Warshall all-pairs shortest-path algorithm (Section 6.1).  This
subpackage implements that substrate from scratch:

- :mod:`repro.network.delays` -- the bounded Pareto link-delay model
  (mean 15 ms, minimum 2 ms by default).
- :mod:`repro.network.topology` -- random connected topologies with one
  source, N repositories and M routers.
- :mod:`repro.network.routing` -- Floyd-Warshall shortest paths, hop
  counts and next-hop routing tables.
- :mod:`repro.network.model` -- the :class:`~repro.network.model.NetworkModel`
  facade the engine queries for end-to-end delays.
"""

from repro.network.delays import ParetoDelayModel
from repro.network.model import NetworkModel, build_network
from repro.network.routing import RoutingTables, floyd_warshall
from repro.network.topology import Topology, generate_topology

__all__ = [
    "ParetoDelayModel",
    "NetworkModel",
    "build_network",
    "RoutingTables",
    "floyd_warshall",
    "Topology",
    "generate_topology",
]

"""Random physical-network topology generation.

The paper's model (Section 6.1): a randomly generated physical network of
nodes (routers and repositories) and links, with one node selected as the
source.  The base case uses 700 nodes (1 source, 100 repositories, 600
routers); the scalability study grows this to 2100 nodes.

We generate a connected random graph in two steps:

1. a uniform random spanning tree over all nodes (guaranteeing
   connectivity), then
2. extra random links until the target average degree is reached.

Repositories and the source attach to the router mesh like end hosts: the
construction below places routers first and biases extra links toward
router-router pairs, yielding source-to-repository paths of roughly 10
hops at the 700-node scale, matching the paper's reported average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError

__all__ = ["Topology", "generate_topology"]


@dataclass
class Topology:
    """An undirected physical network.

    Node ids are dense integers ``0 .. n_nodes-1``.  Node 0 is always the
    source; repositories follow (ids ``1 .. n_repositories``); routers take
    the remaining ids.

    Attributes:
        n_repositories: Number of repository nodes.
        n_routers: Number of router nodes.
        edges: Array of shape (n_edges, 2) of undirected links.
        delays_ms: Per-edge link delay in milliseconds, aligned to ``edges``.
    """

    n_repositories: int
    n_routers: int
    edges: np.ndarray
    delays_ms: np.ndarray
    source: int = 0
    repository_ids: np.ndarray = field(init=False)
    router_ids: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.repository_ids = np.arange(1, 1 + self.n_repositories)
        self.router_ids = np.arange(
            1 + self.n_repositories, 1 + self.n_repositories + self.n_routers
        )
        if self.edges.shape[0] != self.delays_ms.shape[0]:
            raise TopologyError("edges and delays_ms must have the same length")

    @property
    def n_nodes(self) -> int:
        """Total node count (source + repositories + routers)."""
        return 1 + self.n_repositories + self.n_routers

    @property
    def n_edges(self) -> int:
        """Number of undirected links."""
        return int(self.edges.shape[0])

    def degree_of(self, node: int) -> int:
        """Number of links incident to ``node``."""
        return int(np.count_nonzero(self.edges == node))

    def is_connected(self) -> bool:
        """Breadth-first connectivity check over the link set."""
        n = self.n_nodes
        if n == 0:
            return True
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for u, v in self.edges:
            adjacency[int(u)].append(int(v))
            adjacency[int(v)].append(int(u))
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return bool(seen.all())


def _random_spanning_tree(n: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Random spanning tree via a random-permutation attachment process.

    Each node (in random order, after the first) links to a uniformly
    chosen already-attached node.  This yields a connected tree with
    randomised shape; it is not uniform over all spanning trees, but the
    experiments only need "a random connected mesh", as in the paper.
    """
    order = rng.permutation(n)
    edges = []
    for i in range(1, n):
        attach_to = order[rng.integers(0, i)]
        edges.append((int(order[i]), int(attach_to)))
    return edges


def generate_topology(
    n_repositories: int,
    n_routers: int,
    rng: np.random.Generator,
    delay_model,
    avg_degree: float = 3.0,
) -> Topology:
    """Generate a connected random topology in the paper's style.

    Args:
        n_repositories: Repository count (paper base case: 100).
        n_routers: Router count (paper base case: 600).
        rng: Random stream for the structure.
        delay_model: Object with ``sample(rng, size) -> ndarray`` giving
            per-link delays in milliseconds (see :mod:`repro.network.delays`).
        avg_degree: Target average node degree; extra links beyond the
            spanning tree are added until this is met.

    Returns:
        A connected :class:`Topology`.

    Raises:
        TopologyError: on non-positive node counts or an infeasible degree.
    """
    if n_repositories < 1:
        raise TopologyError(f"need at least one repository, got {n_repositories!r}")
    if n_routers < 0:
        raise TopologyError(f"router count must be non-negative, got {n_routers!r}")
    n = 1 + n_repositories + n_routers
    if avg_degree < 2.0 * (n - 1) / n:
        raise TopologyError(
            f"avg_degree {avg_degree!r} is below the spanning-tree minimum"
        )

    edge_set: set[tuple[int, int]] = set()
    for u, v in _random_spanning_tree(n, rng):
        edge_set.add((min(u, v), max(u, v)))

    target_edges = int(round(avg_degree * n / 2.0))
    max_possible = n * (n - 1) // 2
    target_edges = min(target_edges, max_possible)

    # Bias extra links toward the router mesh (end hosts keep low degree),
    # falling back to arbitrary pairs if the router mesh saturates.
    router_lo = 1 + n_repositories
    attempts = 0
    max_attempts = 50 * max(target_edges, 1)
    while len(edge_set) < target_edges and attempts < max_attempts:
        attempts += 1
        if n_routers >= 2 and rng.random() < 0.9:
            u = int(rng.integers(router_lo, n))
            v = int(rng.integers(router_lo, n))
        else:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
        if u == v:
            continue
        edge_set.add((min(u, v), max(u, v)))

    edges = np.array(sorted(edge_set), dtype=np.int64)
    delays = delay_model.sample(rng, edges.shape[0]).astype(float)
    topo = Topology(
        n_repositories=n_repositories,
        n_routers=n_routers,
        edges=edges,
        delays_ms=delays,
    )
    if not topo.is_connected():
        raise TopologyError("generated topology is not connected (internal error)")
    return topo

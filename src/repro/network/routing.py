"""All-pairs shortest-path routing.

The paper generates routing tables for every node with the Floyd-Warshall
all-pairs shortest-path algorithm (Section 6.1, citing Cormen et al.).
We implement Floyd-Warshall here with a numpy-blocked inner loop: the
classic O(n^3) recurrence, with the k-loop in Python and the (i, j)
relaxation vectorised, which is fast enough for the paper's 2100-node
scalability case.

Outputs:

- ``dist_ms``: minimal end-to-end delay between every node pair,
- ``hops``: hop count along those minimal-delay paths,
- next-hop tables, reconstructable paths (for inspection/debugging).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.network.topology import Topology

__all__ = ["RoutingTables", "floyd_warshall", "build_routing"]

_INF = np.inf


@dataclass
class RoutingTables:
    """Dense all-pairs routing state.

    Attributes:
        dist_ms: (n, n) minimal path delay in milliseconds.
        hops: (n, n) hop counts along the minimal-delay paths.
        next_hop: (n, n) first hop on the minimal-delay path from i to j;
            ``-1`` on the diagonal.
    """

    dist_ms: np.ndarray
    hops: np.ndarray
    next_hop: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.dist_ms.shape[0])

    def path(self, src: int, dst: int) -> list[int]:
        """Reconstruct the minimal-delay path as a node list (inclusive)."""
        if src == dst:
            return [src]
        if not np.isfinite(self.dist_ms[src, dst]):
            raise TopologyError(f"no path from {src} to {dst}")
        path = [src]
        node = src
        guard = self.n_nodes + 1
        while node != dst:
            node = int(self.next_hop[node, dst])
            path.append(node)
            guard -= 1
            if guard < 0:
                raise TopologyError("routing table contains a loop (internal error)")
        return path

    def diameter_hops(self) -> int:
        """Maximum hop count over all connected pairs."""
        finite = self.hops[np.isfinite(self.dist_ms)]
        return int(finite.max()) if finite.size else 0

    def mean_hops(self) -> float:
        """Mean hop count over distinct connected pairs."""
        n = self.n_nodes
        if n < 2:
            return 0.0
        mask = np.isfinite(self.dist_ms) & ~np.eye(n, dtype=bool)
        return float(self.hops[mask].mean()) if mask.any() else 0.0


def floyd_warshall(
    dist: np.ndarray, hops: np.ndarray, next_hop: np.ndarray
) -> None:
    """Run the Floyd-Warshall recurrence in place.

    ``dist`` must be initialised with direct-link weights (inf where no
    link, 0 on the diagonal); ``hops`` with 1 where a link exists; and
    ``next_hop[i, j] = j`` where a link exists.  After the call the three
    arrays describe minimal-delay paths.  Delay ties are broken toward
    fewer hops, so hop counts are well defined.
    """
    n = dist.shape[0]
    for k in range(n):
        via_dist = dist[:, k, None] + dist[None, k, :]
        via_hops = hops[:, k, None] + hops[None, k, :]
        better = via_dist < dist
        tie = (via_dist == dist) & (via_hops < hops)
        update = better | tie
        if not update.any():
            continue
        dist[update] = via_dist[update]
        hops[update] = via_hops[update]
        rows = np.nonzero(update.any(axis=1))[0]
        for i in rows:
            cols = update[i]
            next_hop[i, cols] = next_hop[i, k]


def build_routing(topology: Topology) -> RoutingTables:
    """Compute all-pairs routing tables for a topology.

    Raises:
        TopologyError: if the topology is disconnected.
    """
    n = topology.n_nodes
    dist = np.full((n, n), _INF)
    hops = np.full((n, n), _INF)
    next_hop = np.full((n, n), -1, dtype=np.int64)
    np.fill_diagonal(dist, 0.0)
    np.fill_diagonal(hops, 0.0)

    for (u, v), delay in zip(topology.edges, topology.delays_ms):
        u, v = int(u), int(v)
        # Keep the cheaper link if the generator produced a multi-edge.
        if delay < dist[u, v]:
            dist[u, v] = dist[v, u] = float(delay)
            hops[u, v] = hops[v, u] = 1.0
            next_hop[u, v] = v
            next_hop[v, u] = u

    floyd_warshall(dist, hops, next_hop)

    if not np.isfinite(dist).all():
        raise TopologyError("topology is disconnected; routing undefined")
    return RoutingTables(dist_ms=dist, hops=hops.astype(np.int64), next_hop=next_hop)

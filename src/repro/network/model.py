"""The network facade the dissemination engine queries.

The engine never routes per hop: a message from ``u`` to ``v`` simply
arrives after the precomputed minimal-path end-to-end delay, as in the
paper's simulation.  :class:`NetworkModel` bundles the topology and the
routing tables and answers delay/hop queries between *logical* nodes
(the source and the repositories).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.network.delays import ParetoDelayModel
from repro.network.routing import RoutingTables, build_routing
from repro.network.topology import Topology, generate_topology

__all__ = ["NetworkModel", "build_network"]


@dataclass
class NetworkModel:
    """End-to-end view of the physical network.

    Attributes:
        topology: The underlying random physical graph.
        routing: Dense all-pairs routing tables over that graph.
        raw: The unscaled network this one was derived from by uniform
            delay scaling (``None`` when this network *is* the raw one).
            Rescaling always starts from ``raw``, so a chain of rescales
            is bit-identical to a single rescale of the original --
            the property the sweep layer's determinism guarantee needs.
    """

    topology: Topology
    routing: RoutingTables
    raw: "NetworkModel | None" = None

    @property
    def source(self) -> int:
        """Node id of the data source."""
        return self.topology.source

    @property
    def repository_ids(self) -> np.ndarray:
        """Node ids of all repositories."""
        return self.topology.repository_ids

    def delay_s(self, u: int, v: int) -> float:
        """End-to-end delay between nodes ``u`` and ``v`` in **seconds**."""
        return float(self.routing.dist_ms[u, v]) / 1000.0

    def delay_ms(self, u: int, v: int) -> float:
        """End-to-end delay between nodes ``u`` and ``v`` in milliseconds."""
        return float(self.routing.dist_ms[u, v])

    def hops(self, u: int, v: int) -> int:
        """Hop count along the minimal-delay path between ``u`` and ``v``."""
        return int(self.routing.hops[u, v])

    def mean_repo_delay_ms(self) -> float:
        """Average end-to-end delay between distinct logical nodes.

        This is the ``avg communication delay`` input to the paper's
        Eq. (2): the expected delay of one dissemination hop between a
        repository (or the source) and another repository.
        """
        ids = np.concatenate(([self.source], self.repository_ids))
        sub = self.routing.dist_ms[np.ix_(ids, ids)]
        n = len(ids)
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(sub[mask].mean())

    def mean_repo_hops(self) -> float:
        """Average hop count between distinct logical nodes."""
        ids = np.concatenate(([self.source], self.repository_ids))
        sub = self.routing.hops[np.ix_(ids, ids)]
        n = len(ids)
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(sub[mask].mean())

    def scaled_delays(self, mean_ms: float) -> "NetworkModel":
        """Return a copy with all link delays rescaled to a new mean.

        Keeps the topology and relative link costs fixed so that delay
        sweeps (Figures 5, 7b) vary exactly one thing.  A zero or negative
        target collapses every delay to zero (the idealised-network case
        used by the fidelity theorems).  Uniform scaling preserves
        shortest paths, so the routing tables are rescaled in place
        rather than recomputed.
        """
        current_mean = float(self.topology.delays_ms.mean())
        if mean_ms <= 0.0 or current_mean <= 0.0:
            return self._uniformly_scaled(0.0)
        raw = self.raw or self
        return self._uniformly_scaled(mean_ms / float(raw.topology.delays_ms.mean()))

    def with_repo_mean_delay(self, target_ms: float) -> "NetworkModel":
        """Rescale so the *repository-to-repository* mean delay hits a target.

        This is the x-axis of the paper's communication-delay sweeps
        (Figures 5 and 7b): the average end-to-end delay of one
        dissemination hop.
        """
        current = self.mean_repo_delay_ms()
        if target_ms <= 0.0 or current <= 0.0:
            return self._uniformly_scaled(0.0)
        raw = self.raw or self
        return self._uniformly_scaled(target_ms / raw.mean_repo_delay_ms())

    def _uniformly_scaled(self, factor: float) -> "NetworkModel":
        # Scale from the raw arrays, never from already-scaled ones:
        # float multiplication does not compose exactly, so chained
        # rescales would otherwise drift in the last bits and make a
        # recycled sweep setup differ from a freshly built one.
        raw = self.raw or self
        topo = Topology(
            n_repositories=raw.topology.n_repositories,
            n_routers=raw.topology.n_routers,
            edges=raw.topology.edges.copy(),
            delays_ms=raw.topology.delays_ms * factor,
        )
        routing = RoutingTables(
            dist_ms=raw.routing.dist_ms * factor,
            hops=raw.routing.hops.copy(),
            next_hop=raw.routing.next_hop.copy(),
        )
        return NetworkModel(topology=topo, routing=routing, raw=raw)


def build_network(
    n_repositories: int,
    n_routers: int,
    rng: np.random.Generator,
    delay_model: ParetoDelayModel | None = None,
    avg_degree: float = 3.0,
) -> NetworkModel:
    """Generate a topology and its routing tables in one call.

    Args:
        n_repositories: Repository count (paper base case: 100).
        n_routers: Router count (paper base case: 600).
        rng: Random stream for structure and link delays.
        delay_model: Link-delay distribution; defaults to the paper's
            Pareto(mean 15 ms, min 2 ms).
        avg_degree: Target average node degree of the physical mesh.

    Raises:
        TopologyError: if generation fails or the graph is disconnected.
    """
    if delay_model is None:
        delay_model = ParetoDelayModel()
    topology = generate_topology(
        n_repositories=n_repositories,
        n_routers=n_routers,
        rng=rng,
        delay_model=delay_model,
        avg_degree=avg_degree,
    )
    routing = build_routing(topology)
    if not np.isfinite(routing.dist_ms).all():
        raise TopologyError("generated network is disconnected")
    return NetworkModel(topology=topology, routing=routing)

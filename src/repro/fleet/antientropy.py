"""Sample-based anti-entropy resync of a repository against its parent.

After a severed worker link is re-established, a repository may have
missed a suffix of what its parent forwarded (links are FIFO, so a
severance loses a contiguous tail per edge).  Rather than re-shipping
the parent's full per-item state, the pair runs a setdiscovery-style
exchange (mercurial's ``setdiscovery``: probe with a digest, then
sample the undecided set in growing rounds) over their per-item update
*sequence numbers*:

- round 0 is a digest probe: the child hashes its received heads
  (``item -> highest source seq received``); the parent hashes what it
  last *forwarded* on the child's edges.  Equal digests end the session
  in one round trip -- the overwhelmingly common case, since most
  reconnects lose nothing;
- on a mismatch the child samples its undecided items -- stalest heads
  first, since an item whose head is oldest has most likely missed a
  forward -- in exponentially growing rounds.  The parent classifies
  each sampled ``(item, seq)`` against its forwarded heads and batches
  the fresh ``(item, seq, value)`` for every item the child is behind
  on into the response, so discovering a gap and replaying it is the
  same round trip.

Comparing against the parent's per-edge *forwarded* heads (not the
source's published heads) is what keeps coherency filtering invisible:
an update the parent's filter pruned was never owed to the child, so
it can never read as a missed update.

Cost accounting follows :meth:`~repro.core.metrics.CostCounters.
record_resync`: ``checks`` sampled comparisons, ``messages`` counted as
frames on the wire plus values transferred -- the same unit as the
full-transfer baseline (:func:`full_transfer_cost`), which ships one
frame pair plus every item's value unconditionally.

The state machines are sans-io: :class:`ChildSession` emits
:class:`~repro.live.protocol.ResyncRequest` frames and absorbs
:class:`~repro.live.protocol.ResyncResponse` frames, :class:`ParentView`
maps requests to responses.  The fleet worker drives them over its
peer links; tests and benchmarks drive them directly through
:func:`run_resync`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.live.protocol import ResyncRequest, ResyncResponse

__all__ = [
    "AntiEntropyCost",
    "ChildSession",
    "ParentView",
    "full_transfer_cost",
    "heads_digest",
    "run_resync",
]

#: First sample-round size; rounds double from here (8, 16, 32, ...),
#: mirroring setdiscovery's growing samples.
DEFAULT_SAMPLE_SIZE = 8


def heads_digest(heads: dict[int, int]) -> str:
    """Order-independent digest of a per-item head set."""
    blob = ",".join(f"{item}:{seq}" for item, seq in sorted(heads.items()))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def full_transfer_cost(n_items: int) -> int:
    """Messages a full-state resync costs: one frame pair plus every value."""
    return 2 + n_items


@dataclass
class AntiEntropyCost:
    """What one resync session cost.

    Attributes:
        rounds: Round trips taken (1 = digest matched).
        frames: Request/response frames exchanged (two per round).
        checks: Sampled per-item head comparisons the parent performed.
        transferred: Values replayed to the child (the missed set).
    """

    rounds: int = 0
    frames: int = 0
    checks: int = 0
    transferred: int = 0

    @property
    def messages(self) -> int:
        """Total cost in the full-transfer-comparable unit."""
        return self.frames + self.transferred


class ParentView:
    """The parent's side: classify samples against its forwarded heads.

    Args:
        heads: ``item -> (last forwarded seq, last forwarded value)``
            over the edges toward one child, 0-seq entries included for
            items served but never forwarded.
    """

    def __init__(self, heads: dict[int, tuple[int, float]]) -> None:
        self.heads = dict(heads)
        self._digest = heads_digest(
            {item: seq for item, (seq, _value) in self.heads.items()}
        )

    def respond(self, request: ResyncRequest) -> ResyncResponse:
        """Answer one round: digest verdict, or sample classification."""
        if request.round_no == 0:
            return ResyncResponse(
                child=request.child,
                parent=request.parent,
                round_no=0,
                complete=request.digest == self._digest,
            )
        known: list[int] = []
        missing: list[tuple[int, int, float]] = []
        for item_id, child_seq in request.sample:
            head = self.heads.get(item_id)
            if head is None or child_seq >= head[0]:
                known.append(item_id)
            else:
                missing.append((item_id, head[0], head[1]))
        return ResyncResponse(
            child=request.child,
            parent=request.parent,
            round_no=request.round_no,
            known=tuple(known),
            missing=tuple(missing),
        )


class ChildSession:
    """The child's side: drive rounds until every item is classified.

    Args:
        child / parent: Node ids, echoed into the frames.
        heads: ``item -> highest source seq received`` from this parent,
            0 for items served but never received.
        sample_size: First sample-round size (doubles per round).
    """

    def __init__(
        self,
        child: int,
        parent: int,
        heads: dict[int, int],
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ) -> None:
        if sample_size < 1:
            raise SimulationError(f"sample_size must be >= 1, got {sample_size!r}")
        self.child = child
        self.parent = parent
        self.heads = dict(heads)
        self.cost = AntiEntropyCost()
        #: The replayed missed set, ``(item, seq, value)`` in discovery
        #: order; applied by the caller.
        self.missing: list[tuple[int, int, float]] = []
        self._sample_size = sample_size
        # Stalest-first: the oldest heads are the likeliest to have
        # missed a forward, so they are probed in the earliest (small)
        # rounds and a localised loss resolves without sampling the
        # whole set.
        self._undecided = sorted(
            self.heads, key=lambda item: (self.heads[item], item)
        )
        self._round_no = 0
        self._done = False
        self._awaiting: ResyncRequest | None = None

    @property
    def done(self) -> bool:
        """True once every item is classified (or the digest matched)."""
        return self._done

    def next_request(self) -> ResyncRequest | None:
        """The next frame to send, or ``None`` when the session is over."""
        if self._done or self._awaiting is not None:
            return None
        if self._round_no == 0:
            request = ResyncRequest(
                child=self.child,
                parent=self.parent,
                round_no=0,
                digest=heads_digest(self.heads),
            )
        else:
            take = self._sample_size * (2 ** (self._round_no - 1))
            sample = tuple(
                (item, self.heads[item]) for item in self._undecided[:take]
            )
            request = ResyncRequest(
                child=self.child,
                parent=self.parent,
                round_no=self._round_no,
                sample=sample,
            )
        self._awaiting = request
        self.cost.frames += 1
        return request

    def absorb(self, response: ResyncResponse) -> None:
        """Fold one response in and advance the round counter.

        Raises:
            SimulationError: on a response that answers no outstanding
                request (a protocol violation by the parent).
        """
        request = self._awaiting
        if request is None or response.round_no != request.round_no:
            raise SimulationError(
                f"unsolicited resync response round {response.round_no} "
                f"for child {self.child}"
            )
        self._awaiting = None
        self.cost.frames += 1
        self.cost.rounds += 1
        if response.round_no == 0:
            if response.complete:
                self._done = True
            else:
                self._round_no = 1
                if not self._undecided:
                    # Digest mismatch with nothing to sample: the head
                    # sets disagree on membership, not on seqs; nothing
                    # can be pulled.
                    self._done = True
            return
        decided = set(response.known)
        for item_id, seq, value in response.missing:
            decided.add(item_id)
            self.missing.append((int(item_id), int(seq), float(value)))
            self.heads[int(item_id)] = int(seq)
        self.cost.checks += len(request.sample)
        self.cost.transferred += len(response.missing)
        self._undecided = [i for i in self._undecided if i not in decided]
        if self._undecided:
            self._round_no += 1
        else:
            self._done = True


def run_resync(
    child_heads: dict[int, int],
    parent_heads: dict[int, tuple[int, float]],
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    child: int = 0,
    parent: int = 0,
) -> tuple[list[tuple[int, int, float]], AntiEntropyCost]:
    """Drive one full session in-process; returns (missed set, cost).

    The wire-free twin of what the fleet worker runs over its peer
    links -- same state machines, same frames, no sockets.
    """
    session = ChildSession(child, parent, child_heads, sample_size=sample_size)
    view = ParentView(parent_heads)
    while not session.done:
        request = session.next_request()
        if request is None:  # defensive: an undone session always has one
            raise SimulationError("resync session stalled without a request")
        session.absorb(view.respond(request))
    return session.missing, session.cost

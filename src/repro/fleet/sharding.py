"""Deterministic shard assignment of the live network across workers.

Every fleet process rebuilds the full network from the frozen
:class:`~repro.engine.config.SimulationConfig` (the builder is
bit-reproducible), so the shard plan only has to say *which* nodes each
worker activates -- no node state ever crosses a process boundary.
The plan itself is a pure function of the setup, computed identically
by the supervisor and by every worker.

Assignment walks the union dissemination graph breadth-first from the
source and cuts the visit order into near-equal contiguous blocks, one
per worker.  BFS order keeps subtrees together, so most service edges
stay worker-local and the cross-process link traffic is roughly the
cut between consecutive d3g levels rather than a random half of all
edges.  The source always lands on worker 0 (it heads the visit
order), and every client lives with its repository's worker so the
client plane never crosses a process boundary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.clients import ClientPopulation
from repro.engine.builder import SimulationSetup
from repro.errors import ConfigurationError

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """Which worker hosts which node.

    Attributes:
        n_workers: Fleet size.
        owner: ``node_id -> worker`` for the source and every
            repository (clients are added by :func:`plan_shards` when a
            population is supplied).
        source: The source's node id (always owned by worker 0).
    """

    n_workers: int
    owner: dict[int, int] = field(default_factory=dict)
    source: int = 0

    def worker_of(self, node_id: int) -> int:
        """The worker hosting ``node_id``."""
        return self.owner[node_id]

    def nodes_of(self, worker: int) -> list[int]:
        """Every node ``worker`` hosts, sorted."""
        return sorted(n for n, w in self.owner.items() if w == worker)

    def shard_sizes(self) -> list[int]:
        """Hosted-node count per worker, indexed by worker id."""
        sizes = [0] * self.n_workers
        for worker in self.owner.values():
            sizes[worker] += 1
        return sizes


def plan_shards(
    setup: SimulationSetup,
    n_workers: int,
    clients: ClientPopulation | None = None,
    client_node_base: int | None = None,
) -> ShardPlan:
    """Compute the fleet's shard assignment for one built setup.

    Args:
        setup: The run's built setup (graph + traces).
        n_workers: Number of worker processes; capped by the node count
            (a worker with nothing to host is a configuration error).
        clients: Optional population; each client's transport node id
            (``client_node_base + index``) is assigned to its
            repository's worker.
        client_node_base: First client transport node id; required when
            ``clients`` is given.

    Raises:
        ConfigurationError: on a non-positive worker count or more
            workers than repositories + source.
    """
    graph = setup.graph
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers!r}")
    if n_workers > len(graph.nodes):
        raise ConfigurationError(
            f"{n_workers} workers for {len(graph.nodes)} nodes; every "
            "worker must host at least one node"
        )

    # Union child adjacency over all items, children in first-seen order.
    children: dict[int, list[int]] = {}
    for item_id in setup.traces:
        for node in graph.nodes:
            for child, _c in graph.children_for_item(node, item_id):
                siblings = children.setdefault(node, [])
                if child not in siblings:
                    siblings.append(child)

    source = graph.source
    order: list[int] = []
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in children.get(node, ()):
            if child not in seen:
                seen.add(child)
                queue.append(child)
    # Nodes unreachable from the source (none in a healthy d3g, but the
    # plan must be total) trail the visit order deterministically.
    for node in graph.nodes:
        if node not in seen:
            order.append(node)

    owner: dict[int, int] = {}
    n_nodes = len(order)
    base, extra = divmod(n_nodes, n_workers)
    start = 0
    for worker in range(n_workers):
        size = base + (1 if worker < extra else 0)
        for node in order[start : start + size]:
            owner[node] = worker
        start += size

    if clients is not None and len(clients):
        if client_node_base is None:
            raise ConfigurationError(
                "client_node_base is required when assigning clients"
            )
        for offset, client in enumerate(clients.clients):
            owner[client_node_base + offset] = owner[client.repository]

    return ShardPlan(n_workers=n_workers, owner=owner, source=source)

"""The fleet worker: one process hosting one shard of the live network.

Every worker rebuilds the *full* network from the frozen config -- the
builder is bit-reproducible, so all workers agree on every node, edge,
filter and trace without shipping a byte of state -- then activates
only the nodes its shard owns (:mod:`repro.fleet.sharding`).  A local
delivery loops through an in-process due-time heap; a remote delivery
is wrapped in a :class:`~repro.live.protocol.Forward` frame and sent
over the worker's single multiplexed TCP link to the destination's
owner, through a :class:`~repro.fleet.links.SendQueue` with watermark
backpressure.

Timing: the supervisor broadcasts one monotonic-clock epoch; every
worker paces deliveries against it (``sim_now = (monotonic - epoch) *
time_scale``), but nodes *process* each message at its logical
``arrival_s`` stamp -- the same convention the single-process TCP
transport uses for the source replay -- so coherency filtering and
fidelity scoring see the computed dissemination schedule, not the
wall-clock slop of N racing processes.  That is what lets a fleet run
agree with the single-process run on fidelity to within a fraction of
a point.

Liveness and recovery: links greet with versioned
:class:`~repro.live.protocol.Hello` frames carrying a connection
generation, heartbeat between updates, and reconnect with capped
exponential backoff.  A worker that sees a peer's generation jump knows
the previous connection died with frames possibly unsent, and starts a
sample-based anti-entropy session (:mod:`repro.fleet.antientropy`) for
each local repository whose parent lives on that peer, charged into the
run's :class:`~repro.core.metrics.CostCounters`.

The worker talks to the supervisor over a ``multiprocessing`` pipe:
``("ready", port)`` after binding, then obeys ``start`` / ``stats?`` /
``sever`` / ``finish`` commands and answers ``finish`` with its
:class:`WorkerReport`.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
import traceback
from dataclasses import dataclass, field

from repro.core.metrics import CostCounters
from repro.engine.builder import build_setup
from repro.engine.config import SimulationConfig
from repro.fleet.antientropy import ChildSession, ParentView
from repro.fleet.links import SendQueue
from repro.fleet.sharding import plan_shards
from repro.live.harness import (
    _client_node_base,
    _score,
    _score_clients,
    build_live_network,
)
from repro.live.loadgen import generate_clients
from repro.live.nodes import Outbound
from repro.live.protocol import (
    Bye,
    Forward,
    Heartbeat,
    Hello,
    ProtocolError,
    ResyncRequest,
    ResyncResponse,
    Stats,
    check_version,
    encode_message,
    read_message,
)
from repro.obs.trace import TraceRecorder

__all__ = ["FleetSpec", "WorkerReport", "worker_main"]


@dataclass(frozen=True)
class FleetSpec:
    """Everything a worker needs to rebuild and run its shard.

    Picklable by construction: it crosses the ``spawn`` boundary.
    """

    config: SimulationConfig
    n_workers: int
    duration: float | None = None
    time_scale: float = 60.0
    n_clients: int = 0
    client_seed: int | None = None
    heartbeat_interval_s: float = 0.5
    reconnect_backoff_s: float = 0.05
    reconnect_attempts: int = 5
    queue_high: int = 256
    queue_low: int = 64
    resync_sample: int = 8
    host: str = "127.0.0.1"
    #: Attach a span recorder on every worker and ship the spans plus a
    #: metrics snapshot home in the report.  Deliberately NOT part of
    #: the run's :class:`~repro.engine.config.SimulationConfig` -- the
    #: flag crosses the spawn pipe out-of-band, so cache fingerprints
    #: and dissemination behaviour are untouched (traced fleet runs are
    #: bit-identical to untraced ones).
    trace: bool = False


@dataclass
class WorkerReport:
    """One worker's slice of the fleet run, merged by the supervisor.

    ``sent`` counts messages the shard's nodes handed to the transport
    (local and cross-worker alike); ``delivered`` counts messages the
    shard's nodes processed.  A frame sent by worker A to worker B is
    in A's ``sent`` and B's ``delivered``, so only the fleet-wide sums
    obey conservation -- which is exactly the merged invariant the
    supervisor enforces.
    """

    worker: int
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    heartbeats: int = 0
    reconnects: int = 0
    resync_frames: int = 0
    queue_stalls: int = 0
    protocol_errors: int = 0
    n_local_nodes: int = 0
    client_messages: int = 0
    span_s: float = 0.0
    wall_seconds: float = 0.0
    counters: CostCounters = field(default_factory=CostCounters)
    per_pair_loss: dict = field(default_factory=dict)
    client_loss: dict = field(default_factory=dict)
    #: Trace spans recorded on this shard (empty unless ``spec.trace``);
    #: the supervisor merges them into the caller's recorder with
    #: update ids stable across shards.
    spans: list = field(default_factory=list)
    #: JSON-ready :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    #: of this worker's telemetry (empty unless ``spec.trace``).
    metrics_snapshot: dict = field(default_factory=dict)
    #: Peer :class:`~repro.live.protocol.Stats` frames absorbed.
    stats_frames: int = 0


def worker_main(worker_id: int, spec: FleetSpec, conn) -> None:
    """Process entry point: run the shard, report, exit."""
    try:
        asyncio.run(_run_worker(worker_id, spec, conn))
    except BaseException:
        try:
            conn.send(("fatal", worker_id, traceback.format_exc()))
        finally:
            raise


async def _run_worker(worker_id: int, spec: FleetSpec, conn) -> None:
    loop = asyncio.get_running_loop()
    config = spec.config
    setup = build_setup(config)
    clients = (
        generate_clients(config, spec.n_clients, seed=spec.client_seed, setup=setup)
        if spec.n_clients
        else None
    )
    network = build_live_network(config, clients=clients, setup=setup)
    plan = plan_shards(
        setup,
        spec.n_workers,
        clients=clients,
        client_node_base=_client_node_base(setup) if clients is not None else None,
    )
    local_nodes = set(plan.nodes_of(worker_id))
    local_repos = {r for r in network.repositories if r in local_nodes}
    local_clients = {c for c in network.clients if c in local_nodes}
    owns_source = plan.owner[plan.source] == worker_id

    # Who serves whom per item, for resync session grouping.
    parent_of: dict[tuple[int, int], int] = {}
    for item_id in setup.traces:
        for node in setup.graph.nodes:
            for child, _c in setup.graph.children_for_item(node, item_id):
                parent_of[(child, item_id)] = node

    report = WorkerReport(worker=worker_id, n_local_nodes=len(local_nodes))
    report.counters = network.counters

    # Out-of-band span recorder: write-only, so attaching it leaves the
    # shard's dissemination decisions bit-identical (see repro.obs.trace).
    recorder = TraceRecorder(policy=config.policy) if spec.trace else None
    if recorder is not None:
        network.attach_observer(recorder)

    epoch = 0.0
    ports: dict[int, int] = {}
    finish = asyncio.Event()
    replay_finished = asyncio.Event()

    def sim_now() -> float:
        return (time.monotonic() - epoch) * spec.time_scale

    # ---- local delivery: one due-time heap, paced by the epoch ----
    local_heap: list[tuple[float, int, Outbound]] = []
    local_wakeup = asyncio.Event()
    enqueue_counter = itertools.count()

    def schedule_local(out: Outbound) -> None:
        due_wall = epoch + out.arrival_s / spec.time_scale
        heapq.heappush(local_heap, (due_wall, next(enqueue_counter), out))
        local_wakeup.set()

    # ---- peer links ----
    class Link:
        def __init__(self, peer: int) -> None:
            self.peer = peer
            self.queue = SendQueue(high=spec.queue_high, low=spec.queue_low)
            self.writer: asyncio.StreamWriter | None = None
            self.generation = 0
            self.task: asyncio.Task | None = None
            self.heartbeat_task: asyncio.Task | None = None

        async def connect(self) -> asyncio.StreamWriter | None:
            if self.writer is not None and not self.writer.is_closing():
                return self.writer
            for attempt in range(spec.reconnect_attempts):
                try:
                    _reader, writer = await asyncio.open_connection(
                        spec.host, ports[self.peer]
                    )
                except OSError:
                    await asyncio.sleep(
                        spec.reconnect_backoff_s * (2 ** attempt)
                    )
                    continue
                self.writer = writer
                self.generation += 1
                if self.generation > 1:
                    report.reconnects += 1
                writer.write(
                    encode_message(
                        Hello(src=worker_id, generation=self.generation)
                    )
                )
                return writer
            return None

        def sever(self) -> None:
            if self.writer is not None and not self.writer.is_closing():
                self.writer.close()

        def _wire_drop(self, frame: Forward) -> None:
            report.dropped += 1
            if recorder is not None:
                recorder.on_drop(
                    frame.seq - 1, frame.item_id, frame.arrival_s,
                    frame.src, frame.dst, "wire",
                )

        async def pump(self) -> None:
            while True:
                frame = await self.queue.get()
                writer = await self.connect()
                if writer is None:
                    # Reconnect exhausted: the wire ate the frame.
                    if isinstance(frame, Forward):
                        self._wire_drop(frame)
                    continue
                writer.write(encode_message(frame))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    if isinstance(frame, Forward):
                        self._wire_drop(frame)

        async def heartbeat(self) -> None:
            while True:
                await asyncio.sleep(spec.heartbeat_interval_s)
                if recorder is not None:
                    recorder.metrics.gauge(
                        f"send_queue_depth[->{self.peer}]"
                    ).set(len(self.queue))
                if self.queue:
                    continue  # data is flowing: the link proves itself
                writer = await self.connect()
                if writer is None:
                    continue
                frames = encode_message(Heartbeat(src=worker_id))
                if recorder is not None:
                    # Traced runs piggyback a telemetry frame on the
                    # heartbeat cadence; untraced runs put nothing extra
                    # on the wire.
                    frames += encode_message(
                        Stats(
                            src=worker_id,
                            sent=report.sent,
                            delivered=report.delivered,
                            dropped=report.dropped,
                            pending=pending(),
                        )
                    )
                writer.write(frames)
                started = time.monotonic()
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    continue
                if recorder is not None:
                    # Wall-clock flush latency -- telemetry only, never
                    # part of the result's bit-identity contract.
                    recorder.metrics.histogram("heartbeat_rtt_ms").observe(
                        (time.monotonic() - started) * 1000.0
                    )
                report.heartbeats += 1

    links: dict[int, Link] = {
        peer: Link(peer) for peer in range(spec.n_workers) if peer != worker_id
    }

    async def dispatch(outs: list[Outbound]) -> None:
        for out in outs:
            report.sent += 1
            owner = plan.owner[out.dst]
            if owner == worker_id:
                schedule_local(out)
            else:
                await links[owner].queue.put(
                    Forward.from_update(out.dst, out.arrival_s, out.update)
                )

    async def deliver(out: Outbound) -> None:
        # Process at the logical arrival stamp (see the module docstring)
        # so downstream filtering and scoring are wall-jitter-free.
        outs = network.node(out.dst).on_message(out.update, out.arrival_s)
        report.delivered += 1
        await dispatch(outs)

    async def local_dispatcher() -> None:
        while True:
            while not local_heap:
                local_wakeup.clear()
                await local_wakeup.wait()
            due_wall = local_heap[0][0]
            delay = due_wall - time.monotonic()
            if delay > 0:
                local_wakeup.clear()
                try:
                    await asyncio.wait_for(local_wakeup.wait(), timeout=delay)
                except (TimeoutError, asyncio.TimeoutError):
                    pass
                continue  # re-evaluate the heap top either way
            _due, _seq, out = heapq.heappop(local_heap)
            await deliver(out)

    # ---- anti-entropy (child side state, parent side responder) ----
    sessions: dict[tuple[int, int], ChildSession] = {}

    def parent_heads_for(parent: int, child: int) -> dict[int, tuple[int, float]]:
        sender = (
            network.source_node
            if parent == network.source_node.node
            else network.repositories[parent]
        )
        heads: dict[int, tuple[int, float]] = {}
        for item_id, edges in sender.edges.items():
            for edge in edges:
                if not edge.is_client and edge.child == child:
                    heads[item_id] = (edge.last_seq, edge.last_value)
        return heads

    def start_resyncs(peer: int) -> None:
        """A peer's connection generation jumped: pull what its parents
        forwarded while the old connection was dying."""
        for child in sorted(local_repos):
            repo = network.repositories[child]
            items = [
                item_id
                for item_id in repo.receive_c
                if plan.owner.get(parent_of.get((child, item_id), -1)) == peer
            ]
            if not items:
                continue
            # One session per (child, parent) pair; a child's items can
            # split across parents, so group by parent.
            by_parent: dict[int, list[int]] = {}
            for item_id in items:
                by_parent.setdefault(parent_of[(child, item_id)], []).append(item_id)
            for parent, parent_items in sorted(by_parent.items()):
                if (child, parent) in sessions:
                    continue  # an earlier jump's session is still running
                session = ChildSession(
                    child,
                    parent,
                    {i: repo.seqs.get(i, 0) for i in parent_items},
                    sample_size=spec.resync_sample,
                )
                sessions[(child, parent)] = session
                request = session.next_request()
                assert request is not None
                report.resync_frames += 1
                links[peer].queue.put_nowait(request)

    def finish_session(key: tuple[int, int], session: ChildSession) -> None:
        child, _parent = key
        repo = network.repositories[child]
        now = sim_now()
        for item_id, seq, value in session.missing:
            if seq > repo.seqs.get(item_id, 0):
                repo.seqs[item_id] = seq
                log = repo.deliveries.get(item_id)
                if log is not None:
                    log.append((now, value))
        network.counters.record_resync(
            session.cost.checks, session.cost.transferred
        )
        del sessions[key]

    # ---- inbound server ----
    peer_generation: dict[int, int] = {}

    async def handle_peer(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError:
                    report.protocol_errors += 1
                    break  # reject the connection, not the run
                if message is None or isinstance(message, Bye):
                    break
                if isinstance(message, Hello):
                    try:
                        check_version(message)
                    except ProtocolError:
                        report.protocol_errors += 1
                        break
                    last = peer_generation.get(message.src, 0)
                    peer_generation[message.src] = message.generation
                    if message.generation > max(last, 1):
                        start_resyncs(message.src)
                elif isinstance(message, Forward):
                    schedule_local(
                        Outbound(
                            dst=message.dst,
                            update=message.to_update(),
                            arrival_s=message.arrival_s,
                        )
                    )
                elif isinstance(message, ResyncRequest):
                    view = ParentView(
                        parent_heads_for(message.parent, message.child)
                    )
                    report.resync_frames += 1
                    links[plan.owner[message.child]].queue.put_nowait(
                        view.respond(message)
                    )
                elif isinstance(message, ResyncResponse):
                    key = (message.child, message.parent)
                    session = sessions.get(key)
                    if session is None:
                        continue  # stale response from a finished session
                    report.resync_frames += 1
                    session.absorb(message)
                    if session.done:
                        finish_session(key, session)
                    else:
                        request = session.next_request()
                        if request is not None:
                            report.resync_frames += 1
                            links[plan.owner[message.parent]].queue.put_nowait(
                                request
                            )
                elif isinstance(message, Stats):
                    report.stats_frames += 1
                    if recorder is not None:
                        metrics = recorder.metrics
                        peer = message.src
                        metrics.gauge(f"peer{peer}.sent").set(message.sent)
                        metrics.gauge(f"peer{peer}.delivered").set(message.delivered)
                        metrics.gauge(f"peer{peer}.dropped").set(message.dropped)
                        metrics.gauge(f"peer{peer}.pending").set(message.pending)
                elif isinstance(message, Heartbeat):
                    continue
                else:  # pragma: no cover - all frame types handled above
                    report.protocol_errors += 1
                    break
        except asyncio.CancelledError:
            # Loop shutdown cancels still-open inbound handlers; ending
            # normally keeps the streams done-callback from re-raising.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ---- source replay (the source's owner only) ----
    async def replay() -> None:
        for t, item_id, value in network.source_schedule(spec.duration):
            due = epoch + t / spec.time_scale
            delay = due - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            # The source stamps the scheduled time, not the wall reading.
            await dispatch(network.source_node.on_update(item_id, value, t))
        replay_finished.set()
        conn.send(("replay-done", worker_id))

    # ---- supervisor control channel ----
    def pending() -> int:
        return len(local_heap) + sum(len(link.queue) for link in links.values())

    async def control() -> None:
        while True:
            has = await loop.run_in_executor(None, conn.poll, 0.05)
            if not has:
                continue
            command = conn.recv()
            if command[0] == "start":
                nonlocal_start(command[1], command[2])
            elif command[0] == "stats?":
                conn.send(
                    (
                        "stats",
                        worker_id,
                        report.sent,
                        report.delivered,
                        report.dropped,
                        pending(),
                    )
                )
            elif command[0] == "sever":
                for link in links.values():
                    link.sever()
            elif command[0] == "finish":
                finish.set()
                return

    started = asyncio.Event()

    def nonlocal_start(port_map: dict[int, int], shared_epoch: float) -> None:
        nonlocal epoch
        ports.update(port_map)
        epoch = shared_epoch
        started.set()

    # ---- run ----
    server = await asyncio.start_server(handle_peer, spec.host, 0)
    port = server.sockets[0].getsockname()[1]
    conn.send(("ready", worker_id, port))

    control_task = asyncio.create_task(control(), name=f"fleet-ctl-{worker_id}")
    await started.wait()
    wall_start = time.perf_counter()

    tasks: list[asyncio.Task] = [
        asyncio.create_task(local_dispatcher(), name=f"fleet-local-{worker_id}")
    ]
    for peer, link in sorted(links.items()):
        link.task = asyncio.create_task(
            link.pump(), name=f"fleet-link-{worker_id}-{peer}"
        )
        tasks.append(link.task)
        if spec.heartbeat_interval_s > 0:
            link.heartbeat_task = asyncio.create_task(
                link.heartbeat(), name=f"fleet-hb-{worker_id}-{peer}"
            )
            tasks.append(link.heartbeat_task)
    if owns_source:
        tasks.append(asyncio.create_task(replay(), name="fleet-replay"))

    await finish.wait()
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)
    for link in links.values():
        writer = link.writer
        if writer is None:
            continue
        if not writer.is_closing():
            writer.write(encode_message(Bye(src=worker_id)))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    server.close()
    await server.wait_closed()
    await control_task  # returned at "finish"

    report.wall_seconds = time.perf_counter() - wall_start
    report.queue_stalls = sum(link.queue.stalls for link in links.values())
    accumulator, per_pair, span = _score(network, spec.duration, only=local_repos)
    del accumulator  # the supervisor re-accumulates from the pairs
    report.per_pair_loss = per_pair
    report.span_s = span
    if local_clients:
        report.client_loss = _score_clients(
            network, spec.duration, only=local_clients
        )
    senders = [network.repositories[r] for r in local_repos]
    if owns_source:
        senders.append(network.source_node)
    report.client_messages = sum(node.client_messages for node in senders)
    if recorder is not None:
        metrics = recorder.metrics
        metrics.counter("fleet.reconnects").inc(report.reconnects)
        metrics.counter("fleet.resync_frames").inc(report.resync_frames)
        metrics.counter("fleet.heartbeats").inc(report.heartbeats)
        metrics.counter("fleet.queue_stalls").inc(report.queue_stalls)
        metrics.counter("fleet.stats_frames").inc(report.stats_frames)
        report.spans = recorder.events
        report.metrics_snapshot = metrics.snapshot()
    conn.send(("report", worker_id, report))

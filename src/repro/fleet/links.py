"""Backpressured send queues for worker-to-worker links.

``asyncio.Queue(maxsize=n)`` blocks producers the moment the queue is
full and wakes them one slot at a time, which under a bursty source
turns into lockstep producer/consumer ping-pong.  A watermark queue
gives the link hysteresis: producers run freely until the *high*
watermark, then stall as a group until the writer task drains the
backlog below the *low* watermark.  The stall counter is exported into
the worker's report so a fleet run can show where backpressure
actually bit.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import ConfigurationError

__all__ = ["SendQueue"]


class SendQueue:
    """FIFO with high/low watermark backpressure.

    Args:
        high: Queue depth at which :meth:`put` starts blocking.
        low: Depth the consumer must drain to before blocked producers
            resume; must be below ``high``.
    """

    def __init__(self, high: int = 256, low: int = 64) -> None:
        if high < 1:
            raise ConfigurationError(f"high watermark must be >= 1, got {high!r}")
        if not 0 <= low < high:
            raise ConfigurationError(
                f"low watermark must be in [0, high), got {low!r} for high {high!r}"
            )
        self.high = high
        self.low = low
        #: Times a producer blocked on the high watermark.
        self.stalls = 0
        self._items: deque = deque()
        self._writable = asyncio.Event()
        self._writable.set()
        self._readable = asyncio.Event()

    def __len__(self) -> int:
        return len(self._items)

    async def put(self, item) -> None:
        """Enqueue, blocking while the backlog sits above the watermarks."""
        if not self._writable.is_set():
            self.stalls += 1
            await self._writable.wait()
        self._items.append(item)
        self._readable.set()
        if len(self._items) >= self.high:
            self._writable.clear()

    def put_nowait(self, item) -> None:
        """Enqueue without ever blocking (control frames jump backpressure)."""
        self._items.append(item)
        self._readable.set()
        if len(self._items) >= self.high:
            self._writable.clear()

    async def get(self):
        """Dequeue the oldest item, waiting for one when empty."""
        while not self._items:
            self._readable.clear()
            await self._readable.wait()
        item = self._items.popleft()
        if not self._writable.is_set() and len(self._items) <= self.low:
            self._writable.set()
        return item

    def drain_nowait(self) -> list:
        """Empty the queue synchronously (teardown path)."""
        items = list(self._items)
        self._items.clear()
        self._writable.set()
        return items

"""Distributed live fleet: the d3g sharded across worker processes.

The fleet runs the same sans-io nodes as the single-process live layer
(:mod:`repro.live.nodes`), but spread over N worker processes, each
hosting a shard of the repositories (plus the clients attached to
them), speaking the hardened wire protocol of
:mod:`repro.live.protocol` over worker-to-worker TCP links:

- :mod:`repro.fleet.sharding` -- deterministic shard assignment from
  the frozen config's dissemination graph;
- :mod:`repro.fleet.antientropy` -- setdiscovery-style sampled resync
  of a repository against its parent after a severed link;
- :mod:`repro.fleet.links` -- per-connection send queues with high/low
  watermark backpressure;
- :mod:`repro.fleet.worker` -- the per-process asyncio runtime;
- :mod:`repro.fleet.supervisor` -- process orchestration and the
  fleet-wide merged :class:`~repro.live.harness.LiveRunResult`.
"""

from repro.fleet.antientropy import (
    AntiEntropyCost,
    ChildSession,
    ParentView,
    full_transfer_cost,
    heads_digest,
    run_resync,
)
from repro.fleet.sharding import ShardPlan, plan_shards
from repro.fleet.supervisor import merge_reports, run_fleet, run_fleet_loadgen
from repro.fleet.worker import WorkerReport

__all__ = [
    "AntiEntropyCost",
    "ChildSession",
    "ParentView",
    "ShardPlan",
    "WorkerReport",
    "full_transfer_cost",
    "heads_digest",
    "merge_reports",
    "plan_shards",
    "run_fleet",
    "run_fleet_loadgen",
    "run_resync",
]

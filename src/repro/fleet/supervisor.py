"""The fleet supervisor: launch workers, coordinate, merge the result.

:func:`run_fleet` is the fleet twin of :func:`~repro.live.harness.
run_live`: it computes the shard plan from the frozen config, spawns N
worker processes (:mod:`repro.fleet.worker`), hands them a shared
monotonic-clock epoch and the port map, waits for the source replay and
fleet-wide quiescence, and folds the per-worker reports into one
:class:`~repro.live.harness.LiveRunResult` via :func:`merge_reports`.

Conservation is enforced at the merge: a cross-worker frame is counted
``sent`` by its sender and ``delivered`` by its receiver, so per-worker
reports do not individually conserve -- only their sum can.  Whatever
the quiescence window leaves in flight is reconciled into ``dropped``
(wire level) and ``counters.drops`` (repository-plane level), keeping
both ``sent == delivered + dropped`` and ``messages == deliveries +
drops`` exact, the same invariants the single-process transports end
with.

The fleet runs static membership on a reliable local wire: churn,
failure schedules, adaptive re-optimization and seeded message loss
are all rejected up front rather than silently diverging from the
engine's semantics for them.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

import repro
from repro.core.clients import requirement_report
from repro.core.fidelity import FidelityAccumulator
from repro.core.metrics import CostCounters
from repro.engine.builder import build_setup
from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.fleet.sharding import plan_shards
from repro.fleet.worker import FleetSpec, WorkerReport, worker_main
from repro.live.harness import LiveRunResult
from repro.live.loadgen import ClientReport, LoadgenReport, generate_clients
from repro.obs.logsetup import get_logger

__all__ = ["merge_reports", "run_fleet", "run_fleet_loadgen"]

log = get_logger("repro.fleet.supervisor")

#: How often the supervisor polls worker stats during quiescence.
_POLL_S = 0.1


def merge_reports(
    reports: list[WorkerReport],
    *,
    tree_stats=None,
    effective_degree: int = 0,
    avg_comm_delay_ms: float = 0.0,
    wall_seconds: float = 0.0,
    extras: dict | None = None,
) -> LiveRunResult:
    """Fold per-worker reports into one fleet-wide result.

    Pure and deterministic over the report list: counters add, fidelity
    re-accumulates from the per-pair losses, and both conservation
    invariants are restored by attributing the residual in-flight count
    to drops.

    Raises:
        SimulationError: when the fleet delivered more than it sent or
            repositories recorded more deliveries than messages --
            double counting no reconciliation should paper over.
    """
    counters = CostCounters()
    accumulator = FidelityAccumulator()
    per_pair: dict[tuple[int, int], float] = {}
    client_loss: dict[int, dict[int, float]] = {}
    sent = delivered = dropped = 0
    span = 0.0
    for report in reports:
        counters.merge(report.counters)
        sent += report.sent
        delivered += report.delivered
        dropped += report.dropped
        span = max(span, report.span_s)
        for (repo, item_id), loss in report.per_pair_loss.items():
            accumulator.add(repo, item_id, loss)
            per_pair[(repo, item_id)] = loss
        client_loss.update(report.client_loss)

    residual = sent - delivered - dropped
    if residual < 0:
        raise SimulationError(
            f"fleet delivered more than it sent: sent={sent} "
            f"delivered={delivered} dropped={dropped}"
        )
    dropped += residual  # in flight at the finish line: the wire ate it

    repo_residual = counters.messages - counters.deliveries - counters.drops
    if repo_residual < 0:
        raise SimulationError(
            f"fleet repositories over-delivered: messages={counters.messages} "
            f"deliveries={counters.deliveries} drops={counters.drops}"
        )
    counters.drops += repo_residual

    merged_extras: dict = {
        "per_pair_loss": per_pair,
        "workers": len(reports),
        "shard_sizes": [r.n_local_nodes for r in sorted(reports, key=lambda r: r.worker)],
        "queue_stalls": sum(r.queue_stalls for r in reports),
        "protocol_errors": sum(r.protocol_errors for r in reports),
        "resync_frames": sum(r.resync_frames for r in reports),
        # Replay-window wall time (epoch to finish), excluding the
        # per-process spawn + rebuild that precedes the epoch.
        "worker_wall_seconds": max((r.wall_seconds for r in reports), default=0.0),
    }
    heartbeats = sum(r.heartbeats for r in reports)
    if heartbeats:
        merged_extras["heartbeats"] = heartbeats
    reconnects = sum(r.reconnects for r in reports)
    if reconnects:
        merged_extras["reconnects"] = reconnects
    if client_loss or any(r.client_messages for r in reports):
        merged_extras["client_loss"] = client_loss
        merged_extras["client_messages"] = sum(r.client_messages for r in reports)
    if extras:
        merged_extras.update(extras)

    return LiveRunResult(
        loss_of_fidelity=accumulator.system_loss(),
        per_repository_loss=accumulator.per_repository(),
        counters=counters,
        tree_stats=tree_stats,
        effective_degree=effective_degree,
        avg_comm_delay_ms=avg_comm_delay_ms,
        sim_span_s=span,
        transport="fleet",
        wall_seconds=wall_seconds,
        sent=sent,
        delivered=delivered,
        dropped=dropped,
        extras=merged_extras,
    )


def _validate(config: SimulationConfig) -> None:
    if config.churn is not None:
        raise ConfigurationError(
            "the fleet runs static membership; strip the churn schedule"
        )
    if config.failures is not None:
        raise ConfigurationError(
            "the fleet does not execute failure schedules yet; use the "
            "single-process live transports for failure injection"
        )
    if config.adaptive is not None:
        raise ConfigurationError(
            "adaptive re-optimization needs virtual-time counter "
            "snapshots; the fleet cannot provide them"
        )
    if config.message_loss_probability > 0:
        raise ConfigurationError(
            "the fleet wire is reliable TCP; seeded message loss is a "
            "single-process live feature"
        )


def _expect(conn, wanted: str, timeout: float, supervisor_state: dict):
    """Read ``conn`` until a ``wanted``-tagged message arrives.

    Interleaved ``stats``/``replay-done`` messages update the
    supervisor state dict; ``fatal`` raises with the worker traceback.
    """
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not conn.poll(remaining):
            raise SimulationError(
                f"fleet worker did not answer with {wanted!r} within "
                f"{timeout:.1f}s"
            )
        try:
            message = conn.recv()
        except EOFError:
            raise SimulationError(
                "fleet worker died before answering (spawned processes "
                "must be able to import the parent __main__ module)"
            ) from None
        tag = message[0]
        if tag == "fatal":
            raise SimulationError(
                f"fleet worker {message[1]} crashed:\n{message[2]}"
            )
        if tag == "replay-done":
            supervisor_state["replay_done"] = True
            continue
        if tag == wanted:
            return message
        if tag == "stats":
            continue  # stale poll answer: superseded
        raise SimulationError(f"unexpected fleet control message {message!r}")


def run_fleet(
    config: SimulationConfig,
    *,
    workers: int,
    duration: float | None = None,
    time_scale: float = 60.0,
    quiesce_timeout_s: float = 30.0,
    heartbeat_interval_s: float = 0.5,
    reconnect_backoff_s: float = 0.05,
    reconnect_attempts: int = 5,
    wall_stretch_cap: float = 20.0,
    queue_high: int = 256,
    queue_low: int = 64,
    resync_sample: int = 8,
    n_clients: int = 0,
    client_seed: int | None = None,
    sever_at_s: float | None = None,
    sever_worker: int = 0,
    trace_recorder=None,
) -> LiveRunResult:
    """Run one config across a multi-process fleet and merge the result.

    Args:
        config: The run's full parameterisation; must be churn-,
            failure-, adaptive- and loss-free (see module docstring).
        workers: Worker process count (1 is a degenerate all-local
            fleet, handy for debugging).
        duration: Optional replay truncation, as in ``run_live``.
        time_scale: Simulated seconds per wall second.
        quiesce_timeout_s: Wall budget for fleet-wide quiescence after
            the source replay (stretched by the same capped wall factor
            the TCP transport uses).
        heartbeat_interval_s: Per-link liveness probe interval (0
            disables).
        reconnect_backoff_s / reconnect_attempts: Link reconnect policy.
        wall_stretch_cap: Cap on the slow-``time_scale`` budget stretch.
        queue_high / queue_low: Send-queue backpressure watermarks.
        resync_sample: First anti-entropy sample-round size.
        n_clients: Synthetic loadgen clients to shard across workers
            (0 = no client plane).
        client_seed: Seed for the client population (config seed when
            ``None``).
        sever_at_s: Optional fault-injection hook -- at this simulated
            time, ``sever_worker``'s outbound links are severed so the
            reconnect + anti-entropy path runs for real.
        sever_worker: The worker the severance hits.
        trace_recorder: Optional :class:`~repro.obs.trace.TraceRecorder`
            to trace the fleet into.  Workers record spans shard-locally
            and ship them home in their reports; the supervisor absorbs
            them (in worker-id order, ids stable across shards) plus
            each worker's metrics snapshot (gauges prefixed
            ``worker{N}.``) into this recorder.  Out-of-band by design:
            the returned :class:`LiveRunResult` is bit-identical with or
            without it.

    Raises:
        ConfigurationError: on unsupported configs or worker counts.
        SimulationError: when a worker crashes or stops responding.
    """
    _validate(config)
    setup = build_setup(config)
    plan = plan_shards(setup, workers)  # validates the worker count
    wall_factor = min(wall_stretch_cap, max(1.0, 60.0 / time_scale))
    spec = FleetSpec(
        config=config,
        n_workers=workers,
        duration=duration,
        time_scale=time_scale,
        n_clients=n_clients,
        client_seed=client_seed,
        heartbeat_interval_s=heartbeat_interval_s,
        reconnect_backoff_s=reconnect_backoff_s,
        reconnect_attempts=reconnect_attempts,
        queue_high=queue_high,
        queue_low=queue_low,
        resync_sample=resync_sample,
        trace=trace_recorder is not None,
    )

    ctx = multiprocessing.get_context("spawn")
    # Spawned children re-import repro from PYTHONPATH, not from the
    # parent's already-populated sys.path; make sure they can.
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    old_pythonpath = os.environ.get("PYTHONPATH")
    parts = (old_pythonpath or "").split(os.pathsep) if old_pythonpath else []
    if src_dir not in parts:
        os.environ["PYTHONPATH"] = (
            src_dir if not old_pythonpath else src_dir + os.pathsep + old_pythonpath
        )

    conns = []
    procs = []
    wall_start = time.perf_counter()
    state = {"replay_done": False}
    try:
        for worker_id in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(worker_id, spec, child_conn),
                name=f"fleet-worker-{worker_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        log.debug("fleet: %d workers spawned (trace=%s)", workers, spec.trace)
        # Build + bind can take a while on big presets.
        ports: dict[int, int] = {}
        for conn in conns:
            _tag, worker_id, port = _expect(conn, "ready", 120.0, state)
            ports[worker_id] = port
        log.debug("fleet: all workers ready, ports=%s", ports)

        epoch = time.monotonic() + 0.25
        for conn in conns:
            conn.send(("start", ports, epoch))

        sever_due = (
            epoch + sever_at_s / time_scale if sever_at_s is not None else None
        )
        severed = False
        quiesce_deadline: float | None = None
        last_totals: tuple[int, int, int] | None = None
        while True:
            now = time.monotonic()
            if sever_due is not None and not severed and now >= sever_due:
                conns[sever_worker].send(("sever",))
                severed = True
            # Drain asynchronous worker messages (replay-done, fatal).
            for conn in conns:
                while conn.poll(0):
                    try:
                        message = conn.recv()
                    except EOFError:
                        raise SimulationError(
                            "fleet worker died mid-run"
                        ) from None
                    if message[0] == "fatal":
                        raise SimulationError(
                            f"fleet worker {message[1]} crashed:\n{message[2]}"
                        )
                    if message[0] == "replay-done":
                        state["replay_done"] = True
            if state["replay_done"]:
                if quiesce_deadline is None:
                    quiesce_deadline = (
                        time.monotonic() + quiesce_timeout_s * wall_factor
                    )
                if sever_due is not None and not severed:
                    # Let a late severance fire before quiescing.
                    pass
                else:
                    for conn in conns:
                        conn.send(("stats?",))
                    totals = [0, 0, 0]
                    pending = 0
                    for conn in conns:
                        message = _expect(conn, "stats", 30.0, state)
                        totals[0] += message[2]
                        totals[1] += message[3]
                        totals[2] += message[4]
                        pending += message[5]
                    snapshot = tuple(totals)
                    if (
                        pending == 0
                        and snapshot == last_totals
                        and totals[0] == totals[1] + totals[2]
                    ):
                        break  # two stable, conserved snapshots: quiet
                    last_totals = snapshot
                    if time.monotonic() > quiesce_deadline:
                        break  # give up; residual reconciles to drops
            time.sleep(_POLL_S)

        log.debug("fleet: quiesced, collecting reports")
        for conn in conns:
            conn.send(("finish",))
        reports: list[WorkerReport] = []
        for conn in conns:
            message = _expect(conn, "report", 60.0 * wall_factor, state)
            reports.append(message[2])
        for proc in procs:
            proc.join(timeout=30.0)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in conns:
            conn.close()
        if old_pythonpath is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = old_pythonpath

    if trace_recorder is not None:
        # Worker-id order keeps the merged stream deterministic over
        # shard assignment; update ids are already fleet-global.
        for report in sorted(reports, key=lambda r: r.worker):
            trace_recorder.absorb(report.spans)
            trace_recorder.metrics.absorb(
                report.metrics_snapshot, gauge_prefix=f"worker{report.worker}."
            )

    extras = {
        "workload": config.workload.name,
        "policy": config.policy,
        "time_scale": time_scale,
    }
    if sever_at_s is not None:
        extras["severed_worker"] = sever_worker
    return merge_reports(
        reports,
        tree_stats=setup.graph.stats(),
        effective_degree=setup.effective_degree,
        avg_comm_delay_ms=setup.avg_comm_delay_ms,
        wall_seconds=time.perf_counter() - wall_start,
        extras=extras,
    )


def run_fleet_loadgen(
    config: SimulationConfig,
    n_clients: int,
    *,
    workers: int,
    seed: int | None = None,
    duration: float | None = None,
    time_scale: float = 60.0,
    **fleet_knobs,
) -> LoadgenReport:
    """Shard the load generator across a fleet and merge the report.

    The population is generated from the same seeded stream the workers
    use (each worker regenerates it deterministically and hosts the
    clients of its shard's repositories), so the requirement-met table
    is computed against exactly the clients that ran.
    """
    setup = build_setup(config)
    population = generate_clients(config, n_clients, seed=seed, setup=setup)
    result = run_fleet(
        config,
        workers=workers,
        duration=duration,
        time_scale=time_scale,
        n_clients=n_clients,
        client_seed=seed,
        **fleet_knobs,
    )
    served: dict[tuple[int, int], float] = {}
    for node, node_state in setup.graph.nodes.items():
        if node == setup.graph.source:
            continue
        for item_id, c in node_state.receive_c.items():
            served[(node, item_id)] = c
    met_by_client = requirement_report(population, served)
    observed = result.extras.get("client_loss", {})

    report = LoadgenReport(result=result)
    for client in population.clients:
        met = met_by_client[client.client_id]
        report.clients.append(
            ClientReport(
                client_id=client.client_id,
                repository=client.repository,
                requirements=dict(client.requirements),
                served_c={
                    item_id: served[(client.repository, item_id)]
                    for item_id in client.requirements
                    if (client.repository, item_id) in served
                },
                observed_loss=dict(observed.get(client.client_id, {})),
                met=met,
            )
        )
        report.n_requirements += len(met)
        report.n_met += sum(met.values())
    return report

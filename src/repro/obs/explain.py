"""Fidelity-violation explainer: from loss segment to causal chain.

A run reports *that* a ``(repository, item)`` pair lost fidelity
(``result.extras["per_pair_loss"]``); this module reconstructs *why*
from the span stream of a traced run.  For every update of the item the
repository never applied, :func:`explain_pair` walks the dissemination
path upward from the repository -- following the trace's own record of
who forwards to whom -- until it finds the terminal event:

- a ``drop`` span (``crash`` / ``partition`` / ``loss`` / ``departed`` /
  ``wire``) names the hop where the message died;
- a non-forwarded ``check`` span names the hop whose coherency filter
  held the update back (legitimate filtering, not a violation);
- a suppressed ``source`` span means no dependent tolerance was
  violated and the update was never meant to travel.

The walk needs no topology input: parent candidates are recovered from
the item's own spans (any node that ever checked, forwarded or dropped
toward the child), which keeps the explainer correct across failover
re-homing and adaptive rewiring -- whatever edges actually carried
traffic are the edges the walk follows.

``python -m repro obs explain`` wraps this end-to-end: re-run a config
deterministically with tracing enabled, score it, and explain every
loss segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.obs.trace import SpanEvent, TraceRecorder

__all__ = [
    "Explanation",
    "explain_pair",
    "explain_loss_segments",
    "format_explanation",
]


@dataclass(frozen=True)
class Explanation:
    """Terminal cause for one undelivered update at one repository.

    Attributes:
        repository / item_id / update_id: The loss segment coordinates.
        verdict: ``dropped`` | ``filtered`` | ``suppressed`` |
            ``delivered`` | ``unexplained``.
        node / dst: The hop where the update's journey ended (``node``
            sent or decided, ``dst`` never received); ``None`` for
            source-suppressed updates and unexplained gaps.
        reason: Drop cause or filter rule from the terminal span.
        time: Simulated time of the terminal span.
        path: Nodes walked upward from the repository (repository
            first) before the terminal hop was found.
    """

    repository: int
    item_id: int
    update_id: int
    verdict: str
    node: int | None = None
    dst: int | None = None
    reason: str | None = None
    time: float | None = None
    path: tuple[int, ...] = ()


def _item_events(events: Iterable[SpanEvent], item_id: int) -> list[SpanEvent]:
    return [ev for ev in events if ev.item_id == item_id]


def _upstream_candidates(events: Sequence[SpanEvent]) -> dict[int, list[int]]:
    """Who has ever sent (or tried to send) toward each node, per item."""
    upstream: dict[int, set[int]] = {}
    for ev in events:
        if ev.dst is not None and ev.kind in ("check", "forward", "drop"):
            upstream.setdefault(ev.dst, set()).add(ev.node)
    return {dst: sorted(nodes) for dst, nodes in upstream.items()}


def _explain_update(
    events: Sequence[SpanEvent],
    upstream: Mapping[int, list[int]],
    repository: int,
    item_id: int,
    update_id: int,
) -> Explanation:
    """Walk upward from ``repository`` to the terminal span of one update."""
    into: dict[int, list[SpanEvent]] = {}
    delivered: set[int] = set()
    source_span: SpanEvent | None = None
    for ev in events:
        if ev.update_id != update_id:
            continue
        if ev.kind == "deliver":
            delivered.add(ev.node)
        elif ev.kind == "source":
            source_span = ev
        elif ev.dst is not None:
            into.setdefault(ev.dst, []).append(ev)

    def walk(node: int, path: tuple[int, ...]) -> Explanation | None:
        if node in path:
            return None
        path = path + (node,)
        for ev in into.get(node, ()):
            if ev.kind == "drop":
                return Explanation(
                    repository, item_id, update_id,
                    verdict="dropped", node=ev.node, dst=node,
                    reason=ev.reason, time=ev.time, path=path,
                )
            if ev.kind == "check" and ev.forwarded is False:
                return Explanation(
                    repository, item_id, update_id,
                    verdict="filtered", node=ev.node, dst=node,
                    reason=ev.reason, time=ev.time, path=path,
                )
        if node in delivered or into.get(node):
            # The node received the update but the trace shows no edge
            # decision toward the hop below it -- a rewiring window gap.
            return Explanation(
                repository, item_id, update_id,
                verdict="unexplained", node=node, dst=None,
                reason="no-edge-decision-recorded", path=path,
            )
        if source_span is not None and node == source_span.node:
            if source_span.forwarded is False:
                return Explanation(
                    repository, item_id, update_id,
                    verdict="suppressed", node=node, dst=None,
                    reason=source_span.reason, time=source_span.time, path=path,
                )
            return None
        for parent in upstream.get(node, ()):
            found = walk(parent, path)
            if found is not None:
                return found
        return None

    if repository in delivered:
        return Explanation(repository, item_id, update_id, verdict="delivered")
    found = walk(repository, ())
    if found is not None:
        return found
    return Explanation(
        repository, item_id, update_id,
        verdict="unexplained", reason="no-terminal-span-found",
        path=(repository,),
    )


def explain_pair(
    recorder: TraceRecorder | Iterable[SpanEvent],
    repository: int,
    item_id: int,
) -> list[Explanation]:
    """Explain every undelivered update of ``item_id`` at ``repository``.

    Returns one :class:`Explanation` per disseminated update the
    repository never applied, in update order.  Source-suppressed
    updates are included (verdict ``suppressed``) because they are part
    of the causal story of a stale pair, even though no message existed.
    """
    events = recorder.events if isinstance(recorder, TraceRecorder) else list(recorder)
    events = _item_events(events, item_id)
    upstream = _upstream_candidates(events)
    delivered_here = {
        ev.update_id for ev in events if ev.kind == "deliver" and ev.node == repository
    }
    update_ids = sorted({ev.update_id for ev in events})
    return [
        _explain_update(events, upstream, repository, item_id, update_id)
        for update_id in update_ids
        if update_id not in delivered_here
    ]


def explain_loss_segments(
    recorder: TraceRecorder | Iterable[SpanEvent],
    per_pair_loss: Mapping[tuple[int, int], float],
) -> dict[tuple[int, int], list[Explanation]]:
    """Explain every ``(repository, item)`` pair with nonzero loss.

    ``per_pair_loss`` is the ``result.extras["per_pair_loss"]`` mapping
    produced by both the simulation kernels and the live harness.
    """
    return {
        (repo, item_id): explain_pair(recorder, repo, item_id)
        for (repo, item_id), loss in sorted(per_pair_loss.items())
        if loss > 0.0
    }


def format_explanation(exp: Explanation) -> str:
    """One human-readable line per explanation."""
    where = f"repo {exp.repository} item {exp.item_id} update {exp.update_id}"
    when = f" at t={exp.time:.3f}s" if exp.time is not None else ""
    if exp.verdict == "dropped":
        return f"{where}: dropped on hop {exp.node}->{exp.dst} [{exp.reason}]{when}"
    if exp.verdict == "filtered":
        return f"{where}: filtered on hop {exp.node}->{exp.dst} [{exp.reason}]{when}"
    if exp.verdict == "suppressed":
        return f"{where}: suppressed at source {exp.node} [{exp.reason}]{when}"
    if exp.verdict == "delivered":
        return f"{where}: delivered (no violation)"
    return f"{where}: unexplained [{exp.reason}]"

"""Metrics registry: counters, gauges and histograms beyond ``CostCounters``.

:class:`~repro.core.metrics.CostCounters` is the paper's *economy* --
the message/check/drop totals the evaluation tables are built from, and
therefore part of the bit-identity contract between kernels.  This
module is everything the economy deliberately leaves out: operational
telemetry.  Per-edge simulated-latency histograms, send-queue depth and
stall gauges, heartbeat round-trip times, reconnect and resync counts,
adaptive drift per tick, result-cache hit/miss -- numbers you reach for
when a run *misbehaves*, not when you reproduce a figure.

The registry is deliberately tiny and dependency-free:

- :class:`Counter` -- a monotonically increasing integer.
- :class:`Gauge` -- a last-written float (with observed min/max).
- :class:`Histogram` -- fixed upper-bound buckets plus count/sum/min/max,
  so merged snapshots stay exact.
- :class:`MetricsRegistry` -- name-keyed get-or-create store with a
  JSON-ready :meth:`~MetricsRegistry.snapshot` and snapshot
  :meth:`~MetricsRegistry.absorb` for fleet merge (worker registries
  travel home as snapshots inside worker reports).

Nothing in this module is consulted by the engines' hot paths unless an
observer is attached, so the determinism guarantee of
:mod:`repro.obs.trace` extends to metrics collection: an attached
registry only *records*; it never feeds back into simulation state.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_MS",
]

#: Default bucket upper bounds (milliseconds) for latency histograms --
#: roughly logarithmic from LAN-local to badly congested.
DEFAULT_LATENCY_BOUNDS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-written float metric that also tracks its observed range."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        value = float(value)
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge, so ``sum(buckets) == count`` always
    holds and two histograms with equal bounds merge losslessly.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_MS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the buckets and sidecars."""
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Name-keyed get-or-create store for counters, gauges and histograms."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it at 0."""
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Return the gauge called ``name``, creating it if needed."""
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_MS
    ) -> Histogram:
        """Return the histogram called ``name``, creating it if needed."""
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> dict:
        """JSON-ready view of every metric, deterministically ordered."""

        def _finite(value: float) -> float | None:
            return value if math.isfinite(value) else None

        return {
            "counters": {
                name: metric.value for name, metric in sorted(self.counters.items())
            },
            "gauges": {
                name: {
                    "value": metric.value,
                    "min": _finite(metric.min),
                    "max": _finite(metric.max),
                }
                for name, metric in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(metric.bounds),
                    "buckets": list(metric.buckets),
                    "count": metric.count,
                    "sum": metric.total,
                    "min": _finite(metric.min),
                    "max": _finite(metric.max),
                }
                for name, metric in sorted(self.histograms.items())
            },
        }

    def absorb(self, snapshot: dict, *, gauge_prefix: str = "") -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and same-bounds histograms merge additively (exact);
        gauges are point-in-time levels with no cross-process sum, so
        they are stored under ``gauge_prefix + name`` -- the fleet
        supervisor passes ``gauge_prefix="worker3."`` to keep each
        shard's levels distinguishable.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, data in snapshot.get("gauges", {}).items():
            gauge = self.gauge(gauge_prefix + name)
            gauge.set(float(data["value"]))
            if data.get("min") is not None:
                gauge.min = min(gauge.min, float(data["min"]))
            if data.get("max") is not None:
                gauge.max = max(gauge.max, float(data["max"]))
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["bounds"]))
            if list(hist.bounds) != list(data["bounds"]):
                raise ValueError(f"histogram {name}: mismatched bounds in merge")
            for i, n in enumerate(data["buckets"]):
                hist.buckets[i] += int(n)
            hist.count += int(data["count"])
            hist.total += float(data["sum"])
            if data.get("min") is not None:
                hist.min = min(hist.min, float(data["min"]))
            if data.get("max") is not None:
                hist.max = max(hist.max, float(data["max"]))

    def write_json(self, path: str | Path) -> Path:
        """Export :meth:`snapshot` as a JSON artifact; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path

"""Deterministic per-update trace spans for every execution plane.

Each workload update gets a stable ``update_id`` -- the index of the
update in the run's time-sorted update schedule.  The scalar kernel
numbers updates as it schedules them, the vectorized kernel reuses its
drain-loop schedule index, and the live/fleet planes derive the same id
from the source sequence number (``seq - 1``), so a span stream recorded
on any plane -- or merged across fleet shards -- tells one coherent
story per update.

A trace is a flat list of :class:`SpanEvent` records, one per hop-level
decision:

``source``
    The origin examined the update (``checks`` bookkeeping for
    centralized tagging) and either disseminated or suppressed it.
``check``
    A node evaluated one child edge's coherency filter; ``forwarded``
    says whether the edge fired, ``reason`` names the policy-specific
    filter rule when it did not.
``forward``
    A message left on an edge (sums to ``CostCounters.messages``).
``drop``
    A message died in flight -- ``reason`` is one of ``partition``,
    ``loss``, ``crash``, ``departed`` or ``wire``
    (sums to ``CostCounters.drops``).
``deliver``
    A repository applied the update (sums to
    ``CostCounters.deliveries``).

**Determinism contract.**  The recorder is write-only: hook methods
append to a list (and feed the attached
:class:`~repro.obs.metrics.MetricsRegistry`) but never touch simulation
state, consume randomness, or change event ordering.  Engines guard
every hook site with ``if observer is not None``, so a run without a
recorder does no observability work at all, and a run *with* one
produces a bit-identical result -- ``tests/obs`` pins both properties.

Reconciliation.  :meth:`TraceRecorder.totals` re-derives the message
economy from spans alone; golden and property tests assert it equals
the run's ``CostCounters`` exactly.  Client-plane serving, anti-entropy
resync and reconfiguration charges are deliberately outside the span
economy, mirroring how ``CostCounters`` separates those fields from
``messages``/``drops``/``deliveries``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanEvent",
    "TraceTotals",
    "TraceRecorder",
    "FILTER_REASONS",
    "SOURCE_SUPPRESSED",
]

#: Why a ``check`` span did not forward, by policy.  Each policy filters
#: by a different rule, so the reason string is derived from the
#: config's policy name once, at recorder construction.
FILTER_REASONS = {
    "distributed": "within-tolerance-and-slack",
    "eq3_only": "within-tolerance",
    "flooding": "duplicate-value",
    "centralized": "tag-not-covering",
}

#: Reason attached to a ``source`` span whose update never left the
#: origin (no dependent tolerance was violated).
SOURCE_SUPPRESSED = "suppressed-at-source"


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One hop-level trace record.

    Attributes:
        kind: ``source`` | ``check`` | ``forward`` | ``drop`` |
            ``deliver``.
        update_id: Schedule index of the workload update (stable across
            kernels, planes and fleet shards).
        item_id: The data item the update belongs to.
        time: Simulated time of the decision, seconds.
        node: The acting node -- examining source, checking/sending
            parent, or (for ``deliver``) the receiving repository.
        dst: Edge target for ``check``/``forward``/``drop``; ``None``
            for ``source`` and ``deliver`` spans.
        checks: Coherency checks charged by this span (``source`` and
            ``check`` kinds; 0 otherwise).
        forwarded: For ``check``/``source`` spans, whether the filter
            let the update through; ``None`` otherwise.
        reason: Filter rule or drop cause; ``None`` on success spans.
        is_source: Whether ``node`` acted in its source role (splits
            check reconciliation into ``source_checks`` vs
            ``repository_checks``).
    """

    kind: str
    update_id: int
    item_id: int
    time: float
    node: int
    dst: int | None = None
    checks: int = 0
    forwarded: bool | None = None
    reason: str | None = None
    is_source: bool = False


@dataclass(frozen=True)
class TraceTotals:
    """The message economy as re-derived purely from span events."""

    messages: int = 0
    source_checks: int = 0
    repository_checks: int = 0
    deliveries: int = 0
    drops: int = 0


class TraceRecorder:
    """Collects :class:`SpanEvent` streams plus side-channel metrics.

    An instance is attached out-of-band (an ``observer=`` keyword or a
    network attribute -- never a config field, so result-cache keys are
    unaffected) and passively records what the engine was going to do
    anyway.  ``policy`` names the run's dissemination policy so filter
    reasons can be derived; ``metrics`` defaults to a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` fed with per-edge
    simulated-latency observations.
    """

    def __init__(self, policy: str | None = None, metrics: MetricsRegistry | None = None):
        self.policy = policy
        self.events: list[SpanEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._filter_reason = FILTER_REASONS.get(policy, "filtered")

    # ------------------------------------------------------------------
    # Hook methods (scalar kernel, live nodes, transports)
    # ------------------------------------------------------------------

    def on_source(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        checks: int,
        disseminated: bool,
    ) -> None:
        """The source examined one workload update."""
        self.events.append(
            SpanEvent(
                kind="source",
                update_id=update_id,
                item_id=item_id,
                time=t,
                node=node,
                checks=checks,
                forwarded=disseminated,
                reason=None if disseminated else SOURCE_SUPPRESSED,
                is_source=True,
            )
        )

    def on_check(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        dst: int,
        checks: int,
        forwarded: bool,
        is_source: bool,
    ) -> None:
        """A node evaluated one child edge's coherency filter."""
        self.events.append(
            SpanEvent(
                kind="check",
                update_id=update_id,
                item_id=item_id,
                time=t,
                node=node,
                dst=dst,
                checks=checks,
                forwarded=forwarded,
                reason=None if forwarded else self._filter_reason,
                is_source=is_source,
            )
        )

    def on_forward(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        dst: int,
        latency_s: float,
    ) -> None:
        """A message left ``node`` toward ``dst`` (arrives latency_s later)."""
        self.events.append(
            SpanEvent(
                kind="forward",
                update_id=update_id,
                item_id=item_id,
                time=t,
                node=node,
                dst=dst,
            )
        )
        self.metrics.histogram(f"edge_latency_ms[{node}->{dst}]").observe(
            latency_s * 1000.0
        )

    def on_drop(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        dst: int,
        reason: str,
    ) -> None:
        """A message from ``node`` to ``dst`` died in flight."""
        self.events.append(
            SpanEvent(
                kind="drop",
                update_id=update_id,
                item_id=item_id,
                time=t,
                node=node,
                dst=dst,
                reason=reason,
            )
        )
        self.metrics.counter(f"drops[{reason}]").inc()

    def on_deliver(self, update_id: int, item_id: int, t: float, node: int) -> None:
        """Repository ``node`` applied the update."""
        self.events.append(
            SpanEvent(
                kind="deliver",
                update_id=update_id,
                item_id=item_id,
                time=t,
                node=node,
            )
        )

    # ------------------------------------------------------------------
    # Batched hooks (vectorized kernel: one call per dissemination group)
    # ------------------------------------------------------------------

    def on_check_batch(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        children: Sequence[int],
        forwarded: Sequence[bool],
        is_source: bool,
    ) -> None:
        """One batched edge-filter evaluation over a node's children."""
        reason = self._filter_reason
        append = self.events.append
        for child, fired in zip(children, forwarded):
            append(
                SpanEvent(
                    kind="check",
                    update_id=update_id,
                    item_id=item_id,
                    time=t,
                    node=node,
                    dst=int(child),
                    checks=1,
                    forwarded=bool(fired),
                    reason=None if fired else reason,
                    is_source=is_source,
                )
            )

    def on_forward_batch(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        children: Sequence[int],
        latencies_s: Sequence[float],
    ) -> None:
        """Batched forwards from ``node`` (one span per surviving edge)."""
        append = self.events.append
        for child, latency_s in zip(children, latencies_s):
            append(
                SpanEvent(
                    kind="forward",
                    update_id=update_id,
                    item_id=item_id,
                    time=t,
                    node=node,
                    dst=int(child),
                )
            )
            self.metrics.histogram(f"edge_latency_ms[{node}->{int(child)}]").observe(
                float(latency_s) * 1000.0
            )

    def on_drop_batch(
        self,
        update_id: int,
        item_id: int,
        t: float,
        node: int,
        children: Sequence[int],
        reason: str,
    ) -> None:
        """Batched in-flight drops from ``node``, one shared reason."""
        append = self.events.append
        for child in children:
            append(
                SpanEvent(
                    kind="drop",
                    update_id=update_id,
                    item_id=item_id,
                    time=t,
                    node=node,
                    dst=int(child),
                    reason=reason,
                )
            )
        if children:
            self.metrics.counter(f"drops[{reason}]").inc(len(children))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def absorb(self, events: Iterable[SpanEvent]) -> None:
        """Append spans recorded elsewhere (fleet worker reports)."""
        self.events.extend(events)

    def spans(self, update_id: int) -> list[SpanEvent]:
        """All spans of one update, in recorded order."""
        return [ev for ev in self.events if ev.update_id == update_id]

    def by_update(self) -> dict[int, list[SpanEvent]]:
        """Spans grouped by update id (insertion order preserved)."""
        grouped: dict[int, list[SpanEvent]] = {}
        for ev in self.events:
            grouped.setdefault(ev.update_id, []).append(ev)
        return grouped

    def totals(self) -> TraceTotals:
        """Re-derive the message economy from spans alone.

        Equals the run's ``CostCounters`` fields exactly:
        ``messages``, ``source_checks``, ``repository_checks``,
        ``deliveries`` and ``drops`` -- the reconciliation identity the
        golden and property suites pin.
        """
        messages = deliveries = drops = source_checks = repository_checks = 0
        for ev in self.events:
            kind = ev.kind
            if kind == "forward":
                messages += 1
            elif kind == "deliver":
                deliveries += 1
            elif kind == "drop":
                drops += 1
            elif kind == "check":
                if ev.is_source:
                    source_checks += ev.checks
                else:
                    repository_checks += ev.checks
            elif kind == "source":
                source_checks += ev.checks
        return TraceTotals(
            messages=messages,
            source_checks=source_checks,
            repository_checks=repository_checks,
            deliveries=deliveries,
            drops=drops,
        )

    def to_jsonable(self) -> list[dict]:
        """Spans as plain dicts, ready for ``json.dump``."""
        return [asdict(ev) for ev in self.events]

    def write_json(self, path: str | Path) -> Path:
        """Export the span stream as a JSON artifact; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_jsonable(), indent=2) + "\n")
        return path

    def __len__(self) -> int:
        return len(self.events)

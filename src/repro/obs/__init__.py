"""Unified observability layer: trace spans, metrics, explanations.

Three pieces, shared by both simulation kernels, both live transports
and the multi-process fleet:

- :mod:`repro.obs.trace` -- deterministic per-update trace spans
  emitted through a zero-cost-when-disabled observer hook.  Enabling
  tracing never perturbs results: traced runs are bit-identical to
  untraced runs, and span sums reconcile exactly with
  ``CostCounters``.
- :mod:`repro.obs.metrics` -- a counters/gauges/histograms registry for
  operational telemetry outside the paper's message economy, with JSON
  snapshot export and fleet merge.
- :mod:`repro.obs.explain` -- the fidelity-violation explainer: walks a
  span stream upward from any lossy ``(repository, item)`` pair to the
  hop and reason the update never arrived.

:mod:`repro.obs.logsetup` carries the CLI logging plumbing
(``repro.*`` namespaced loggers, byte-identical default output).
"""

from repro.obs.explain import (
    Explanation,
    explain_loss_segments,
    explain_pair,
    format_explanation,
)
from repro.obs.logsetup import get_logger, setup_cli_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import SpanEvent, TraceRecorder, TraceTotals

__all__ = [
    "SpanEvent",
    "TraceRecorder",
    "TraceTotals",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Explanation",
    "explain_pair",
    "explain_loss_segments",
    "format_explanation",
    "get_logger",
    "setup_cli_logging",
]

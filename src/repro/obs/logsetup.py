"""Stdlib-``logging`` plumbing for the ``repro.*`` CLI surfaces.

All human-facing progress output flows through namespaced
``repro.<module>`` loggers instead of ad-hoc ``print`` calls, with two
invariants:

1. **Byte-identical default output.**  The CLI handler writes bare
   ``%(message)s`` lines to ``sys.stdout`` at ``INFO`` level, so every
   line that used to be ``print(text)`` is emitted unchanged --
   existing CLI golden tests keep passing without modification.
2. **Late stream binding.**  :class:`StdoutHandler` resolves
   ``sys.stdout`` at emit time rather than capturing it at
   configuration time, so pytest's ``capsys`` redirection (and any
   other stream swap) is honored even though logging configuration is
   process-global and survives across in-process CLI invocations.

``--log-level debug`` opens the diagnostic firehose: the experiment
runner, the run-all driver and the fleet supervisor log lifecycle
detail (plans, spawns, quiescence polling, merges) at ``DEBUG``.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["StdoutHandler", "setup_cli_logging", "get_logger", "LOG_LEVELS"]

#: Accepted ``--log-level`` values, in increasing verbosity order.
LOG_LEVELS = ("error", "warning", "info", "debug")


class StdoutHandler(logging.StreamHandler):
    """A ``StreamHandler`` that re-resolves ``sys.stdout`` per record."""

    def __init__(self):
        # Skip StreamHandler.__init__: it pins a stream object, and the
        # whole point of this class is to never do that.
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value):  # pragma: no cover - setter must exist, binding is ignored
        pass


def get_logger(name: str) -> logging.Logger:
    """The namespaced logger for ``name`` (conventionally ``__name__``)."""
    return logging.getLogger(name)


def setup_cli_logging(level: str | int | None = None) -> logging.Logger:
    """Configure the ``repro`` logger tree for CLI output.

    Idempotent: repeated calls (one per in-process CLI invocation under
    tests) reuse the already-attached handler and only adjust the
    level.  Returns the configured root ``repro`` logger.
    """
    logger = logging.getLogger("repro")
    if not any(isinstance(h, StdoutHandler) for h in logger.handlers):
        handler = StdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    logger.propagate = False
    if level is None:
        resolved = logging.INFO
    elif isinstance(level, str):
        resolved = getattr(logging, level.upper())
    else:
        resolved = level
    logger.setLevel(resolved)
    return logger

"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still distinguishing configuration mistakes from
runtime simulation faults.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly at runtime."""


class TopologyError(ReproError):
    """A physical-network topology is malformed or cannot be generated."""


class TraceError(ReproError):
    """A data trace is malformed, empty, or otherwise unusable."""


class TreeConstructionError(ReproError):
    """LeLA could not place a repository into the dissemination graph."""


class DisseminationError(ReproError):
    """A dissemination policy was driven with inconsistent state."""

"""Wire protocol of the live repository network.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by exactly that many bytes of UTF-8 JSON.  JSON keeps the
protocol dependency-free (the container ships no msgpack) while staying
self-describing; floats round-trip exactly because Python's JSON
encoder emits ``repr``-faithful doubles.

Message types (the ``"type"`` field):

- ``update`` -- one data-item update flowing down the ``d3g``
  (:class:`Update`);
- ``heartbeat`` -- connection liveness probe the TCP transport sends
  between updates so severed peers are noticed and reconnected
  (:class:`Heartbeat`); carries no data and stays out of the
  wire-conservation accounting;
- ``bye`` -- orderly teardown marker sent by the harness
  (:class:`Bye`).

The framing helpers are transport-agnostic: :func:`encode_message`
returns the full frame, :func:`decode_payload` parses one frame body,
and :func:`read_message` is the asyncio stream reader used by the TCP
transport.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import asdict, dataclass

from repro.errors import ReproError

__all__ = [
    "ProtocolError",
    "Update",
    "Heartbeat",
    "Bye",
    "Message",
    "encode_message",
    "decode_payload",
    "read_message",
    "MAX_FRAME_BYTES",
]

#: Upper bound on one frame body; a live update is tens of bytes, so
#: anything bigger means a corrupt or hostile stream.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed or oversized frame on a live connection."""


@dataclass(frozen=True)
class Update:
    """One data-item update pushed over a service edge.

    Attributes:
        item_id: The data item.
        value: The fresh value.
        tag: The source tag threaded with the update (the centralised
            policy's maximum violated tolerance; ``None`` otherwise).
        seq: Source-assigned sequence number, unique per run -- lets
            receivers and the harness correlate wire traffic with the
            trace.
        src: Node id of the sender (the serving node, not the source).
    """

    item_id: int
    value: float
    tag: float | None
    seq: int
    src: int

    type: str = "update"


@dataclass(frozen=True)
class Heartbeat:
    """Liveness probe between updates; receivers discard it silently."""

    src: int

    type: str = "heartbeat"


@dataclass(frozen=True)
class Bye:
    """Orderly end-of-stream marker; receivers drain and close."""

    src: int

    type: str = "bye"


Message = Update | Heartbeat | Bye

_DECODERS = {"update": Update, "heartbeat": Heartbeat, "bye": Bye}


def encode_message(message: Message) -> bytes:
    """Serialise one message into a complete length-prefixed frame."""
    body = json.dumps(asdict(message), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Message:
    """Parse one frame body back into its message dataclass.

    Raises:
        ProtocolError: on non-JSON bodies, unknown types, or field
            mismatches.
    """
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(document, dict) or "type" not in document:
        raise ProtocolError(f"frame body is not a tagged object: {document!r}")
    kind = document.pop("type")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ProtocolError(
            f"unknown message type {kind!r}; known: {sorted(_DECODERS)}"
        )
    try:
        return decoder(**document)
    except TypeError as exc:
        raise ProtocolError(f"bad {kind!r} fields: {exc}") from None


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one framed message from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary.

    Raises:
        ProtocolError: on a truncated frame or an oversized length
            prefix.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(body)

"""Wire protocol of the live repository network and the fleet.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by exactly that many bytes of UTF-8 JSON.  JSON keeps the
protocol dependency-free (the container ships no msgpack) while staying
self-describing; floats round-trip exactly because Python's JSON
encoder emits ``repr``-faithful doubles.

Message types (the ``"type"`` field):

- ``hello`` -- connection handshake (:class:`Hello`): protocol version
  plus the sender's identity and connection generation, written as the
  first frame of every connection.  A version mismatch is a
  :class:`ProtocolError`; the fleet uses the generation counter to
  detect re-established connections and trigger anti-entropy resync;
- ``update`` -- one data-item update flowing down the ``d3g``
  (:class:`Update`);
- ``forward`` -- a cross-worker envelope around an update
  (:class:`Forward`): the fleet multiplexes every node of a worker over
  one connection, so the frame carries the destination node id and the
  absolute simulated arrival time the receiving worker should realise;
- ``heartbeat`` -- connection liveness probe sent between updates so
  severed peers are noticed and reconnected (:class:`Heartbeat`);
  carries no data and stays out of the wire-conservation accounting;
- ``stats`` -- periodic telemetry frame a traced fleet worker
  piggybacks on its heartbeat cadence (:class:`Stats`): wire-level
  send/deliver/drop totals plus the sender's pending-queue depth.
  Receivers fold it into their metrics registry; like heartbeats it
  stays out of the conservation accounting and is only emitted when
  the run is traced, so untraced fleet runs put nothing extra on the
  wire;
- ``resync-request`` / ``resync-response`` -- one round of the
  sample-based anti-entropy protocol (:class:`ResyncRequest`,
  :class:`ResyncResponse`; the sans-io state machines live in
  :mod:`repro.fleet.antientropy`);
- ``bye`` -- orderly teardown marker sent by the harness
  (:class:`Bye`).

The framing helpers are transport-agnostic: :func:`encode_message`
returns the full frame, :func:`decode_payload` parses one frame body,
:func:`read_message` is the asyncio stream reader used by the TCP
transports, and :class:`FrameAssembler` reassembles frames from
arbitrary byte chunks for callers that own their own socket loop.
Every malformed input -- garbage bytes, truncated frames, oversized
length prefixes, unknown message types, wrong fields -- surfaces as a
:class:`ProtocolError`, never as a raw ``json``/``struct``/``asyncio``
exception, so connection handlers can reject a bad peer without taking
the run down.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import asdict, dataclass, field

from repro.errors import ReproError

__all__ = [
    "ProtocolError",
    "Hello",
    "Update",
    "Forward",
    "Heartbeat",
    "Stats",
    "ResyncRequest",
    "ResyncResponse",
    "Bye",
    "Message",
    "FrameAssembler",
    "encode_message",
    "decode_payload",
    "read_message",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
]

#: Version of the wire protocol; bumped on any frame-shape change.  A
#: :class:`Hello` carrying a different version is rejected at handshake
#: time instead of failing mysteriously mid-stream.
PROTOCOL_VERSION = 3

#: Upper bound on one frame body; a live update is tens of bytes and an
#: anti-entropy batch a few kilobytes, so anything bigger means a
#: corrupt or hostile stream.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed or oversized frame on a live connection."""


@dataclass(frozen=True)
class Hello:
    """Connection handshake, written first on every (re)connection.

    Attributes:
        src: Sender identity -- a worker id on fleet links, a node id on
            single-process live links.
        version: The sender's :data:`PROTOCOL_VERSION`; receivers reject
            a mismatch with :class:`ProtocolError`.
        generation: How many connections the sender has opened to this
            peer, starting at 1.  A generation above 1 tells the
            receiver the previous connection was severed -- frames may
            have been dropped in between -- which is the fleet's trigger
            for an anti-entropy resync.
    """

    src: int
    version: int = PROTOCOL_VERSION
    generation: int = 1

    type: str = "hello"


@dataclass(frozen=True)
class Update:
    """One data-item update pushed over a service edge.

    Attributes:
        item_id: The data item.
        value: The fresh value.
        tag: The source tag threaded with the update (the centralised
            policy's maximum violated tolerance; ``None`` otherwise).
        seq: Source-assigned sequence number, unique per run -- lets
            receivers and the harness correlate wire traffic with the
            trace, and gives the anti-entropy protocol its per-item
            heads.
        src: Node id of the sender (the serving node, not the source).
    """

    item_id: int
    value: float
    tag: float | None
    seq: int
    src: int

    type: str = "update"


@dataclass(frozen=True)
class Forward:
    """Cross-worker envelope: one :class:`Update` plus fleet routing.

    Fleet workers multiplex all their hosted nodes over a single
    connection per peer worker, so the destination node id travels in
    the frame; ``arrival_s`` is the absolute simulated arrival time the
    sending node computed (sender-side queueing and link delay
    included), which the receiving worker realises against its own
    epoch-synchronised clock.
    """

    dst: int
    arrival_s: float
    item_id: int
    value: float
    tag: float | None
    seq: int
    src: int

    type: str = "forward"

    @classmethod
    def from_update(cls, dst: int, arrival_s: float, update: Update) -> "Forward":
        return cls(
            dst=dst,
            arrival_s=arrival_s,
            item_id=update.item_id,
            value=update.value,
            tag=update.tag,
            seq=update.seq,
            src=update.src,
        )

    def to_update(self) -> Update:
        return Update(
            item_id=self.item_id,
            value=self.value,
            tag=self.tag,
            seq=self.seq,
            src=self.src,
        )


@dataclass(frozen=True)
class Heartbeat:
    """Liveness probe between updates; receivers discard it silently."""

    src: int

    type: str = "heartbeat"


@dataclass(frozen=True)
class Stats:
    """Periodic worker telemetry, piggybacked on the heartbeat cadence.

    Only emitted by traced fleet runs (``FleetSpec.trace``); receivers
    fold the totals into their metrics registry as
    ``peer{src}.sent`` / ``.delivered`` / ``.dropped`` / ``.pending``
    gauges.  Purely observational: never counted toward wire
    conservation and never consulted by any dissemination decision.

    Attributes:
        src: Reporting worker id.
        sent / delivered / dropped: That worker's wire totals so far.
        pending: Frames queued locally (send queues + local heap).
    """

    src: int
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    pending: int = 0

    type: str = "stats"


@dataclass(frozen=True)
class ResyncRequest:
    """One child-initiated round of the sample-based anti-entropy resync.

    Attributes:
        child: Repository node pulling its missed update-set.
        parent: Serving node the child resyncs against.
        round_no: 0 for the digest probe, then 1.. for sample rounds.
        digest: Digest of the child's full per-item head set (round 0
            only; empty otherwise).
        sample: ``[item_id, seq]`` pairs of this round's sample (empty
            on the digest probe).
    """

    child: int
    parent: int
    round_no: int
    digest: str = ""
    sample: tuple = field(default_factory=tuple)

    type: str = "resync-request"


@dataclass(frozen=True)
class ResyncResponse:
    """The parent's classification of one resync round.

    Attributes:
        child / parent / round_no: Echoed from the request.
        complete: True when the digest matched -- the child missed
            nothing and the session is over in one round trip.
        known: Sampled item ids whose heads match what the parent last
            forwarded (the child is current on these).
        missing: ``[item_id, seq, value]`` triples for sampled items the
            child fell behind on -- the delta replay, batched into the
            response.
    """

    child: int
    parent: int
    round_no: int
    complete: bool = False
    known: tuple = field(default_factory=tuple)
    missing: tuple = field(default_factory=tuple)

    type: str = "resync-response"


@dataclass(frozen=True)
class Bye:
    """Orderly end-of-stream marker; receivers drain and close."""

    src: int

    type: str = "bye"


Message = (
    Hello | Update | Forward | Heartbeat | Stats | ResyncRequest | ResyncResponse | Bye
)

_DECODERS = {
    "hello": Hello,
    "update": Update,
    "forward": Forward,
    "heartbeat": Heartbeat,
    "stats": Stats,
    "resync-request": ResyncRequest,
    "resync-response": ResyncResponse,
    "bye": Bye,
}

#: Fields that travel as JSON arrays but are tuples in the dataclasses
#: (tuples keep the frozen messages hashable).
_TUPLE_FIELDS = {
    "resync-request": ("sample",),
    "resync-response": ("known", "missing"),
}


def encode_message(message: Message) -> bytes:
    """Serialise one message into a complete length-prefixed frame."""
    body = json.dumps(asdict(message), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Message:
    """Parse one frame body back into its message dataclass.

    Raises:
        ProtocolError: on non-JSON bodies, unknown types, or field
            mismatches.
    """
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(document, dict) or "type" not in document:
        raise ProtocolError(f"frame body is not a tagged object: {document!r}")
    kind = document.pop("type")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ProtocolError(
            f"unknown message type {kind!r}; known: {sorted(_DECODERS)}"
        )
    for name in _TUPLE_FIELDS.get(kind, ()):
        value = document.get(name)
        if isinstance(value, list):
            document[name] = tuple(
                tuple(entry) if isinstance(entry, list) else entry
                for entry in value
            )
    try:
        return decoder(**document)
    except TypeError as exc:
        raise ProtocolError(f"bad {kind!r} fields: {exc}") from None


def check_version(hello: Hello) -> None:
    """Reject a handshake from a peer speaking a different protocol.

    Raises:
        ProtocolError: when the peer's version differs from ours.
    """
    if hello.version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer {hello.src} speaks protocol version {hello.version}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )


__all__.append("check_version")


class FrameAssembler:
    """Incremental frame reassembly from arbitrary byte chunks.

    Transports that own their socket loop feed whatever the OS hands
    them -- half a length prefix, three frames and a bit, one byte at a
    time -- and get back complete decoded messages.  All framing
    violations (oversized length prefix, undecodable body) raise
    :class:`ProtocolError`; after an error the assembler is poisoned and
    refuses further input, because a byte stream with a bad frame has no
    trustworthy resynchronisation point.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next incomplete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Message]:
        """Absorb one chunk and return every frame it completed.

        Raises:
            ProtocolError: on an oversized length prefix or a malformed
                frame body, and on any feed after a previous error.
        """
        if self._poisoned:
            raise ProtocolError("assembler poisoned by an earlier framing error")
        self._buffer.extend(chunk)
        messages: list[Message] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return messages
            (length,) = _LENGTH.unpack(bytes(self._buffer[: _LENGTH.size]))
            if length > MAX_FRAME_BYTES:
                self._poisoned = True
                raise ProtocolError(
                    f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
                )
            if len(self._buffer) < _LENGTH.size + length:
                return messages
            body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
            del self._buffer[: _LENGTH.size + length]
            try:
                messages.append(decode_payload(body))
            except ProtocolError:
                self._poisoned = True
                raise

    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (a clean EOF point)."""
        return not self._buffer


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one framed message from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary.

    Raises:
        ProtocolError: on a truncated frame or an oversized length
            prefix.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(body)

"""The live cooperative-repository network (:mod:`repro.live`).

The paper evaluated its design with a *real implementation* pushing
trace updates over an actual network; this package is that layer for
the reproduction.  It reuses the exact artefacts a simulation run is
built from -- the LeLA-built ``d3g``, the workload traces, the network
delays, and (via :mod:`repro.core.dissemination.filtering`) the very
same per-dependent coherency filter -- and executes them as a network
of servers:

- :class:`~repro.live.nodes.SourceNode` replays a registered workload
  in real or time-scaled time;
- :class:`~repro.live.nodes.RepositoryNode` receives pushes, applies
  the shared coherency filter per dependent, and forwards along the
  ``d3g``;
- :class:`~repro.live.nodes.ClientNode` attaches with per-item
  tolerances and measures *observed* fidelity.

Node logic is sans-io: nodes consume messages and emit
:class:`~repro.live.nodes.Outbound` envelopes, and a transport drives
them.  Two transports exist (:mod:`repro.live.transport`): a
deterministic in-process transport (virtual time, seeded delays --
bit-reproducible, used for sim/live cross-validation) and localhost TCP
(real asyncio sockets speaking the length-prefixed JSON protocol of
:mod:`repro.live.protocol`).  :func:`~repro.live.harness.run_live`
turns an unchanged :class:`~repro.engine.config.SimulationConfig` into
a running network and collects a
:class:`~repro.live.harness.LiveRunResult` shaped like
:class:`~repro.engine.results.SimulationResult`.
"""

from repro.live.harness import LiveRunResult, build_live_network, run_live
from repro.live.loadgen import LoadgenReport, run_loadgen

__all__ = [
    "LiveRunResult",
    "build_live_network",
    "run_live",
    "LoadgenReport",
    "run_loadgen",
]

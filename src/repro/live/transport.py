"""Transports that drive the sans-io live network.

Two implementations with one contract -- ``run(network, duration)``
executes the network's workload replay and returns wire-level
:class:`TransportStats` whose conservation invariant
``sent == delivered + dropped`` always holds:

- :class:`InProcessTransport` -- deterministic virtual time.  Delivery
  events run on the same discrete-event kernel the simulator uses, with
  the seeded topology delays (plus optional seeded jitter), so a run is
  bit-reproducible for a fixed config seed.  This is the transport the
  ``live_crosscheck`` experiment validates the simulator against.
- :class:`TcpTransport` -- real localhost sockets.  Every node runs an
  asyncio server speaking the length-prefixed JSON protocol of
  :mod:`repro.live.protocol`; simulated time maps to the wall clock
  through ``time_scale`` (simulated seconds per wall second).  Messages
  still in flight when the quiescence timeout expires are counted as
  drops, keeping the conservation invariant exact.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.live.nodes import Outbound
from repro.live.protocol import Bye, Update, encode_message, read_message
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness builds us)
    from repro.live.harness import LiveNetwork

__all__ = ["TransportStats", "InProcessTransport", "TcpTransport", "make_transport"]


@dataclass
class TransportStats:
    """Wire-level accounting of one live run.

    Attributes:
        sent: Messages handed to the transport (repository plane and
            client plane alike).
        delivered: Messages that reached their destination node.
        dropped: Messages the transport gave up on (TCP quiescence
            timeout; always 0 in virtual time, which runs to drain).
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0

    @property
    def in_flight(self) -> int:
        """Messages sent but neither delivered nor dropped yet."""
        return self.sent - self.delivered - self.dropped

    @property
    def conserved(self) -> bool:
        """The invariant every run must end with."""
        return self.sent == self.delivered + self.dropped


class InProcessTransport:
    """Virtual-time driver: deterministic, reproducible, fast.

    Replays the workload on a fresh discrete-event kernel.  Event
    ordering matches the simulation engine's (FIFO tie-breaks in
    scheduling order), and optional delivery jitter is drawn from a
    seeded stream, so two runs of the same network are bit-identical.
    """

    name = "inprocess"

    def __init__(self, jitter_ms: float = 0.0, seed: int = 0) -> None:
        if jitter_ms < 0:
            raise ConfigurationError(f"jitter_ms must be >= 0, got {jitter_ms!r}")
        self.jitter_ms = jitter_ms
        self.seed = seed

    def run(self, network: "LiveNetwork", duration: float | None = None) -> TransportStats:
        stats = TransportStats()
        kernel = Simulator()
        jitter_rng = (
            RandomStreams(self.seed).stream("live-jitter")
            if self.jitter_ms > 0.0
            else None
        )

        def dispatch(outs: list[Outbound]) -> None:
            for out in outs:
                stats.sent += 1
                arrival = out.arrival_s
                if jitter_rng is not None:
                    arrival += jitter_rng.random() * self.jitter_ms / 1000.0
                kernel.schedule_at(arrival, deliver, out)

        def deliver(out: Outbound) -> None:
            stats.delivered += 1
            dispatch(network.node(out.dst).on_message(out.update, kernel.now))

        def source_update(item_id: int, value: float) -> None:
            dispatch(network.source_node.on_update(item_id, value, kernel.now))

        for t, item_id, value in network.source_schedule(duration):
            kernel.schedule_at(t, source_update, item_id, value)
        kernel.run()
        if not stats.conserved:  # defensive: a drained kernel cannot leak
            raise SimulationError(
                f"in-process transport leaked messages: {stats}"
            )
        return stats


class TcpTransport:
    """Localhost TCP driver: one asyncio server per node, real frames.

    ``time_scale`` maps simulated seconds to wall seconds (``600`` runs
    a 600 s trace in about one wall second).  The driver replays the
    source schedule against the wall clock, realises each message's
    simulated delay as a scheduled socket write, and after the replay
    waits up to ``quiesce_timeout_s`` wall seconds for in-flight
    messages to land; whatever remains is counted as dropped.
    """

    name = "tcp"

    def __init__(
        self,
        time_scale: float = 60.0,
        quiesce_timeout_s: float = 30.0,
        host: str = "127.0.0.1",
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale!r}"
            )
        if quiesce_timeout_s <= 0:
            raise ConfigurationError(
                f"quiesce_timeout_s must be positive, got {quiesce_timeout_s!r}"
            )
        self.time_scale = time_scale
        self.quiesce_timeout_s = quiesce_timeout_s
        self.host = host

    def run(self, network: "LiveNetwork", duration: float | None = None) -> TransportStats:
        return asyncio.run(self._main(network, duration))

    async def _main(
        self, network: "LiveNetwork", duration: float | None
    ) -> TransportStats:
        stats = TransportStats()
        loop = asyncio.get_running_loop()
        quiet = asyncio.Event()
        replay_done = False
        servers: dict[int, asyncio.Server] = {}
        ports: dict[int, int] = {}
        # (src is irrelevant to routing: one connection per destination.)
        writers: dict[int, asyncio.StreamWriter] = {}
        # Per destination: a due-time heap plus a wakeup event.  A plain
        # FIFO would let one long-delay frame head-of-line-block frames
        # from other senders that are due sooner; the heap realises each
        # frame at its own due time, with an enqueue counter breaking
        # ties in dispatch order (per-edge FIFO preserved).
        send_heaps: dict[int, list[tuple[float, int, bytes]]] = {}
        send_wakeups: dict[int, asyncio.Event] = {}
        enqueue_counter = itertools.count()
        sender_tasks: list[asyncio.Task] = []
        handler_tasks: set[asyncio.Task] = set()
        start_wall = loop.time()

        def sim_now() -> float:
            return (loop.time() - start_wall) * self.time_scale

        def check_quiet() -> None:
            if replay_done and stats.in_flight == 0:
                quiet.set()

        def dispatch(outs: list[Outbound]) -> None:
            for out in outs:
                stats.sent += 1
                due_wall = start_wall + out.arrival_s / self.time_scale
                heapq.heappush(
                    send_heaps[out.dst],
                    (due_wall, next(enqueue_counter), encode_message(out.update)),
                )
                send_wakeups[out.dst].set()

        async def handle_node(node_id: int, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
            task = asyncio.current_task()
            if task is not None:
                handler_tasks.add(task)
            try:
                while True:
                    message = await read_message(reader)
                    if message is None or isinstance(message, Bye):
                        break
                    assert isinstance(message, Update)
                    outs = network.node(node_id).on_message(message, sim_now())
                    dispatch(outs)
                    stats.delivered += 1
                    check_quiet()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        async def sender(dst: int) -> None:
            heap = send_heaps[dst]
            wakeup = send_wakeups[dst]
            writer = writers[dst]
            while True:
                while not heap:
                    wakeup.clear()
                    await wakeup.wait()
                due_wall = heap[0][0]
                delay = due_wall - loop.time()
                if delay > 0:
                    # Sleep toward the earliest due frame, but wake early
                    # if a new (possibly earlier-due) frame arrives.
                    wakeup.clear()
                    try:
                        await asyncio.wait_for(wakeup.wait(), timeout=delay)
                    except TimeoutError:
                        pass
                    continue  # re-evaluate the heap top either way
                _due, _seq, frame = heapq.heappop(heap)
                writer.write(frame)
                await writer.drain()

        try:
            # One server per node, OS-assigned ports.
            for node_id in network.all_node_ids():
                server = await asyncio.start_server(
                    lambda r, w, node_id=node_id: handle_node(node_id, r, w),
                    self.host,
                    0,
                )
                servers[node_id] = server
                ports[node_id] = server.sockets[0].getsockname()[1]

            # One eager connection + due-ordered sender task per destination.
            for dst in sorted({dst for _src, dst in network.edge_pairs()}):
                _reader, writer = await asyncio.open_connection(
                    self.host, ports[dst]
                )
                writers[dst] = writer
                send_heaps[dst] = []
                send_wakeups[dst] = asyncio.Event()
                sender_tasks.append(
                    asyncio.create_task(sender(dst), name=f"live-send-{dst}")
                )

            # Replay the workload against the wall clock.
            start_wall = loop.time()
            for t, item_id, value in network.source_schedule(duration):
                due = start_wall + t / self.time_scale
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                dispatch(network.source_node.on_update(item_id, value, sim_now()))

            replay_done = True
            check_quiet()
            try:
                await asyncio.wait_for(quiet.wait(), timeout=self.quiesce_timeout_s)
            except TimeoutError:
                pass
        finally:
            for task in sender_tasks:
                task.cancel()
            await asyncio.gather(*sender_tasks, return_exceptions=True)
            for writer in writers.values():
                if not writer.is_closing():
                    writer.write(encode_message(Bye(src=network.source_node.node)))
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            for server in servers.values():
                server.close()
                await server.wait_closed()
            # Handlers drain their buffered frames on EOF; wait for them
            # so the drop count below is final, not racing deliveries.
            if handler_tasks:
                done, pending = await asyncio.wait(handler_tasks, timeout=2.0)
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
        # Whatever never landed is a drop; conservation stays exact.
        stats.dropped = stats.sent - stats.delivered
        return stats


def make_transport(
    name: str,
    *,
    seed: int = 0,
    jitter_ms: float = 0.0,
    time_scale: float = 60.0,
    quiesce_timeout_s: float = 30.0,
):
    """Build a transport by registry name (``inprocess`` or ``tcp``).

    Raises:
        ConfigurationError: on an unknown transport name.
    """
    if name == InProcessTransport.name:
        return InProcessTransport(jitter_ms=jitter_ms, seed=seed)
    if name == TcpTransport.name:
        return TcpTransport(time_scale=time_scale, quiesce_timeout_s=quiesce_timeout_s)
    raise ConfigurationError(
        f"unknown live transport {name!r}; choose from "
        f"{[InProcessTransport.name, TcpTransport.name]}"
    )

"""Transports that drive the sans-io live network.

Two implementations with one contract -- ``run(network, duration)``
executes the network's workload replay and returns wire-level
:class:`TransportStats` whose conservation invariant
``sent == delivered + dropped`` always holds:

- :class:`InProcessTransport` -- deterministic virtual time.  Delivery
  events run on the same discrete-event kernel the simulator uses, with
  the seeded topology delays (plus optional seeded jitter), so a run is
  bit-reproducible for a fixed config seed.  This is the transport the
  ``live_crosscheck`` experiment validates the simulator against.
- :class:`TcpTransport` -- real localhost sockets.  Every node runs an
  asyncio server speaking the length-prefixed JSON protocol of
  :mod:`repro.live.protocol`; simulated time maps to the wall clock
  through ``time_scale`` (simulated seconds per wall second).  Messages
  still in flight when the quiescence timeout expires are counted as
  drops, keeping the conservation invariant exact.

Both transports execute unplanned failures and seeded message loss.
When the network carries a
:class:`~repro.live.harness.LiveFailureController`, repository-plane
frames toward a crashed node or over a down link become drops (charged
into the network's :class:`~repro.core.metrics.CostCounters` like the
engine's), and ``loss_probability > 0`` Bernoulli-drops frames from a
seeded stream -- the in-process transport consumes the *same*
``message-loss`` stream in the same order as the engine, so a failure
run is still bit-reproducible.  The TCP transport additionally
heartbeats every connection and transparently reconnects severed ones
with capped exponential backoff (a crash event severs the victim's
connection for real).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.live.nodes import Outbound
from repro.live.protocol import (
    Bye,
    Heartbeat,
    Hello,
    ProtocolError,
    Update,
    check_version,
    encode_message,
    read_message,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness builds us)
    from repro.live.harness import LiveNetwork

__all__ = ["TransportStats", "InProcessTransport", "TcpTransport", "make_transport"]


@dataclass
class TransportStats:
    """Wire-level accounting of one live run.

    Attributes:
        sent: Messages handed to the transport (repository plane and
            client plane alike).
        delivered: Messages that reached their destination node.
        dropped: Messages the transport gave up on: failure-schedule and
            Bernoulli-loss drops on either transport, plus whatever the
            TCP quiescence timeout abandons.
        heartbeats: TCP liveness probes written; outside the
            sent/delivered/dropped conservation (probes carry no data).
        reconnects: TCP connections re-established after a severance.
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    heartbeats: int = 0
    reconnects: int = 0

    @property
    def in_flight(self) -> int:
        """Messages sent but neither delivered nor dropped yet."""
        return self.sent - self.delivered - self.dropped

    @property
    def conserved(self) -> bool:
        """The invariant every run must end with."""
        return self.sent == self.delivered + self.dropped


class InProcessTransport:
    """Virtual-time driver: deterministic, reproducible, fast.

    Replays the workload on a fresh discrete-event kernel.  Event
    ordering matches the simulation engine's (FIFO tie-breaks in
    scheduling order), and optional delivery jitter is drawn from a
    seeded stream, so two runs of the same network are bit-identical.
    """

    name = "inprocess"

    def __init__(
        self, jitter_ms: float = 0.0, seed: int = 0, loss_probability: float = 0.0
    ) -> None:
        if jitter_ms < 0:
            raise ConfigurationError(f"jitter_ms must be >= 0, got {jitter_ms!r}")
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability!r}"
            )
        self.jitter_ms = jitter_ms
        self.seed = seed
        self.loss_probability = loss_probability

    def run(self, network: "LiveNetwork", duration: float | None = None) -> TransportStats:
        stats = TransportStats()
        kernel = Simulator()
        controller = network.failures
        repo_ids = set(network.repositories)
        jitter_rng = (
            RandomStreams(self.seed).stream("live-jitter")
            if self.jitter_ms > 0.0
            else None
        )
        # The engine's stream, consumed in the engine's order (per
        # forwarded repository-plane message, child order, after the
        # link filter), so a loss run matches the simulation bit for bit.
        loss_rng = (
            RandomStreams(self.seed).stream("message-loss")
            if self.loss_probability > 0.0
            else None
        )

        observer = network.observer

        def dispatch(outs: list[Outbound]) -> None:
            for out in outs:
                stats.sent += 1
                if out.dst in repo_ids:
                    if (
                        controller is not None
                        and (out.update.src, out.dst) in controller.down
                    ):
                        # Partition: decided before the loss draw, like
                        # the engine, so the Bernoulli stream is only
                        # consumed for frames that enter the network.
                        stats.dropped += 1
                        network.counters.record_drop()
                        if observer is not None:
                            observer.on_drop(
                                out.update.seq - 1, out.update.item_id,
                                kernel.now, out.update.src, out.dst, "partition",
                            )
                        continue
                    if (
                        loss_rng is not None
                        and loss_rng.random() < self.loss_probability
                    ):
                        stats.dropped += 1
                        network.counters.record_drop()
                        if observer is not None:
                            observer.on_drop(
                                out.update.seq - 1, out.update.item_id,
                                kernel.now, out.update.src, out.dst, "loss",
                            )
                        continue
                arrival = out.arrival_s
                if jitter_rng is not None:
                    arrival += jitter_rng.random() * self.jitter_ms / 1000.0
                kernel.schedule_at(arrival, deliver, out)

        def deliver(out: Outbound) -> None:
            if controller is not None and out.dst in controller.crashed:
                # Crashed while the frame was in flight: a drop, judged
                # at arrival time exactly like the engine's _on_delivery.
                stats.dropped += 1
                network.counters.record_drop()
                if observer is not None:
                    observer.on_drop(
                        out.update.seq - 1, out.update.item_id,
                        kernel.now, out.update.src, out.dst, "crash",
                    )
                return
            stats.delivered += 1
            dispatch(network.node(out.dst).on_message(out.update, kernel.now))

        def source_update(item_id: int, value: float) -> None:
            dispatch(network.source_node.on_update(item_id, value, kernel.now))

        if controller is not None:
            # Scheduled before the replay so a failure and an update at
            # the same instant apply the failure first -- the engine's
            # tie-break, reproduced on the same kernel.
            for event in controller.schedule.events:
                kernel.schedule_at(
                    float(event.time),
                    controller.apply_event,
                    event,
                    float(event.time),
                )
        if network.adaptive is not None:
            # Like failures: ticks enqueue before the replay, so a drift
            # evaluation and an update at the same instant run the tick
            # first -- the engines' tie-break, on the same kernel.
            for t in network.adaptive.tick_times(duration):
                kernel.schedule_at(t, network.adaptive.apply_tick, t)
        for t, item_id, value in network.source_schedule(duration):
            kernel.schedule_at(t, source_update, item_id, value)
        kernel.run()
        if not stats.conserved:  # defensive: a drained kernel cannot leak
            raise SimulationError(
                f"in-process transport leaked messages: {stats}"
            )
        return stats


class TcpTransport:
    """Localhost TCP driver: one asyncio server per node, real frames.

    ``time_scale`` maps simulated seconds to wall seconds (``600`` runs
    a 600 s trace in about one wall second).  The driver replays the
    source schedule against the wall clock, realises each message's
    simulated delay as a scheduled socket write, and after the replay
    waits up to ``quiesce_timeout_s`` wall seconds for in-flight
    messages to land; whatever remains is counted as dropped.
    """

    name = "tcp"

    def __init__(
        self,
        time_scale: float = 60.0,
        quiesce_timeout_s: float = 30.0,
        host: str = "127.0.0.1",
        loss_probability: float = 0.0,
        seed: int = 0,
        heartbeat_interval_s: float = 0.5,
        reconnect_backoff_s: float = 0.05,
        reconnect_attempts: int = 5,
        drain_timeout_s: float = 2.0,
        wall_stretch_cap: float = 20.0,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale!r}"
            )
        if quiesce_timeout_s <= 0:
            raise ConfigurationError(
                f"quiesce_timeout_s must be positive, got {quiesce_timeout_s!r}"
            )
        if drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, got {drain_timeout_s!r}"
            )
        if wall_stretch_cap < 1.0:
            raise ConfigurationError(
                f"wall_stretch_cap must be >= 1, got {wall_stretch_cap!r}"
            )
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability!r}"
            )
        if heartbeat_interval_s < 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be >= 0, got {heartbeat_interval_s!r}"
            )
        if reconnect_attempts < 1:
            raise ConfigurationError(
                f"reconnect_attempts must be >= 1, got {reconnect_attempts!r}"
            )
        self.time_scale = time_scale
        self.quiesce_timeout_s = quiesce_timeout_s
        self.host = host
        self.loss_probability = loss_probability
        self.seed = seed
        self.heartbeat_interval_s = heartbeat_interval_s
        self.reconnect_backoff_s = reconnect_backoff_s
        self.reconnect_attempts = reconnect_attempts
        self.drain_timeout_s = drain_timeout_s
        self.wall_stretch_cap = wall_stretch_cap
        # Wall budgets (quiescence wait, handler drain) assume the 60x
        # default pace; a slower time scale stretches in-flight wall
        # times proportionally, so stretch the budgets too (capped, so a
        # pathological scale cannot hang the run for hours).  Slow CI
        # boxes can raise the cap or the budgets themselves.
        self._wall_factor = min(wall_stretch_cap, max(1.0, 60.0 / time_scale))

    def run(self, network: "LiveNetwork", duration: float | None = None) -> TransportStats:
        return asyncio.run(self._main(network, duration))

    async def _main(
        self, network: "LiveNetwork", duration: float | None
    ) -> TransportStats:
        stats = TransportStats()
        loop = asyncio.get_running_loop()
        quiet = asyncio.Event()
        replay_done = False
        controller = network.failures
        repo_ids = set(network.repositories)
        loss_rng = (
            RandomStreams(self.seed).stream("message-loss")
            if self.loss_probability > 0.0
            else None
        )
        servers: dict[int, asyncio.Server] = {}
        ports: dict[int, int] = {}
        # (src is irrelevant to routing: one connection per destination.)
        writers: dict[int, asyncio.StreamWriter] = {}
        # Per destination: a due-time heap plus a wakeup event.  A plain
        # FIFO would let one long-delay frame head-of-line-block frames
        # from other senders that are due sooner; the heap realises each
        # frame at its own due time, with an enqueue counter breaking
        # ties in dispatch order (per-edge FIFO preserved).
        send_heaps: dict[int, list[tuple[float, int, Outbound]]] = {}
        send_wakeups: dict[int, asyncio.Event] = {}
        enqueue_counter = itertools.count()
        sender_tasks: list[asyncio.Task] = []
        aux_tasks: list[asyncio.Task] = []
        handler_tasks: set[asyncio.Task] = set()
        start_wall = loop.time()

        def sim_now() -> float:
            return (loop.time() - start_wall) * self.time_scale

        def check_quiet() -> None:
            if replay_done and stats.in_flight == 0:
                quiet.set()

        observer = network.observer

        def drop(out: Outbound, reason: str) -> None:
            """Count one schedule/loss drop, engine-comparably."""
            stats.dropped += 1
            network.counters.record_drop()
            if observer is not None:
                observer.on_drop(
                    out.update.seq - 1, out.update.item_id,
                    out.arrival_s, out.update.src, out.dst, reason,
                )
            check_quiet()

        def dispatch(outs: list[Outbound]) -> None:
            for out in outs:
                stats.sent += 1
                if (
                    loss_rng is not None
                    and out.dst in repo_ids
                    and not (
                        controller is not None
                        and controller.link_down_at(
                            out.update.src, out.dst, out.arrival_s
                        )
                    )
                    and loss_rng.random() < self.loss_probability
                ):
                    # Bernoulli loss; link-dead frames are skipped first
                    # so the stream is only consumed for frames that
                    # would enter the network (the engine's order).
                    drop(out, "loss")
                    continue
                due_wall = start_wall + out.arrival_s / self.time_scale
                heapq.heappush(
                    send_heaps[out.dst],
                    (due_wall, next(enqueue_counter), out),
                )
                send_wakeups[out.dst].set()

        async def handle_node(node_id: int, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
            task = asyncio.current_task()
            if task is not None:
                handler_tasks.add(task)
            try:
                while True:
                    try:
                        message = await read_message(reader)
                    except ProtocolError:
                        # Oversized/garbage/truncated frame: reject this
                        # connection, not the whole run.  Frames lost
                        # with it are reconciled as drops at the end.
                        break
                    if message is None or isinstance(message, Bye):
                        break
                    if isinstance(message, Hello):
                        try:
                            check_version(message)
                        except ProtocolError:
                            break  # version-mismatched peer: reject
                        continue
                    if isinstance(message, Heartbeat):
                        continue  # liveness probe: no data, no accounting
                    if not isinstance(message, Update):
                        break  # fleet-only frame on a live link: reject
                    outs = network.node(node_id).on_message(message, sim_now())
                    dispatch(outs)
                    stats.delivered += 1
                    check_quiet()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        generations: dict[int, int] = {}

        def greet(dst: int, writer: asyncio.StreamWriter) -> None:
            """Open every connection with a version/generation handshake."""
            generations[dst] = generations.get(dst, 0) + 1
            writer.write(
                encode_message(
                    Hello(
                        src=network.source_node.node,
                        generation=generations[dst],
                    )
                )
            )

        async def ensure_writer(dst: int) -> asyncio.StreamWriter | None:
            """The destination's connection, reconnecting a severed one
            with capped exponential backoff."""
            writer = writers.get(dst)
            if writer is not None and not writer.is_closing():
                return writer
            for attempt in range(self.reconnect_attempts):
                try:
                    _reader, writer = await asyncio.open_connection(
                        self.host, ports[dst]
                    )
                except OSError:
                    await asyncio.sleep(
                        self.reconnect_backoff_s * (2 ** attempt)
                    )
                    continue
                writers[dst] = writer
                greet(dst, writer)
                stats.reconnects += 1
                return writer
            return None

        async def sender(dst: int) -> None:
            heap = send_heaps[dst]
            wakeup = send_wakeups[dst]
            faulty = controller is not None and dst in repo_ids
            while True:
                while not heap:
                    wakeup.clear()
                    await wakeup.wait()
                due_wall = heap[0][0]
                delay = due_wall - loop.time()
                if delay > 0:
                    # Sleep toward the earliest due frame, but wake early
                    # if a new (possibly earlier-due) frame arrives.
                    wakeup.clear()
                    try:
                        await asyncio.wait_for(wakeup.wait(), timeout=delay)
                    except (TimeoutError, asyncio.TimeoutError):
                        pass
                    continue  # re-evaluate the heap top either way
                _due, _seq, out = heapq.heappop(heap)
                if faulty and (
                    controller.crashed_at(out.dst, out.arrival_s)
                    or controller.link_down_at(
                        out.update.src, out.dst, out.arrival_s
                    )
                ):
                    # Judged by the frame's logical arrival against the
                    # precomputed availability windows -- deterministic
                    # even when the wall clock races the event task.
                    drop(
                        out,
                        "crash"
                        if controller.crashed_at(out.dst, out.arrival_s)
                        else "partition",
                    )
                    continue
                writer = await ensure_writer(dst)
                if writer is None:
                    # Reconnect exhausted: the wire ate the frame.
                    stats.dropped += 1
                    if observer is not None:
                        observer.on_drop(
                            out.update.seq - 1, out.update.item_id,
                            out.arrival_s, out.update.src, out.dst, "wire",
                        )
                    check_quiet()
                    continue
                writer.write(encode_message(out.update))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    # Severed mid-frame (crash event): the receiver never
                    # parses a partial frame, so count it as dropped.
                    stats.dropped += 1
                    if observer is not None:
                        observer.on_drop(
                            out.update.seq - 1, out.update.item_id,
                            out.arrival_s, out.update.src, out.dst, "wire",
                        )
                    check_quiet()

        async def heartbeat(dst: int) -> None:
            probe = encode_message(Heartbeat(src=network.source_node.node))
            while True:
                await asyncio.sleep(self.heartbeat_interval_s)
                if controller is not None and dst in controller.crashed:
                    continue  # peer is down by schedule: probing is moot
                writer = await ensure_writer(dst)
                if writer is None:
                    continue
                writer.write(probe)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    continue
                stats.heartbeats += 1

        async def failure_events() -> None:
            assert controller is not None
            for event in controller.schedule.events:
                due = start_wall + float(event.time) / self.time_scale
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                controller.apply_event(event, float(event.time))
                if event.kind == "crash":
                    # Sever the victim's connection for real; senders and
                    # heartbeats reconnect on demand after recovery.
                    victim = writers.get(event.repository)
                    if victim is not None and not victim.is_closing():
                        victim.close()

        try:
            # One server per node, OS-assigned ports.
            for node_id in network.all_node_ids():
                server = await asyncio.start_server(
                    lambda r, w, node_id=node_id: handle_node(node_id, r, w),
                    self.host,
                    0,
                )
                servers[node_id] = server
                ports[node_id] = server.sockets[0].getsockname()[1]

            # One eager connection + due-ordered sender task per
            # destination.  Under failures, failover can route over
            # ancestor edges the static d3g never uses, so cover every
            # repository and every client rather than just the static
            # edge pairs.
            dsts = {dst for _src, dst in network.edge_pairs()}
            if controller is not None:
                dsts.update(repo_ids)
                dsts.update(network.clients)
            for dst in sorted(dsts):
                _reader, writer = await asyncio.open_connection(
                    self.host, ports[dst]
                )
                writers[dst] = writer
                greet(dst, writer)
                send_heaps[dst] = []
                send_wakeups[dst] = asyncio.Event()
                sender_tasks.append(
                    asyncio.create_task(sender(dst), name=f"live-send-{dst}")
                )

            # Replay the workload against the wall clock.
            start_wall = loop.time()
            if controller is not None:
                aux_tasks.append(
                    asyncio.create_task(failure_events(), name="live-failures")
                )
                if self.heartbeat_interval_s > 0:
                    for dst in sorted(repo_ids & set(send_heaps)):
                        aux_tasks.append(
                            asyncio.create_task(
                                heartbeat(dst), name=f"live-heartbeat-{dst}"
                            )
                        )
            for t, item_id, value in network.source_schedule(duration):
                due = start_wall + t / self.time_scale
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                # The source replays its own schedule, so it stamps the
                # update with the scheduled time, not the (sleep-slopped)
                # wall reading -- downstream observations stay real.
                dispatch(network.source_node.on_update(item_id, value, t))

            replay_done = True
            check_quiet()
            try:
                await asyncio.wait_for(
                    quiet.wait(),
                    timeout=self.quiesce_timeout_s * self._wall_factor,
                )
            except (TimeoutError, asyncio.TimeoutError):
                pass
        finally:
            for task in (*aux_tasks, *sender_tasks):
                task.cancel()
            await asyncio.gather(
                *aux_tasks, *sender_tasks, return_exceptions=True
            )
            for writer in writers.values():
                if not writer.is_closing():
                    writer.write(encode_message(Bye(src=network.source_node.node)))
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            for server in servers.values():
                server.close()
                await server.wait_closed()
            # Handlers drain their buffered frames on EOF; wait for them
            # so the drop count below is final, not racing deliveries.
            if handler_tasks:
                done, pending = await asyncio.wait(
                    handler_tasks, timeout=self.drain_timeout_s * self._wall_factor
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
        # Whatever never landed is a drop; conservation stays exact.
        stats.dropped = stats.sent - stats.delivered
        return stats


def make_transport(
    name: str,
    *,
    seed: int = 0,
    jitter_ms: float = 0.0,
    time_scale: float = 60.0,
    quiesce_timeout_s: float = 30.0,
    loss_probability: float = 0.0,
    heartbeat_interval_s: float = 0.5,
    reconnect_backoff_s: float = 0.05,
    reconnect_attempts: int = 5,
    drain_timeout_s: float = 2.0,
    wall_stretch_cap: float = 20.0,
):
    """Build a transport by registry name (``inprocess`` or ``tcp``).

    Raises:
        ConfigurationError: on an unknown transport name.
    """
    if name == InProcessTransport.name:
        return InProcessTransport(
            jitter_ms=jitter_ms, seed=seed, loss_probability=loss_probability
        )
    if name == TcpTransport.name:
        return TcpTransport(
            time_scale=time_scale,
            quiesce_timeout_s=quiesce_timeout_s,
            loss_probability=loss_probability,
            seed=seed,
            heartbeat_interval_s=heartbeat_interval_s,
            reconnect_backoff_s=reconnect_backoff_s,
            reconnect_attempts=reconnect_attempts,
            drain_timeout_s=drain_timeout_s,
            wall_stretch_cap=wall_stretch_cap,
        )
    raise ConfigurationError(
        f"unknown live transport {name!r}; choose from "
        f"{[InProcessTransport.name, TcpTransport.name]}"
    )

"""Client load generator for the live repository network.

Attaches a population of synthetic end clients to a live network run
and reports what each client actually observed: its per-item measured
loss of fidelity, the coherency its repository serves the item at, and
whether its requirement was met
(:func:`~repro.core.clients.requirement_report`).

Clients draw their per-item tolerances from the config's stringent/lax
mix over the items their repository stores, so a realistic share of
requirements is *stricter* than what the repository receives -- those
show up honestly as unmet, exactly the report a deployment needs before
admitting a client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clients import Client, ClientPopulation, requirement_report
from repro.core.items import CoherencyMix
from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.live.harness import LiveRunResult, build_live_network, run_live
from repro.sim.rng import RandomStreams

__all__ = ["ClientReport", "LoadgenReport", "generate_clients", "run_loadgen"]


@dataclass
class ClientReport:
    """What one synthetic client experienced.

    Attributes:
        client_id: The client.
        repository: Repository it read from.
        requirements: ``item_id -> c`` it asked for.
        served_c: ``item_id -> c`` its repository receives the item at
            (absent when the repository does not carry the item).
        observed_loss: ``item_id -> %`` measured loss at the client's
            own tolerance.
        met: ``item_id -> bool`` from the most-stringent-requirement
            report.
    """

    client_id: int
    repository: int
    requirements: dict[int, float]
    served_c: dict[int, float]
    observed_loss: dict[int, float]
    met: dict[int, bool]


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run.

    Attributes:
        result: The underlying live run (network-plane view).
        clients: Per-client observations.
        n_requirements: Total (client, item) requirements attached.
        n_met: Requirements the deployment meets.
    """

    result: LiveRunResult
    clients: list[ClientReport] = field(default_factory=list)
    n_requirements: int = 0
    n_met: int = 0

    @property
    def met_fraction(self) -> float:
        """Share of client requirements met (1.0 when none attached)."""
        if self.n_requirements == 0:
            return 1.0
        return self.n_met / self.n_requirements


def generate_clients(
    config: SimulationConfig,
    n_clients: int,
    seed: int | None = None,
    setup: SimulationSetup | None = None,
) -> ClientPopulation:
    """A seeded synthetic client population for one config.

    Clients round-robin over the repositories (sorted), want each of
    their repository's own items with probability one half (at least
    one), and draw tolerances from the config's stringent/lax mix --
    independent of what the repository negotiated, so requirements can
    be stricter than the service.  Pass a prebuilt ``setup`` to avoid
    rebuilding the topology just to read the interest profiles.
    """
    if n_clients < 1:
        raise ConfigurationError(f"n_clients must be >= 1, got {n_clients!r}")
    if setup is None:
        setup = build_setup(config)
    rng = RandomStreams(seed if seed is not None else config.seed).stream(
        "live-loadgen"
    )
    mix = CoherencyMix(t_percent=config.t_percent)
    repositories = sorted(setup.profiles)
    clients: list[Client] = []
    for client_id in range(n_clients):
        repo = repositories[client_id % len(repositories)]
        items = sorted(setup.profiles[repo].requirements)
        wanted = [i for i in items if rng.random() < 0.5]
        if not wanted:
            wanted = [items[int(rng.integers(len(items)))]]
        tolerances = mix.draw(len(wanted), rng)
        clients.append(
            Client(
                client_id=client_id,
                repository=repo,
                requirements={
                    int(i): float(c) for i, c in zip(wanted, tolerances)
                },
            )
        )
    return ClientPopulation(clients=clients)


def run_loadgen(
    config: SimulationConfig,
    n_clients: int,
    transport: str = "inprocess",
    *,
    duration: float | None = None,
    time_scale: float = 60.0,
    seed: int | None = None,
    **transport_knobs,
) -> LoadgenReport:
    """Run a live network with ``n_clients`` attached and report per-client
    observed fidelity plus the requirement-met table.

    The expensive setup (topology, traces, LeLA ``d3g``) is built once
    and shared by population generation, the network build and the
    served-coherency table.  Extra keyword arguments (heartbeat and
    reconnect knobs) pass through to :func:`~repro.live.harness.
    run_live`; failure schedules and message loss configured on
    ``config`` are honoured exactly as in a client-free run.
    """
    setup = build_setup(config)
    population = generate_clients(config, n_clients, seed=seed, setup=setup)
    network = build_live_network(config, clients=population, setup=setup)
    result = run_live(
        config,
        transport,
        duration=duration,
        time_scale=time_scale,
        network=network,
        **transport_knobs,
    )
    # The coherency each repository actually receives each item at is
    # what it can serve clients with.
    served: dict[tuple[int, int], float] = {}
    for node, state in setup.graph.nodes.items():
        if node == setup.graph.source:
            continue
        for item_id, c in state.receive_c.items():
            served[(node, item_id)] = c
    met_by_client = requirement_report(population, served)
    observed = result.extras.get("client_loss", {})

    report = LoadgenReport(result=result)
    for client in population.clients:
        met = met_by_client[client.client_id]
        report.clients.append(
            ClientReport(
                client_id=client.client_id,
                repository=client.repository,
                requirements=dict(client.requirements),
                served_c={
                    item_id: served[(client.repository, item_id)]
                    for item_id in client.requirements
                    if (client.repository, item_id) in served
                },
                observed_loss=dict(observed.get(client.client_id, {})),
                met=met,
            )
        )
        report.n_requirements += len(met)
        report.n_met += sum(met.values())
    return report

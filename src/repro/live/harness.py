"""Turn a :class:`~repro.engine.config.SimulationConfig` into a running
live network and collect a simulator-shaped result.

:func:`build_live_network` reuses the engine's builder verbatim -- the
same seeded topology, workload traces, interest profiles and LeLA-built
``d3g`` a simulation run would use -- and wires them into sans-io nodes
(:mod:`repro.live.nodes`).  :func:`run_live` drives the network with a
transport (:mod:`repro.live.transport`) and scores *observed* fidelity
from the delivery logs with the same
:func:`~repro.core.fidelity.loss_of_fidelity` computation the simulator
uses, returning a :class:`LiveRunResult` shaped like
:class:`~repro.engine.results.SimulationResult` so experiments can
compare the two planes field by field (the ``live_crosscheck``
experiment does exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.clients import ClientPopulation
from repro.core.dissemination.filtering import (
    EdgeFilter,
    SourceTagger,
    quantise_tolerance,
)
from repro.core.fidelity import FidelityAccumulator, loss_of_fidelity, segmented_loss
from repro.core.metrics import CostCounters
from repro.core.tree import TreeStats
from repro.engine.builder import SimulationSetup, build_setup, make_adaptive_controller
from repro.engine.config import SimulationConfig
from repro.engine.failures import FailureEvent, FailureSchedule
from repro.errors import ConfigurationError
from repro.live.nodes import ClientNode, RepositoryNode, SourceNode
from repro.live.transport import (
    InProcessTransport,
    TransportStats,
    make_transport,
)

__all__ = [
    "LiveNetwork",
    "LiveAdaptiveController",
    "LiveFailureController",
    "LiveRunResult",
    "build_live_network",
    "run_live",
]


@dataclass
class LiveRunResult:
    """Everything one live run produced, simulator-shaped.

    The first block of attributes mirrors
    :class:`~repro.engine.results.SimulationResult` field for field so
    sim and live runs can be compared directly; the second block adds
    the wire-level accounting only a real network has.

    Attributes:
        loss_of_fidelity: System-wide mean *observed* loss of fidelity,
            percent (0 is perfect).
        per_repository_loss: Mean observed loss per repository.
        counters: Repository-plane message/check accounting (client
            traffic is tallied separately in ``extras``).
        tree_stats: Shape of the ``d3g`` the network ran.
        effective_degree: Degree of cooperation enforced by the build.
        avg_comm_delay_ms: Mean node-to-node delay of the topology.
        sim_span_s: Observation-window length in simulated seconds.
        transport: Transport name (``inprocess`` or ``tcp``).
        wall_seconds: Wall-clock duration of the run.
        sent / delivered / dropped: Wire-level message conservation
            (``sent == delivered + dropped`` always holds at rest).
        extras: Free-form additions (client-plane observations).
    """

    loss_of_fidelity: float
    per_repository_loss: dict[int, float]
    counters: CostCounters
    tree_stats: TreeStats
    effective_degree: int
    avg_comm_delay_ms: float
    sim_span_s: float
    transport: str
    wall_seconds: float
    sent: int
    delivered: int
    dropped: int
    extras: dict = field(default_factory=dict)

    @property
    def fidelity(self) -> float:
        """System observed fidelity in percent (100 = perfect)."""
        return 100.0 - self.loss_of_fidelity

    @property
    def messages(self) -> int:
        """Repository-plane update messages sent (sim-comparable)."""
        return self.counters.messages

    @property
    def conserved(self) -> bool:
        """Message conservation: every send was delivered or dropped."""
        return self.sent == self.delivered + self.dropped

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"loss={self.loss_of_fidelity:.2f}% "
            f"messages={self.counters.messages} "
            f"delivered={self.delivered} dropped={self.dropped} "
            f"transport={self.transport} wall={self.wall_seconds:.2f}s"
        )


class LiveNetwork:
    """A built-but-not-yet-running live network.

    Holds the engine setup, the sans-io nodes, and the lookup tables a
    transport needs (node handlers, edge pairs, the source schedule).
    """

    def __init__(
        self,
        setup: SimulationSetup,
        counters: CostCounters,
        source_node: SourceNode,
        repositories: dict[int, RepositoryNode],
        clients: dict[int, ClientNode],
    ) -> None:
        self.setup = setup
        self.counters = counters
        self.source_node = source_node
        self.repositories = repositories
        #: transport node id -> client node.
        self.clients = clients
        #: Set by :func:`build_live_network` when the config carries a
        #: failure schedule; transports consult it for fault hooks.
        self.failures: LiveFailureController | None = None
        #: Set by :func:`build_live_network` when the config carries an
        #: adaptive policy; the in-process transport schedules its ticks.
        self.adaptive: LiveAdaptiveController | None = None
        #: Out-of-band trace observer (see :meth:`attach_observer`);
        #: transports consult it at their drop sites.
        self.observer = None

    def attach_observer(self, observer) -> None:
        """Attach a trace observer to the network and every node.

        Out-of-band like the engine's ``observer=`` keyword: the
        observer only records decisions, so an observed run stays
        bit-identical to an unobserved one.  Call before handing the
        network to ``run_live(..., network=network)``.
        """
        self.observer = observer
        self.source_node.observer = observer
        for repo in self.repositories.values():
            repo.observer = observer

    def node(self, node_id: int):
        """The message handler for one destination node id."""
        repo = self.repositories.get(node_id)
        if repo is not None:
            return repo
        return self.clients[node_id]

    def all_node_ids(self) -> list[int]:
        """Every transport endpoint: source, repositories, clients."""
        return [self.source_node.node, *self.repositories, *self.clients]

    def edge_pairs(self) -> list[tuple[int, int]]:
        """Every (sender, receiver) pair a message can flow over."""
        pairs: set[tuple[int, int]] = set()
        for sender in (self.source_node, *self.repositories.values()):
            for edges in sender.edges.values():
                for edge in edges:
                    pairs.add((sender.node, edge.child))
        return sorted(pairs)

    def source_schedule(self, duration: float | None = None) -> list[tuple[float, int, float]]:
        """The workload replay: (time, item, value), time-ordered.

        The sort is stable over the per-item generation order, so
        same-instant updates replay in exactly the order the simulation
        kernel's FIFO tie-break executes them.

        Args:
            duration: When set, truncate the replay to the first
                ``duration`` simulated seconds of each trace.
        """
        schedule: list[tuple[float, int, float]] = []
        for item_id, trace in self.setup.traces.items():
            changes = trace.changes()
            t_end = (
                float(trace.times[0]) + duration if duration is not None else None
            )
            # Index 0 is the priming value everyone already holds.
            for t, v in zip(changes.times[1:], changes.values[1:]):
                if t_end is not None and float(t) > t_end:
                    break
                schedule.append((float(t), item_id, float(v)))
        schedule.sort(key=lambda entry: entry[0])
        return schedule


class LiveFailureController:
    """Executes a :class:`~repro.engine.failures.FailureSchedule` against
    a built live network, mirroring the engine's failure semantics.

    The controller is the live twin of the scalar engine's
    ``_apply_failure``: a crash closes the repository's fidelity-scoring
    segments and fails its dependents over to the nearest live ancestor
    (same sorted rewiring order, same reconfiguration-cost charge); a
    recovery reopens the segments, anti-entropy-resyncs only the copies
    that diverged while the repository was down, and re-homes its
    dependents.  Transports consult it two ways:

    - the virtual-time transport schedules :meth:`apply_event` on its
      kernel (before the source replay, reproducing the engine's
      same-instant tie-break) and reads the mutable :attr:`crashed` /
      :attr:`down` sets, making an in-process failure run bit-identical
      to the simulation;
    - the TCP transport applies events from a wall-clock task and uses
      the precomputed half-open availability windows
      (:meth:`crashed_at` / :meth:`link_down_at`) so racing frames are
      judged by their logical times, not by mutable-set timing.
    """

    def __init__(self, network: LiveNetwork, schedule: FailureSchedule) -> None:
        self.network = network
        self.schedule = schedule
        #: Currently crashed repositories / currently down service links
        #: (kept current by :meth:`apply_event`).
        self.crashed: set[int] = set()
        self.down: set[tuple[int, int]] = set()
        setup = network.setup
        self._policy = setup.config.policy
        graph = setup.graph
        # Who serves whom, per item -- walked past crashed nodes to find
        # failover targets, and restored on recovery.
        self._parent_of: dict[tuple[int, int], int] = {}
        for item_id in setup.traces:
            for node in graph.nodes:
                for child, _c in graph.children_for_item(node, item_id):
                    self._parent_of[(child, item_id)] = node
        self._home_parent = dict(self._parent_of)
        #: Per (repository, item): fidelity-scoring availability segments
        #: ``[start, end-or-None, c_own]``, same shape the engine scores.
        self.segments: dict[tuple[int, int], list[list]] = {}
        for repo, profile in setup.profiles.items():
            for item_id, c_own in profile.requirements.items():
                self.segments[(repo, item_id)] = [[0.0, None, c_own]]
        self._crash_windows = schedule.crash_windows()
        self._link_windows = schedule.link_windows()
        if self._policy == "centralized":
            # (item, quantised tolerance) -> number of serving edges;
            # replays the sim policy's refcounted SourceTagger
            # transitions during failover rewiring.
            self._tol_count: dict[tuple[int, float], int] = {}
            for item_id in setup.traces:
                for node in graph.nodes:
                    for _child, c in graph.children_for_item(node, item_id):
                        key = (item_id, quantise_tolerance(c))
                        self._tol_count[key] = self._tol_count.get(key, 0) + 1

    # -- logical-time availability predicates (for the TCP transport) --

    def crashed_at(self, node: int, t: float) -> bool:
        """Was ``node`` inside a crash window at simulated time ``t``?

        Windows are half-open ``[crash, recover)``, reproducing the
        engine's tie-break: a message arriving exactly at the recovery
        instant is delivered, one at the crash instant is dropped.
        """
        for start, end in self._crash_windows.get(node, ()):
            if t >= start and (end is None or t < end):
                return True
        return False

    def link_down_at(self, sender: int, receiver: int, t: float) -> bool:
        """Was the (sender, receiver) service link down at time ``t``?"""
        for start, end in self._link_windows.get((sender, receiver), ()):
            if t >= start and (end is None or t < end):
                return True
        return False

    # -- event execution (mirrors the engine's _apply_failure) --

    def apply_event(self, event: FailureEvent, now: float) -> None:
        """Apply one crash/recover/link event to the running network."""
        if event.kind == "link_down":
            self.down.add(event.link)
            return
        if event.kind == "link_up":
            self.down.discard(event.link)
            return
        repo = event.repository
        if event.kind == "crash":
            self.crashed.add(repo)
            for (r, _item_id), segments in self.segments.items():
                if r == repo and segments and segments[-1][1] is None:
                    segments[-1][1] = now
            self._fail_over(repo, now)
        else:  # recover
            self.crashed.discard(repo)
            for (r, _item_id), segments in self.segments.items():
                if r == repo and segments and segments[-1][1] is not None:
                    segments.append([now, None, segments[-1][2]])
            self._resync(repo, now)
            self._restore_home(repo, now)

    # -- internals --

    def _sender(self, node: int):
        if node == self.network.source_node.node:
            return self.network.source_node
        return self.network.repositories[node]

    def _live_parent(self, node: int, item_id: int) -> int | None:
        parent = self._parent_of.get((node, item_id))
        while parent is not None and parent in self.crashed:
            parent = self._parent_of.get((parent, item_id))
        return parent

    def _current_value(self, node: int, item_id: int) -> float:
        if node == self.network.source_node.node:
            return self.network.source_node.values.get(
                item_id, self.network.setup.traces[item_id].initial_value
            )
        return self.network.repositories[node].deliveries[item_id][-1][1]

    def _fail_over(self, repo: int, now: float) -> None:
        """Re-home the crashed repository's dependents to backup parents.

        Client edges stay put: attached clients ride out the crash stale
        (the engine's modeled-client plane behaves identically).
        """
        sender = self.network.repositories[repo]
        moved: list[tuple[int, int, int, float, int]] = []
        for item_id, edges in sender.edges.items():
            backup = self._live_parent(repo, item_id)
            if backup is None:
                continue  # no live ancestor: dependents wait for recovery
            for edge in edges:
                if edge.is_client:
                    continue
                moved.append((repo, edge.child, item_id, edge.c_serve, backup))
        if not moved:
            return
        self._apply_moves(
            removed={(p, ch, it, c) for p, ch, it, c, _b in moved},
            added={(b, ch, it, c) for _p, ch, it, c, b in moved},
        )
        for _parent, child, item_id, _c, backup in moved:
            self._parent_of[(child, item_id)] = backup

    def _restore_home(self, repo: int, now: float) -> None:
        """Wire re-homed dependents back to their recovered home parent."""
        moved: list[tuple[int, int, int, float]] = []
        for (child, item_id), home in self._home_parent.items():
            if home != repo:
                continue
            current = self._parent_of.get((child, item_id))
            if current is None or current == repo:
                continue
            c_serve = self.network.repositories[child].receive_c.get(item_id)
            if c_serve is None:
                continue
            moved.append((current, child, item_id, c_serve))
        if not moved:
            return
        self._apply_moves(
            removed=set(moved),
            added={(repo, ch, it, c) for _cur, ch, it, c in moved},
        )
        for _current, child, item_id, _c in moved:
            self._parent_of[(child, item_id)] = repo

    def _apply_moves(self, removed: set, added: set) -> None:
        """Tear down and wire service edges, engine-identically.

        Removals run in sorted-tuple order, additions root-downward per
        item tree -- the exact orders the engine's ``_apply_diff`` uses,
        so the centralised tagger transitions and the edge-list order
        (which fixes FIFO send order) match the simulation.
        """
        network = self.network
        setup = network.setup
        network.counters.record_reconfiguration(
            n_added=len(added), n_removed=len(removed)
        )
        tagger = network.source_node.tagger
        for parent, child, item_id, c in sorted(removed):
            sender = self._sender(parent)
            edges = sender.edges.get(item_id)
            if edges is not None:
                edges[:] = [
                    e for e in edges if e.is_client or e.child != child
                ]
                if not edges:
                    del sender.edges[item_id]
            if tagger is not None:
                tau = quantise_tolerance(c)
                key = (item_id, tau)
                count = self._tol_count[key] - 1
                if count:
                    self._tol_count[key] = count
                else:
                    del self._tol_count[key]
                    tagger.remove_tolerance(item_id, tau)
        graph = setup.graph
        ordered = sorted(
            added, key=lambda e: (e[2], graph.item_depth(e[1], e[2]), e)
        )
        for parent, child, item_id, c in ordered:
            sender = self._sender(parent)
            # A re-homed child keeps its own copy: prime the fresh edge
            # filter with the child's current value, like the engine.
            initial = network.repositories[child].deliveries[item_id][-1][1]
            if tagger is not None:
                tau = quantise_tolerance(c)
                count = self._tol_count.get((item_id, tau), 0)
                self._tol_count[(item_id, tau)] = count + 1
                if count == 0:
                    tagger.add_tolerance(item_id, tau, initial)
            sender.add_edge(
                item_id,
                child,
                c,
                EdgeFilter(self._policy, c, initial),
                setup.network.delay_s(parent, child),
            )

    def _resync(self, repo: int, now: float) -> None:
        """Anti-entropy resync of a recovered repository's stale copies.

        Setdiscovery-style: one comparison against the live parent per
        subscribed item, one transfer only for items whose copy actually
        diverged while the repository was down.
        """
        node = self.network.repositories[repo]
        checks = 0
        messages = 0
        for item_id in sorted(node.receive_c):
            provider = self._live_parent(repo, item_id)
            if provider is None:
                continue  # whole ancestry down: nothing fresher to pull
            checks += 1
            value = self._current_value(provider, item_id)
            log = node.deliveries[item_id]
            if value != log[-1][1]:
                log.append((now, value))
                messages += 1
        if checks:
            self.network.counters.record_resync(checks, messages)


class LiveAdaptiveController:
    """Runs the engine's drift-triggered re-optimization on a live network.

    The decision-making is the engine's own
    :class:`~repro.engine.adaptive.AdaptiveController`, fed the live
    :class:`~repro.core.metrics.CostCounters` per-node message tallies at
    the same virtual-time tick instants both simulation kernels use --
    the live network counts messages with the same counters the engine
    charges, so the drift estimator sees identical numbers and makes
    identical rewiring decisions.  This wrapper only *executes* the
    resulting edge diffs against the sans-io nodes, in the engine's
    exact orders (removals in sorted-tuple order, additions
    root-downward per item tree of the *re-optimized* graph) with the
    engine's exact state semantics: a re-homed child keeps its own
    copy, a brand-new subscription initial-syncs the parent's current
    value (charged as reconfiguration cost, not as an update message),
    and a child the rebuild dropped entirely stops receiving but keeps
    its delivery log for fidelity scoring.

    Adaptive runs are in-process only: the virtual-time transport
    schedules :meth:`apply_tick` on its kernel before the source replay
    (ticks win same-instant ties, the engine's ordering), which makes a
    live adaptive run bit-identical to the simulation.  The wall-clock
    TCP transport cannot pin counter snapshots to exact virtual
    instants, so :func:`run_live` rejects the combination.
    """

    def __init__(self, network: LiveNetwork) -> None:
        self.network = network
        #: The engine controller that owns the drift estimator, the
        #: policy gates and the current (rebound-on-rewire) graph.
        self.controller = make_adaptive_controller(network.setup)
        setup = network.setup
        self._policy = setup.config.policy
        if self._policy == "centralized":
            # Same refcounted SourceTagger replay the failure controller
            # keeps: (item, quantised tolerance) -> number of serving
            # edges, so tagger add/remove transitions match the engine's
            # register/unregister sequence during rewiring.
            self._tol_count: dict[tuple[int, float], int] = {}
            graph = setup.graph
            for item_id in setup.traces:
                for node in graph.nodes:
                    for _child, c in graph.children_for_item(node, item_id):
                        key = (item_id, quantise_tolerance(c))
                        self._tol_count[key] = self._tol_count.get(key, 0) + 1

    def tick_times(self, duration: float | None = None) -> list[float]:
        """The run's drift-evaluation instants (``window, 2*window...``).

        Delegates to the engine controller over the same scoring span
        the engines use (the longest trace's), truncated to ``duration``
        when the replay is.
        """
        setup = self.network.setup
        if setup.update_schedule is not None:
            span = setup.update_schedule.span
        else:
            span = max(
                (trace.span for trace in setup.traces.values()), default=0.0
            )
        if duration is not None:
            span = min(span, duration)
        return self.controller.tick_times(span)

    def apply_tick(self, now: float) -> None:
        """One drift evaluation against the live counters; rewire if told."""
        diff = self.controller.on_tick(
            now, dict(self.network.counters.per_node_messages)
        )
        if diff is not None:
            self._apply_diff(diff, now)

    # -- internals (mirror the engine's _apply_diff, edge for edge) --

    def _sender(self, node: int):
        if node == self.network.source_node.node:
            return self.network.source_node
        return self.network.repositories[node]

    def _current_value(self, node: int, item_id: int) -> float:
        if node == self.network.source_node.node:
            return self.network.source_node.values.get(
                item_id, self.network.setup.traces[item_id].initial_value
            )
        return self.network.repositories[node].deliveries[item_id][-1][1]

    def _apply_diff(self, diff, now: float) -> None:
        network = self.network
        setup = network.setup
        network.counters.record_reconfiguration(
            n_added=len(diff.added), n_removed=len(diff.removed)
        )
        # on_tick rebinds the controller graph before returning the
        # diff, so this is the *re-optimized* graph -- the same one the
        # engine's _apply_diff reads for drop checks and add ordering.
        graph = self.controller.graph
        tagger = network.source_node.tagger
        for parent, child, item_id, c in sorted(diff.removed):
            sender = self._sender(parent)
            edges = sender.edges.get(item_id)
            if edges is not None:
                edges[:] = [
                    e for e in edges if e.is_client or e.child != child
                ]
                if not edges:
                    del sender.edges[item_id]
            if tagger is not None:
                tau = quantise_tolerance(c)
                key = (item_id, tau)
                count = self._tol_count[key] - 1
                if count:
                    self._tol_count[key] = count
                else:
                    del self._tol_count[key]
                    tagger.remove_tolerance(item_id, tau)
            state = graph.nodes.get(child)
            if state is None or item_id not in state.receive_c:
                # The rebuild dropped the pair entirely: the child stops
                # receiving the item (its log is kept for scoring).
                network.repositories[child].receive_c.pop(item_id, None)
        ordered = sorted(
            diff.added, key=lambda e: (e[2], graph.item_depth(e[1], e[2]), e)
        )
        for parent, child, item_id, c in ordered:
            sender = self._sender(parent)
            repo = network.repositories[child]
            value = self._current_value(parent, item_id)
            log = repo.deliveries.get(item_id)
            if log is None:
                # New subscription: initial-sync the parent's current
                # copy (reconfiguration cost, not an update message).
                repo.deliveries[item_id] = [(now, value)]
                initial = value
            else:
                # Re-homed subscription: the child keeps its own copy.
                initial = log[-1][1]
            repo.receive_c[item_id] = c
            if tagger is not None:
                tau = quantise_tolerance(c)
                count = self._tol_count.get((item_id, tau), 0)
                self._tol_count[(item_id, tau)] = count + 1
                if count == 0:
                    tagger.add_tolerance(item_id, tau, initial)
            sender.add_edge(
                item_id,
                child,
                c,
                EdgeFilter(self._policy, c, initial),
                setup.network.delay_s(parent, child),
            )


def _client_node_base(setup: SimulationSetup) -> int:
    """First transport node id free for clients (above the topology)."""
    return int(setup.network.routing.dist_ms.shape[0])


def build_live_network(
    config: SimulationConfig,
    clients: ClientPopulation | None = None,
    setup: SimulationSetup | None = None,
) -> LiveNetwork:
    """Assemble the live network for an unchanged simulation config.

    The build reuses :func:`~repro.engine.builder.build_setup` -- same
    topology, traces, profiles and LeLA ``d3g`` as a simulation of the
    same config -- then instantiates one sans-io node per graph member
    with a shared :class:`~repro.core.dissemination.filtering.EdgeFilter`
    per service edge (and the
    :class:`~repro.core.dissemination.filtering.SourceTagger` when the
    centralised policy runs).

    Args:
        config: The run's full parameterisation.  Must be churn-free
            (live membership is static for now); a failure schedule
            (``config.failures``) and seeded message loss
            (``config.message_loss_probability``) are both supported --
            the transports execute them through the attached
            :class:`LiveFailureController` and their own seeded
            Bernoulli streams.
        clients: Optional end-client population to attach; each client
            becomes a dependent of its repository, filtered at its own
            tolerance.
        setup: Optional prebuilt setup for exactly this config (skips
            rebuilding the topology/traces/``d3g``; the loadgen path
            shares one build across population generation and the run).

    Raises:
        ConfigurationError: on churn configs, or clients attached to
            unknown repositories.
    """
    if config.churn is not None:
        raise ConfigurationError(
            "the live network runs static membership; strip the churn "
            "schedule from the config before running live"
        )
    if config.adaptive is not None and clients is not None and len(clients):
        # A rewire that drops a (repository, item) pair stops the
        # engine's client service for it, but a live client edge is
        # attached state; until client re-attachment is wired through
        # the rewiring path the combination would silently diverge.
        raise ConfigurationError(
            "adaptive re-optimization does not support an attached live "
            "client population yet; drop the clients or the adaptive policy"
        )
    if setup is None:
        setup = build_setup(config)
    counters = CostCounters()
    comp_delay_s = config.comp_delay_ms / 1000.0
    graph = setup.graph
    source = setup.source

    tagger: SourceTagger | None = None
    if config.policy == "centralized":
        tagger = SourceTagger()

    source_node = SourceNode(source, comp_delay_s, counters, tagger=tagger)
    repositories: dict[int, RepositoryNode] = {
        node: RepositoryNode(
            node, comp_delay_s, counters, receive_c=dict(state.receive_c)
        )
        for node, state in graph.nodes.items()
        if node != source
    }

    # Wire the d3g exactly as the engine's _prepare does: items in trace
    # order, nodes in graph order, children in child-table order.
    for item_id in setup.traces:
        initial = setup.traces[item_id].initial_value
        for node in graph.nodes:
            children = graph.children_for_item(node, item_id)
            if not children:
                continue
            sender = source_node if node == source else repositories[node]
            for child, c_serve in children:
                if tagger is not None:
                    tagger.add_tolerance(item_id, c_serve, initial)
                sender.add_edge(
                    item_id,
                    child,
                    c_serve,
                    EdgeFilter(config.policy, c_serve, initial),
                    setup.network.delay_s(node, child),
                )
        for node, repo in repositories.items():
            if item_id in repo.receive_c:
                repo.deliveries[item_id] = [(0.0, initial)]

    client_nodes: dict[int, ClientNode] = {}
    if clients is not None and len(clients):
        base = _client_node_base(setup)
        for offset, client in enumerate(clients.clients):
            repo = repositories.get(client.repository)
            if repo is None:
                raise ConfigurationError(
                    f"client {client.client_id} attaches to unknown "
                    f"repository {client.repository}"
                )
            node_id = base + offset
            client_node = ClientNode(
                node=node_id,
                client_id=client.client_id,
                repository=client.repository,
                requirements=dict(client.requirements),
            )
            for item_id, tolerance in sorted(client.requirements.items()):
                trace = setup.traces.get(item_id)
                if trace is None:
                    raise ConfigurationError(
                        f"client {client.client_id} wants unknown item {item_id}"
                    )
                client_node.deliveries[item_id] = [(0.0, trace.initial_value)]
                if item_id not in repo.receive_c:
                    # The repository does not carry the item; the client
                    # stays on the priming value and the requirement-met
                    # report will flag it.
                    continue
                repo.add_edge(
                    item_id,
                    node_id,
                    tolerance,
                    # Client service is repository-local filtering: the
                    # Eq. (3) + Eq. (7) test at the client's tolerance,
                    # whatever policy runs in the repository plane
                    # (clients are invisible to the source's tagging).
                    EdgeFilter("distributed", tolerance, trace.initial_value),
                    link_delay_s=0.0,
                    is_client=True,
                )
            client_nodes[node_id] = client_node
    network = LiveNetwork(setup, counters, source_node, repositories, client_nodes)
    if config.failures is not None:
        network.failures = LiveFailureController(network, config.failures)
    if config.adaptive is not None:
        network.adaptive = LiveAdaptiveController(network)
    return network


def _score(
    network: LiveNetwork,
    duration: float | None,
    only: set[int] | None = None,
) -> tuple[FidelityAccumulator, dict[tuple[int, int], float], float]:
    """Observed fidelity from the delivery logs, sim-identically.

    ``only`` restricts scoring to a subset of repositories -- fleet
    workers score just their own shard and the supervisor re-merges the
    per-pair losses.
    """
    accumulator = FidelityAccumulator()
    per_pair: dict[tuple[int, int], float] = {}
    span = 0.0
    for item_id, trace in network.setup.traces.items():
        item_span = float(trace.times[-1] - trace.times[0])
        if duration is not None:
            item_span = min(item_span, duration)
        span = max(span, item_span)
    controller = network.failures
    for repo, profile in network.setup.profiles.items():
        if only is not None and repo not in only:
            continue
        node = network.repositories[repo]
        for item_id, c_own in profile.requirements.items():
            trace = network.setup.traces[item_id]
            log = node.deliveries[item_id]
            t0 = float(trace.times[0])
            t1 = float(trace.times[-1])
            if duration is not None:
                t1 = min(t1, t0 + duration)
            recv_times = [entry[0] for entry in log]
            recv_values = [entry[1] for entry in log]
            if controller is not None:
                # Duration-weight the loss over the intervals the
                # repository was actually up -- the same segments, same
                # arithmetic, the engine scores failure runs with.
                loss = segmented_loss(
                    trace.times,
                    trace.values,
                    recv_times,
                    recv_values,
                    controller.segments.get(
                        (repo, item_id), [[0.0, None, c_own]]
                    ),
                    t0,
                    t1,
                )
                if loss is None:
                    continue  # never up inside the window: nothing owed
            else:
                loss = loss_of_fidelity(
                    trace.times,
                    trace.values,
                    recv_times,
                    recv_values,
                    c_own,
                    t_start=t0,
                    t_end=t1,
                )
            accumulator.add(repo, item_id, loss)
            per_pair[(repo, item_id)] = loss
    return accumulator, per_pair, span


def _score_clients(
    network: LiveNetwork,
    duration: float | None,
    only: set[int] | None = None,
) -> dict[int, dict[int, float]]:
    """Observed per-client loss at each client's own tolerance.

    ``only`` restricts scoring to a subset of client *node ids* (fleet
    workers score the clients attached to their shard's repositories).
    """
    observed: dict[int, dict[int, float]] = {}
    for client_node in network.clients.values():
        if only is not None and client_node.node not in only:
            continue
        per_item: dict[int, float] = {}
        for item_id, tolerance in sorted(client_node.requirements.items()):
            trace = network.setup.traces[item_id]
            log = client_node.deliveries[item_id]
            t0 = float(trace.times[0])
            t1 = float(trace.times[-1])
            if duration is not None:
                t1 = min(t1, t0 + duration)
            per_item[item_id] = loss_of_fidelity(
                trace.times,
                trace.values,
                [entry[0] for entry in log],
                [entry[1] for entry in log],
                tolerance,
                t_start=t0,
                t_end=t1,
            )
        observed[client_node.client_id] = per_item
    return observed


def run_live(
    config: SimulationConfig,
    transport: str = "inprocess",
    *,
    duration: float | None = None,
    time_scale: float = 60.0,
    jitter_ms: float = 0.0,
    quiesce_timeout_s: float = 30.0,
    heartbeat_interval_s: float = 0.5,
    reconnect_backoff_s: float = 0.05,
    reconnect_attempts: int = 5,
    drain_timeout_s: float = 2.0,
    wall_stretch_cap: float = 20.0,
    clients: ClientPopulation | None = None,
    network: LiveNetwork | None = None,
) -> LiveRunResult:
    """Build, run and score one live network end to end.

    Failure schedules (``config.failures``) and seeded message loss
    (``config.message_loss_probability``) run for real: both transports
    drop by schedule and by their seeded Bernoulli streams, the TCP
    transport additionally heartbeats its connections and reconnects
    severed ones with exponential backoff, and fidelity is scored over
    the availability segments exactly like the engine.

    Args:
        config: The run's full parameterisation (identical to what a
            simulation takes).
        transport: ``inprocess`` (deterministic virtual time) or
            ``tcp`` (localhost sockets).
        duration: Optional truncation of the replay to the first
            ``duration`` simulated seconds (fidelity is scored over the
            truncated window).
        time_scale: Simulated seconds per wall second (TCP only).
        jitter_ms: Seeded per-delivery jitter bound (in-process only).
        quiesce_timeout_s: Wall seconds TCP waits for in-flight
            messages after the replay before counting them as drops
            (scaled up internally when ``time_scale`` runs slower than
            the 60x default).
        heartbeat_interval_s: Wall seconds between TCP liveness probes
            per connection (failure runs only; 0 disables).
        reconnect_backoff_s: Base of the TCP reconnect exponential
            backoff.
        reconnect_attempts: Reconnect attempts before a frame is
            dropped.
        drain_timeout_s: Wall seconds TCP grants its connection
            handlers to flush buffered frames at teardown (also scaled
            by the wall-stretch factor).
        wall_stretch_cap: Upper bound on the internal slow-``time_scale``
            budget stretch factor; raise it on slow CI machines where
            the 20x cap still flakes.
        clients: Optional end-client population to attach (ignored when
            ``network`` is given).
        network: Optional prebuilt network for exactly this config.
    """
    if duration is not None and duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration!r}")
    if config.adaptive is not None and transport != InProcessTransport.name:
        raise ConfigurationError(
            "adaptive re-optimization needs virtual-time counter "
            "snapshots; run it on the inprocess transport"
        )
    if network is None:
        network = build_live_network(config, clients=clients)
    driver = make_transport(
        transport,
        seed=config.seed,
        jitter_ms=jitter_ms,
        time_scale=time_scale,
        quiesce_timeout_s=quiesce_timeout_s,
        loss_probability=config.message_loss_probability,
        heartbeat_interval_s=heartbeat_interval_s,
        reconnect_backoff_s=reconnect_backoff_s,
        reconnect_attempts=reconnect_attempts,
        drain_timeout_s=drain_timeout_s,
        wall_stretch_cap=wall_stretch_cap,
    )
    start = time.perf_counter()
    stats: TransportStats = driver.run(network, duration=duration)
    wall = time.perf_counter() - start

    accumulator, per_pair, span = _score(network, duration)
    extras: dict = {
        "per_pair_loss": per_pair,
        "workload": config.workload.name,
        "policy": config.policy,
    }
    if network.clients:
        extras["client_loss"] = _score_clients(network, duration)
        extras["client_messages"] = sum(
            node.client_messages
            for node in (network.source_node, *network.repositories.values())
        )
    if network.failures is not None:
        schedule = network.failures.schedule
        extras["failure_events"] = len(schedule)
        extras["crashes"] = schedule.count("crash")
        extras["partitions"] = schedule.count("link_down")
        heartbeats = getattr(stats, "heartbeats", 0)
        if heartbeats:
            extras["heartbeats"] = heartbeats
        reconnects = getattr(stats, "reconnects", 0)
        if reconnects:
            extras["reconnects"] = reconnects
    # Adaptive runs report the graph they *ended* on, like the engine.
    final_graph = network.setup.graph
    if network.adaptive is not None:
        inner = network.adaptive.controller
        extras["adaptive_ticks"] = inner.ticks
        extras["adaptive_triggered"] = inner.triggered
        extras["adaptive_rewires"] = inner.rewires
        final_graph = inner.graph
    return LiveRunResult(
        loss_of_fidelity=accumulator.system_loss(),
        per_repository_loss=accumulator.per_repository(),
        counters=network.counters,
        tree_stats=final_graph.stats(),
        effective_degree=network.setup.effective_degree,
        avg_comm_delay_ms=network.setup.avg_comm_delay_ms,
        sim_span_s=span,
        transport=driver.name,
        wall_seconds=wall,
        sent=stats.sent,
        delivered=stats.delivered,
        dropped=stats.dropped,
        extras=extras,
    )

"""Turn a :class:`~repro.engine.config.SimulationConfig` into a running
live network and collect a simulator-shaped result.

:func:`build_live_network` reuses the engine's builder verbatim -- the
same seeded topology, workload traces, interest profiles and LeLA-built
``d3g`` a simulation run would use -- and wires them into sans-io nodes
(:mod:`repro.live.nodes`).  :func:`run_live` drives the network with a
transport (:mod:`repro.live.transport`) and scores *observed* fidelity
from the delivery logs with the same
:func:`~repro.core.fidelity.loss_of_fidelity` computation the simulator
uses, returning a :class:`LiveRunResult` shaped like
:class:`~repro.engine.results.SimulationResult` so experiments can
compare the two planes field by field (the ``live_crosscheck``
experiment does exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.clients import ClientPopulation
from repro.core.dissemination.filtering import EdgeFilter, SourceTagger
from repro.core.fidelity import FidelityAccumulator, loss_of_fidelity
from repro.core.metrics import CostCounters
from repro.core.tree import TreeStats
from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.live.nodes import ClientNode, RepositoryNode, SourceNode
from repro.live.transport import TransportStats, make_transport

__all__ = ["LiveNetwork", "LiveRunResult", "build_live_network", "run_live"]


@dataclass
class LiveRunResult:
    """Everything one live run produced, simulator-shaped.

    The first block of attributes mirrors
    :class:`~repro.engine.results.SimulationResult` field for field so
    sim and live runs can be compared directly; the second block adds
    the wire-level accounting only a real network has.

    Attributes:
        loss_of_fidelity: System-wide mean *observed* loss of fidelity,
            percent (0 is perfect).
        per_repository_loss: Mean observed loss per repository.
        counters: Repository-plane message/check accounting (client
            traffic is tallied separately in ``extras``).
        tree_stats: Shape of the ``d3g`` the network ran.
        effective_degree: Degree of cooperation enforced by the build.
        avg_comm_delay_ms: Mean node-to-node delay of the topology.
        sim_span_s: Observation-window length in simulated seconds.
        transport: Transport name (``inprocess`` or ``tcp``).
        wall_seconds: Wall-clock duration of the run.
        sent / delivered / dropped: Wire-level message conservation
            (``sent == delivered + dropped`` always holds at rest).
        extras: Free-form additions (client-plane observations).
    """

    loss_of_fidelity: float
    per_repository_loss: dict[int, float]
    counters: CostCounters
    tree_stats: TreeStats
    effective_degree: int
    avg_comm_delay_ms: float
    sim_span_s: float
    transport: str
    wall_seconds: float
    sent: int
    delivered: int
    dropped: int
    extras: dict = field(default_factory=dict)

    @property
    def fidelity(self) -> float:
        """System observed fidelity in percent (100 = perfect)."""
        return 100.0 - self.loss_of_fidelity

    @property
    def messages(self) -> int:
        """Repository-plane update messages sent (sim-comparable)."""
        return self.counters.messages

    @property
    def conserved(self) -> bool:
        """Message conservation: every send was delivered or dropped."""
        return self.sent == self.delivered + self.dropped

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"loss={self.loss_of_fidelity:.2f}% "
            f"messages={self.counters.messages} "
            f"delivered={self.delivered} dropped={self.dropped} "
            f"transport={self.transport} wall={self.wall_seconds:.2f}s"
        )


class LiveNetwork:
    """A built-but-not-yet-running live network.

    Holds the engine setup, the sans-io nodes, and the lookup tables a
    transport needs (node handlers, edge pairs, the source schedule).
    """

    def __init__(
        self,
        setup: SimulationSetup,
        counters: CostCounters,
        source_node: SourceNode,
        repositories: dict[int, RepositoryNode],
        clients: dict[int, ClientNode],
    ) -> None:
        self.setup = setup
        self.counters = counters
        self.source_node = source_node
        self.repositories = repositories
        #: transport node id -> client node.
        self.clients = clients

    def node(self, node_id: int):
        """The message handler for one destination node id."""
        repo = self.repositories.get(node_id)
        if repo is not None:
            return repo
        return self.clients[node_id]

    def all_node_ids(self) -> list[int]:
        """Every transport endpoint: source, repositories, clients."""
        return [self.source_node.node, *self.repositories, *self.clients]

    def edge_pairs(self) -> list[tuple[int, int]]:
        """Every (sender, receiver) pair a message can flow over."""
        pairs: set[tuple[int, int]] = set()
        for sender in (self.source_node, *self.repositories.values()):
            for edges in sender.edges.values():
                for edge in edges:
                    pairs.add((sender.node, edge.child))
        return sorted(pairs)

    def source_schedule(self, duration: float | None = None) -> list[tuple[float, int, float]]:
        """The workload replay: (time, item, value), time-ordered.

        The sort is stable over the per-item generation order, so
        same-instant updates replay in exactly the order the simulation
        kernel's FIFO tie-break executes them.

        Args:
            duration: When set, truncate the replay to the first
                ``duration`` simulated seconds of each trace.
        """
        schedule: list[tuple[float, int, float]] = []
        for item_id, trace in self.setup.traces.items():
            changes = trace.changes()
            t_end = (
                float(trace.times[0]) + duration if duration is not None else None
            )
            # Index 0 is the priming value everyone already holds.
            for t, v in zip(changes.times[1:], changes.values[1:]):
                if t_end is not None and float(t) > t_end:
                    break
                schedule.append((float(t), item_id, float(v)))
        schedule.sort(key=lambda entry: entry[0])
        return schedule


def _client_node_base(setup: SimulationSetup) -> int:
    """First transport node id free for clients (above the topology)."""
    return int(setup.network.routing.dist_ms.shape[0])


def build_live_network(
    config: SimulationConfig,
    clients: ClientPopulation | None = None,
    setup: SimulationSetup | None = None,
) -> LiveNetwork:
    """Assemble the live network for an unchanged simulation config.

    The build reuses :func:`~repro.engine.builder.build_setup` -- same
    topology, traces, profiles and LeLA ``d3g`` as a simulation of the
    same config -- then instantiates one sans-io node per graph member
    with a shared :class:`~repro.core.dissemination.filtering.EdgeFilter`
    per service edge (and the
    :class:`~repro.core.dissemination.filtering.SourceTagger` when the
    centralised policy runs).

    Args:
        config: The run's full parameterisation.  Must be churn-free
            (live membership is static for now) and loss-free (the
            transports do not inject message loss).
        clients: Optional end-client population to attach; each client
            becomes a dependent of its repository, filtered at its own
            tolerance.
        setup: Optional prebuilt setup for exactly this config (skips
            rebuilding the topology/traces/``d3g``; the loadgen path
            shares one build across population generation and the run).

    Raises:
        ConfigurationError: on churn or loss-injection configs, or
            clients attached to unknown repositories.
    """
    if config.churn is not None:
        raise ConfigurationError(
            "the live network runs static membership; strip the churn "
            "schedule from the config before running live"
        )
    if config.message_loss_probability > 0.0:
        raise ConfigurationError(
            "the live network does not inject message loss; run with "
            "message_loss_probability=0"
        )
    if setup is None:
        setup = build_setup(config)
    counters = CostCounters()
    comp_delay_s = config.comp_delay_ms / 1000.0
    graph = setup.graph
    source = setup.source

    tagger: SourceTagger | None = None
    if config.policy == "centralized":
        tagger = SourceTagger()

    source_node = SourceNode(source, comp_delay_s, counters, tagger=tagger)
    repositories: dict[int, RepositoryNode] = {
        node: RepositoryNode(
            node, comp_delay_s, counters, receive_c=dict(state.receive_c)
        )
        for node, state in graph.nodes.items()
        if node != source
    }

    # Wire the d3g exactly as the engine's _prepare does: items in trace
    # order, nodes in graph order, children in child-table order.
    for item_id in setup.traces:
        initial = setup.traces[item_id].initial_value
        for node in graph.nodes:
            children = graph.children_for_item(node, item_id)
            if not children:
                continue
            sender = source_node if node == source else repositories[node]
            for child, c_serve in children:
                if tagger is not None:
                    tagger.add_tolerance(item_id, c_serve, initial)
                sender.add_edge(
                    item_id,
                    child,
                    c_serve,
                    EdgeFilter(config.policy, c_serve, initial),
                    setup.network.delay_s(node, child),
                )
        for node, repo in repositories.items():
            if item_id in repo.receive_c:
                repo.deliveries[item_id] = [(0.0, initial)]

    client_nodes: dict[int, ClientNode] = {}
    if clients is not None and len(clients):
        base = _client_node_base(setup)
        for offset, client in enumerate(clients.clients):
            repo = repositories.get(client.repository)
            if repo is None:
                raise ConfigurationError(
                    f"client {client.client_id} attaches to unknown "
                    f"repository {client.repository}"
                )
            node_id = base + offset
            client_node = ClientNode(
                node=node_id,
                client_id=client.client_id,
                repository=client.repository,
                requirements=dict(client.requirements),
            )
            for item_id, tolerance in sorted(client.requirements.items()):
                trace = setup.traces.get(item_id)
                if trace is None:
                    raise ConfigurationError(
                        f"client {client.client_id} wants unknown item {item_id}"
                    )
                client_node.deliveries[item_id] = [(0.0, trace.initial_value)]
                if item_id not in repo.receive_c:
                    # The repository does not carry the item; the client
                    # stays on the priming value and the requirement-met
                    # report will flag it.
                    continue
                repo.add_edge(
                    item_id,
                    node_id,
                    tolerance,
                    # Client service is repository-local filtering: the
                    # Eq. (3) + Eq. (7) test at the client's tolerance,
                    # whatever policy runs in the repository plane
                    # (clients are invisible to the source's tagging).
                    EdgeFilter("distributed", tolerance, trace.initial_value),
                    link_delay_s=0.0,
                    is_client=True,
                )
            client_nodes[node_id] = client_node
    return LiveNetwork(setup, counters, source_node, repositories, client_nodes)


def _score(
    network: LiveNetwork, duration: float | None
) -> tuple[FidelityAccumulator, dict[tuple[int, int], float], float]:
    """Observed fidelity from the delivery logs, sim-identically."""
    accumulator = FidelityAccumulator()
    per_pair: dict[tuple[int, int], float] = {}
    span = 0.0
    for item_id, trace in network.setup.traces.items():
        item_span = float(trace.times[-1] - trace.times[0])
        if duration is not None:
            item_span = min(item_span, duration)
        span = max(span, item_span)
    for repo, profile in network.setup.profiles.items():
        node = network.repositories[repo]
        for item_id, c_own in profile.requirements.items():
            trace = network.setup.traces[item_id]
            log = node.deliveries[item_id]
            t0 = float(trace.times[0])
            t1 = float(trace.times[-1])
            if duration is not None:
                t1 = min(t1, t0 + duration)
            loss = loss_of_fidelity(
                trace.times,
                trace.values,
                [entry[0] for entry in log],
                [entry[1] for entry in log],
                c_own,
                t_start=t0,
                t_end=t1,
            )
            accumulator.add(repo, item_id, loss)
            per_pair[(repo, item_id)] = loss
    return accumulator, per_pair, span


def _score_clients(
    network: LiveNetwork, duration: float | None
) -> dict[int, dict[int, float]]:
    """Observed per-client loss at each client's own tolerance."""
    observed: dict[int, dict[int, float]] = {}
    for client_node in network.clients.values():
        per_item: dict[int, float] = {}
        for item_id, tolerance in sorted(client_node.requirements.items()):
            trace = network.setup.traces[item_id]
            log = client_node.deliveries[item_id]
            t0 = float(trace.times[0])
            t1 = float(trace.times[-1])
            if duration is not None:
                t1 = min(t1, t0 + duration)
            per_item[item_id] = loss_of_fidelity(
                trace.times,
                trace.values,
                [entry[0] for entry in log],
                [entry[1] for entry in log],
                tolerance,
                t_start=t0,
                t_end=t1,
            )
        observed[client_node.client_id] = per_item
    return observed


def run_live(
    config: SimulationConfig,
    transport: str = "inprocess",
    *,
    duration: float | None = None,
    time_scale: float = 60.0,
    jitter_ms: float = 0.0,
    quiesce_timeout_s: float = 30.0,
    clients: ClientPopulation | None = None,
    network: LiveNetwork | None = None,
) -> LiveRunResult:
    """Build, run and score one live network end to end.

    Args:
        config: The run's full parameterisation (identical to what a
            simulation takes).
        transport: ``inprocess`` (deterministic virtual time) or
            ``tcp`` (localhost sockets).
        duration: Optional truncation of the replay to the first
            ``duration`` simulated seconds (fidelity is scored over the
            truncated window).
        time_scale: Simulated seconds per wall second (TCP only).
        jitter_ms: Seeded per-delivery jitter bound (in-process only).
        quiesce_timeout_s: Wall seconds TCP waits for in-flight
            messages after the replay before counting them as drops.
        clients: Optional end-client population to attach (ignored when
            ``network`` is given).
        network: Optional prebuilt network for exactly this config.
    """
    if duration is not None and duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration!r}")
    if network is None:
        network = build_live_network(config, clients=clients)
    driver = make_transport(
        transport,
        seed=config.seed,
        jitter_ms=jitter_ms,
        time_scale=time_scale,
        quiesce_timeout_s=quiesce_timeout_s,
    )
    start = time.perf_counter()
    stats: TransportStats = driver.run(network, duration=duration)
    wall = time.perf_counter() - start

    accumulator, per_pair, span = _score(network, duration)
    extras: dict = {
        "per_pair_loss": per_pair,
        "workload": config.workload.name,
        "policy": config.policy,
    }
    if network.clients:
        extras["client_loss"] = _score_clients(network, duration)
        extras["client_messages"] = sum(
            node.client_messages
            for node in (network.source_node, *network.repositories.values())
        )
    return LiveRunResult(
        loss_of_fidelity=accumulator.system_loss(),
        per_repository_loss=accumulator.per_repository(),
        counters=network.counters,
        tree_stats=network.setup.graph.stats(),
        effective_degree=network.setup.effective_degree,
        avg_comm_delay_ms=network.setup.avg_comm_delay_ms,
        sim_span_s=span,
        transport=driver.name,
        wall_seconds=wall,
        sent=stats.sent,
        delivered=stats.delivered,
        dropped=stats.dropped,
        extras=extras,
    )

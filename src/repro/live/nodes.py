"""Sans-io node logic of the live repository network.

A node consumes protocol messages and emits :class:`Outbound`
envelopes; it never touches a socket or a clock directly.  The same
node objects are therefore driven by both transports -- the
deterministic virtual-time driver and the asyncio TCP driver
(:mod:`repro.live.transport`) -- and by tests, without any divergence
in dissemination behaviour.

The coherency decisions are exactly the simulator's: every service
edge holds an :class:`~repro.core.dissemination.filtering.EdgeFilter`
and the source holds a :class:`~repro.core.dissemination.filtering.
SourceTagger` when the centralised policy runs -- the same shared code
path the :class:`~repro.core.dissemination.base.DisseminationPolicy`
subclasses route through.  Timing semantics also mirror the engine:
each forwarded copy costs ``comp_delay`` of serialised server time at
the sending node (a :class:`~repro.sim.queueing.FifoStation`) before it
leaves, then travels the end-to-end network delay.

Client service: an attached client is a dependent of its repository,
filtered per (client, item) with the repository-local Eq. (3) + Eq. (7)
test at the client's own tolerance (regardless of the repository-plane
policy -- clients are invisible to the source, so tag pruning cannot
cover them).  Client traffic is counted separately from the
repository-plane :class:`~repro.core.metrics.CostCounters` so live
message counts stay comparable with the simulator's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dissemination.filtering import EdgeFilter, SourceTagger
from repro.core.metrics import CostCounters
from repro.live.protocol import Update
from repro.sim.queueing import FifoStation

__all__ = ["Outbound", "Edge", "SourceNode", "RepositoryNode", "ClientNode"]


@dataclass(frozen=True)
class Outbound:
    """One message handed to the transport for delivery.

    Attributes:
        dst: Destination node id.
        update: The wire message.
        arrival_s: *Absolute* simulated time the message should arrive
            (sender-side queueing and link delay already included).
            Absolute rather than relative so the virtual-time transport
            schedules the exact float the simulation engine computes --
            ``now + (arrival - now)`` and ``arrival`` differ by an ULP.
    """

    dst: int
    update: Update
    arrival_s: float


@dataclass
class Edge:
    """One service edge a node pushes an item over.

    ``last_seq``/``last_value`` record the head of what this edge has
    actually forwarded (not everything the source published -- the
    coherency filter prunes).  The fleet's anti-entropy resync compares
    a child's received heads against exactly these per-edge forwarded
    heads, so filtering decisions never read as false "missed updates".
    """

    child: int
    c_serve: float
    filter: EdgeFilter
    link_delay_s: float
    is_client: bool = False
    last_seq: int = 0
    last_value: float = 0.0


class _ForwardingNode:
    """Shared forwarding machinery of the source and the repositories."""

    def __init__(self, node: int, comp_delay_s: float, counters: CostCounters) -> None:
        self.node = node
        self.comp_delay_s = comp_delay_s
        self.counters = counters
        self.station = FifoStation(name=f"live-node{node}")
        #: item_id -> service edges, in ``d3g`` child order.
        self.edges: dict[int, list[Edge]] = {}
        #: Client-plane messages sent (kept out of ``counters``).
        self.client_messages = 0
        #: Out-of-band trace observer (attached by the harness when the
        #: run is traced; see :mod:`repro.obs.trace`).  Write-only: it
        #: records decisions, never makes them, so attaching one keeps
        #: the run bit-identical.
        self.observer = None

    def add_edge(
        self,
        item_id: int,
        child: int,
        c_serve: float,
        filter: EdgeFilter,
        link_delay_s: float,
        is_client: bool = False,
    ) -> None:
        self.edges.setdefault(item_id, []).append(
            Edge(child, c_serve, filter, link_delay_s, is_client)
        )

    def _forward(
        self,
        item_id: int,
        value: float,
        tag: float | None,
        now: float,
        parent_receive_c: float,
        seq: int,
        is_source: bool,
    ) -> list[Outbound]:
        out: list[Outbound] = []
        observer = self.observer
        # The live plane numbers workload updates from 1 (seq); the
        # trace id is the schedule index, hence seq - 1.
        update_id = seq - 1
        for edge in self.edges.get(item_id, ()):
            if edge.is_client:
                forward = edge.filter.decide(value, parent_receive_c, None)
            else:
                forward = edge.filter.decide(value, parent_receive_c, tag)
                self.counters.record_check(self.node, is_source=is_source)
                if observer is not None:
                    observer.on_check(
                        update_id, item_id, now, self.node, edge.child,
                        1, forward, is_source,
                    )
            if not forward:
                continue
            departure = self.station.submit(now, self.comp_delay_s)
            if edge.is_client:
                self.client_messages += 1
            else:
                self.counters.record_message(self.node, is_source=is_source)
                if observer is not None:
                    observer.on_forward(
                        update_id, item_id, now, self.node, edge.child,
                        departure + edge.link_delay_s - now,
                    )
                edge.last_seq = seq
                edge.last_value = value
            out.append(
                Outbound(
                    dst=edge.child,
                    update=Update(
                        item_id=item_id,
                        value=value,
                        tag=tag,
                        seq=seq,
                        src=self.node,
                    ),
                    arrival_s=departure + edge.link_delay_s,
                )
            )
        return out


class SourceNode(_ForwardingNode):
    """Replays the workload: examines fresh updates and pushes them.

    For the centralised policy the node holds the shared
    :class:`SourceTagger`; the other policies pass every update through
    untagged, exactly like their ``at_source`` hooks.
    """

    def __init__(
        self,
        node: int,
        comp_delay_s: float,
        counters: CostCounters,
        tagger: SourceTagger | None = None,
    ) -> None:
        super().__init__(node, comp_delay_s, counters)
        self.tagger = tagger
        self._seq = 0
        #: item_id -> freshest workload value seen, disseminated or not;
        #: recovery resyncs pull from here when the live parent is the
        #: source (the engine's ``_source_value`` equivalent).
        self.values: dict[int, float] = {}

    def on_update(self, item_id: int, value: float, now: float) -> list[Outbound]:
        """Handle one fresh workload update at the source."""
        self.values[item_id] = value
        self._seq += 1
        tag: float | None = None
        checks = 0
        disseminate = True
        if self.tagger is not None:
            decision = self.tagger.examine(item_id, value)
            checks = decision.checks
            disseminate = decision.disseminate
            if decision.checks:
                self.counters.record_check(
                    self.node, is_source=True, count=decision.checks
                )
            tag = decision.tag if disseminate else None
        if self.observer is not None:
            self.observer.on_source(
                self._seq - 1, item_id, now, self.node, checks, disseminate
            )
        if not disseminate:
            return []
        return self._forward(
            item_id, value, tag, now, parent_receive_c=0.0, seq=self._seq,
            is_source=True,
        )


class RepositoryNode(_ForwardingNode):
    """One cooperating repository: refresh the local copy, filter, forward."""

    def __init__(
        self,
        node: int,
        comp_delay_s: float,
        counters: CostCounters,
        receive_c: dict[int, float],
    ) -> None:
        super().__init__(node, comp_delay_s, counters)
        #: item_id -> coherency at which this node receives it (Eq. 7's c_p).
        self.receive_c = dict(receive_c)
        #: item_id -> [(arrival sim-time, value), ...]; primed by the harness.
        self.deliveries: dict[int, list[tuple[float, float]]] = {}
        #: item_id -> highest source seq received -- the per-item heads
        #: the anti-entropy resync samples over.
        self.seqs: dict[int, int] = {}

    def on_message(self, update: Update, now: float) -> list[Outbound]:
        """Handle one pushed update: log it, then forward downstream."""
        self.counters.record_delivery()
        if self.observer is not None:
            self.observer.on_deliver(update.seq - 1, update.item_id, now, self.node)
        if update.seq > self.seqs.get(update.item_id, 0):
            self.seqs[update.item_id] = update.seq
        log = self.deliveries.get(update.item_id)
        if log is not None:
            log.append((now, update.value))
        return self._forward(
            update.item_id,
            update.value,
            update.tag,
            now,
            parent_receive_c=self.receive_c.get(update.item_id, 0.0),
            seq=update.seq,
            is_source=False,
        )


@dataclass
class ClientNode:
    """An attached end client: receives its filtered stream, measures.

    Attributes:
        node: Transport-level node id (outside the repository id space).
        client_id: The :class:`~repro.core.clients.Client` this node
            realises.
        repository: The repository it reads from.
        requirements: ``item_id -> c`` tolerances it needs.
        deliveries: ``item_id -> [(arrival sim-time, value), ...]``;
            primed by the harness, appended per received update.
    """

    node: int
    client_id: int
    repository: int
    requirements: dict[int, float]
    deliveries: dict[int, list[tuple[float, float]]] = field(default_factory=dict)

    def on_message(self, update: Update, now: float) -> list[Outbound]:
        """Record one received update; clients never forward."""
        log = self.deliveries.get(update.item_id)
        if log is not None:
            log.append((now, update.value))
        return []

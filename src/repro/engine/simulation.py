"""The event-driven dissemination simulation.

Semantics (DESIGN.md §5):

- Source updates fire at trace timestamps; only *changes* are simulated
  (polling repeats carry no information).
- When an update reaches a node, the node's local copy refreshes
  immediately, then the node checks each dependent registered for the
  item.  Checks are instantaneous bookkeeping; a *forwarded* copy costs
  ``comp_delay`` of serialised server time at the node (the paper's
  12.5 ms covers the check plus preparing the transmission) before it
  leaves, then travels the precomputed end-to-end network delay.
- The per-node serialisation is what makes a node with many dependents a
  bottleneck -- the mechanism behind the U-curve's rising arm and the
  no-cooperation saturation of Figures 5/6.
"""

from __future__ import annotations

from repro.core.dissemination import DisseminationPolicy, make_policy
from repro.core.fidelity import FidelityAccumulator, loss_of_fidelity
from repro.core.metrics import CostCounters
from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.sim.kernel import Simulator
from repro.sim.queueing import FifoStation
from repro.sim.rng import RandomStreams

__all__ = ["DisseminationSimulation", "run_simulation"]


class DisseminationSimulation:
    """Drives one dissemination policy over one built setup."""

    def __init__(self, setup: SimulationSetup, policy: DisseminationPolicy | None = None):
        self.setup = setup
        self.policy = policy if policy is not None else make_policy(setup.config.policy)
        self.kernel = Simulator()
        self.counters = CostCounters()
        self._comp_delay_s = setup.config.comp_delay_ms / 1000.0
        self._source = setup.source
        self._loss_probability = setup.config.message_loss_probability
        self._loss_rng = (
            RandomStreams(setup.config.seed).stream("message-loss")
            if self._loss_probability > 0.0
            else None
        )
        self._stations: dict[int, FifoStation] = {}
        # Per (node, item): list of (child, c_serve); precomputed for speed.
        self._children: dict[tuple[int, int], list[tuple[int, float]]] = {}
        self._receive_c: dict[tuple[int, int], float] = {}
        # Per (repo, item): delivery log [(time, value), ...].
        self._deliveries: dict[tuple[int, int], list[tuple[float, float]]] = {}
        self._prepare()

    # ------------------------------------------------------------------

    def _graphs(self):
        """(graph, root, item ids) triples to wire up.

        The single-source engine serves every item from one graph; the
        multi-source extension overrides this with one triple per source.
        """
        return [(self.setup.graph, self._source, list(self.setup.traces))]

    def _prepare(self) -> None:
        self._root_of: dict[int, int] = {}
        for graph, root, item_ids in self._graphs():
            for node in graph.nodes:
                if node not in self._stations:
                    self._stations[node] = FifoStation(name=f"node{node}")
            for item_id in item_ids:
                self._root_of[item_id] = root
                initial = self.setup.traces[item_id].initial_value
                for node in graph.nodes:
                    children = graph.children_for_item(node, item_id)
                    if children:
                        self._children[(node, item_id)] = children
                        for child, c_serve in children:
                            self.policy.register_edge(
                                node, child, item_id, c_serve, initial
                            )
                    if node != root:
                        state = graph.nodes[node]
                        if item_id in state.receive_c:
                            self._receive_c[(node, item_id)] = state.receive_c[item_id]
                            self._deliveries[(node, item_id)] = [(0.0, initial)]

    # ------------------------------------------------------------------

    def _on_source_update(self, item_id: int, value: float) -> None:
        root = self._root_of[item_id]
        decision = self.policy.at_source(item_id, value)
        if decision.checks:
            self.counters.record_check(root, is_source=True, count=decision.checks)
        if not decision.disseminate:
            return
        self._process_at_node(root, item_id, value, decision.tag)

    def _on_delivery(self, node: int, item_id: int, value: float, tag) -> None:
        self.counters.record_delivery()
        log = self._deliveries.get((node, item_id))
        if log is not None:
            log.append((self.kernel.now, value))
        self._process_at_node(node, item_id, value, tag)

    def _process_at_node(self, node: int, item_id: int, value: float, tag) -> None:
        children = self._children.get((node, item_id))
        if not children:
            return
        now = self.kernel.now
        is_source = node == self._root_of[item_id]
        parent_receive_c = 0.0 if is_source else self._receive_c[(node, item_id)]
        station = self._stations[node]
        for child, _c_serve in children:
            decision = self.policy.decide(
                node, child, item_id, value, parent_receive_c, tag
            )
            self.counters.record_check(node, is_source=is_source, count=decision.checks)
            if not decision.forward:
                continue
            departure = station.submit(now, self._comp_delay_s)
            arrival = departure + self.setup.network.delay_s(node, child)
            self.counters.record_message(node, is_source=is_source)
            if (
                self._loss_rng is not None
                and self._loss_rng.random() < self._loss_probability
            ):
                # Failure injection: the sender paid for the message but
                # the network ate it; the child stays stale until the
                # next update for it is forwarded.
                self.counters.record_drop()
                continue
            self.kernel.schedule_at(arrival, self._on_delivery, child, item_id, value, tag)

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Schedule all trace updates, run to quiescence, score fidelity."""
        span = 0.0
        for item_id, trace in self.setup.traces.items():
            changes = trace.changes()
            span = max(span, trace.span)
            # Index 0 is the priming value everyone already holds.
            for t, v in zip(changes.times[1:], changes.values[1:]):
                self.kernel.schedule_at(
                    float(t), self._on_source_update, item_id, float(v)
                )
        self.kernel.run()
        return self._score(span)

    def _score(self, span: float) -> SimulationResult:
        accumulator = FidelityAccumulator()
        per_pair: dict[tuple[int, int], float] = {}
        for repo, profile in self.setup.profiles.items():
            for item_id, c_own in profile.requirements.items():
                trace = self.setup.traces[item_id]
                log = self._deliveries.get((repo, item_id))
                if log is None:
                    # Never wired for the item (cannot happen after LeLA
                    # validation, but fail loud rather than silently).
                    raise RuntimeError(
                        f"repository {repo} has no delivery log for item {item_id}"
                    )
                recv_times = [entry[0] for entry in log]
                recv_values = [entry[1] for entry in log]
                loss = loss_of_fidelity(
                    trace.times,
                    trace.values,
                    recv_times,
                    recv_values,
                    c_own,
                    t_start=float(trace.times[0]),
                    t_end=float(trace.times[-1]),
                )
                accumulator.add(repo, item_id, loss)
                per_pair[(repo, item_id)] = loss
        return SimulationResult(
            loss_of_fidelity=accumulator.system_loss(),
            per_repository_loss=accumulator.per_repository(),
            counters=self.counters,
            tree_stats=self.setup.graph.stats(),
            effective_degree=self.setup.effective_degree,
            avg_comm_delay_ms=self.setup.avg_comm_delay_ms,
            events_processed=self.kernel.events_processed,
            sim_span_s=span,
            extras={"per_pair_loss": per_pair},
        )

    def delivery_log(self, repo: int, item_id: int) -> list[tuple[float, float]]:
        """The (time, value) receive log for one repository/item pair."""
        return list(self._deliveries.get((repo, item_id), []))


def run_simulation(
    config: SimulationConfig,
    setup: SimulationSetup | None = None,
    base: SimulationSetup | None = None,
) -> SimulationResult:
    """Build (or reuse) a setup and run one simulation end to end.

    Args:
        config: The run's full parameterisation.
        setup: Optional prebuilt setup for exactly this config; used as
            is, without rebuilding anything.
        base: Optional setup from an earlier config in a sweep; pieces
            unaffected by the config delta (network, traces, interests)
            are recycled from it.
    """
    if setup is None:
        setup = build_setup(config, base=base)
    return DisseminationSimulation(setup).run()
